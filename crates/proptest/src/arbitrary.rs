//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, well-spread values; no NaN/inf surprises
        let mantissa = rng.float_in(-1.0, 1.0);
        let exp = rng.int_in(-60, 60) as i32;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // printable ASCII keeps generated text debuggable
        char::from_u32(rng.int_in(0x20, 0x7e) as u32).expect("printable ascii")
    }
}

//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the large seeded suites fast
        // while still exercising each property broadly. Tests that want
        // more ask via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — aborts the test with this message.
    Fail(String),
    /// `prop_assume!` rejection — the case is redrawn.
    Reject,
}

/// Deterministic RNG used to generate cases; seeded from the test name
/// so every run sees the same sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// RNG from an explicit seed (for strategy-internal use).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `usize` below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound)
    }

    /// Uniform inclusive range.
    pub fn int_in(&mut self, low: i128, high: i128) -> i128 {
        debug_assert!(low <= high);
        let span = (high - low + 1) as u128;
        let draw = (u128::from(self.0.next_u64()) << 64 | u128::from(self.0.next_u64())) % span;
        low + draw as i128
    }

    /// Uniform `f64` in `[low, high)`.
    pub fn float_in(&mut self, low: f64, high: f64) -> f64 {
        let unit: f64 = self.0.gen_range(0.0..1.0);
        low + unit * (high - low)
    }

    /// One random bit.
    pub fn bool(&mut self) -> bool {
        self.0.gen::<bool>()
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

//! Offline, vendored stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! Same spelling, smaller engine: strategies are deterministic seeded
//! generators (seeded from the test function's name, so every run and
//! every machine sees the same cases) and there is **no shrinking** — a
//! failing case panics with the generated inputs' debug representation
//! instead. The surface covered is exactly what this workspace uses:
//!
//! * `proptest! { #[test] fn f(x in strategy, y: Type) { … } }` with an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]`
//! * integer / float range strategies, `any::<T>()`, tuple strategies,
//!   string-regex strategies (character classes and `{m,n}` repeats)
//! * `prop_map`, `prop_recursive`, `boxed`, `prop_oneof!`,
//!   `proptest::collection::vec`, `proptest::sample::select`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs property-test functions.
///
/// Supported grammar (a subset of real proptest): an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items
/// whose parameters are either `pattern in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])+ fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])+
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts < __cfg.cases.saturating_mul(20).max(1000),
                    "proptest {}: too many rejected cases (prop_assume too strict?)",
                    stringify!($name),
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_case!(__rng; ($($params)*) $body);
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __ran + 1,
                            __cfg.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; ($($params:tt)*) $body:block) => {
        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $crate::__proptest_bind! { $rng; $($params)* }
            { $body }
            Ok(())
        })()
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::new_value(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::new_value(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current case (not counted against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is a pure `rng -> value` function.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let this = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| this.new_value(rng)))
    }

    /// Recursive strategy: starting from `self` as the leaf, applies
    /// `recurse` up to `depth` times. The `_desired_size` /
    /// `_expected_branch_size` knobs of real proptest are accepted and
    /// ignored — depth alone bounds the trees here.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let l = leaf.clone();
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // 1-in-4 early leaf keeps expected sizes small while
                // still reaching the full depth regularly
                if rng.below(4) == 0 {
                    l.new_value(rng)
                } else {
                    deeper.new_value(rng)
                }
            }));
        }
        strat
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among boxed strategies (the engine of `prop_oneof!`).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let i = rng.below(options.len());
        options[i].new_value(rng)
    }))
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

// u64 separately: i128 holds the full span
int_range_strategy!(u64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.float_in(self.start as f64, self.end as f64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.float_in(*self.start() as f64, *self.end() as f64) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String-literal strategies: the literal is a regex subset compiled by
/// [`crate::string`].
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl<T: 'static> Strategy for fn(&mut TestRng) -> T {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let a = (3u32..9).new_value(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-5i64..=5).new_value(&mut rng);
            assert!((-5..=5).contains(&b));
            let c = (0.0f64..1.0).new_value(&mut rng);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_and_oneof() {
        let mut rng = TestRng::for_test("map");
        let s = crate::prop_oneof![
            (0u8..10).prop_map(|x| x as i32),
            (100u8..110).prop_map(|x| x as i32),
        ];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((0..10).contains(&v) || (100..110).contains(&v));
        }
    }

    #[test]
    fn recursion_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::for_test("rec");
        for _ in 0..100 {
            let t = strat.new_value(&mut rng);
            assert!(size(&t) <= (1 << 6), "depth bound respected: {t:?}");
        }
    }
}

//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.int_in(self.size.min as i128, self.size.max as i128) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

/// Uniform choice from `options` (must be nonempty).
pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select(options)
}

impl<T: Clone + 'static> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len())].clone()
    }
}

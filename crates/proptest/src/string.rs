//! Tiny regex-subset generator backing string-literal strategies.
//!
//! Supported syntax — enough for the patterns this workspace uses:
//! literal characters, `.` (printable ASCII), character classes
//! `[a-z0-9 ?.,]` (ranges and literals, no negation), and the
//! quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` applied to the previous
//! atom. Unsupported constructs panic loudly rather than silently
//! generating the wrong language.

use crate::test_runner::TestRng;

const STAR_MAX: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// Any printable ASCII character (`.`).
    Dot,
    /// One fixed character.
    Lit(char),
    /// One character from a class.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        i += 1;
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut class = Vec::new();
                assert!(
                    chars.get(i) != Some(&'^'),
                    "negated classes unsupported in pattern {pattern:?}"
                );
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']')
                    {
                        let hi = chars[i + 2];
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for v in lo as u32..=hi as u32 {
                            class.push(char::from_u32(v).expect("class range char"));
                        }
                        i += 3;
                    } else {
                        class.push(lo);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(class)
            }
            '\\' => {
                let escaped = *chars.get(i).unwrap_or_else(|| {
                    panic!("dangling escape in pattern {pattern:?}");
                });
                i += 1;
                match escaped {
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut class: Vec<char> = ('a'..='z').collect();
                        class.extend('A'..='Z');
                        class.extend('0'..='9');
                        class.push('_');
                        Atom::Class(class)
                    }
                    other => Atom::Lit(other),
                }
            }
            '(' | ')' | '|' => {
                panic!("regex feature {c:?} unsupported in pattern {pattern:?}")
            }
            other => Atom::Lit(other),
        };
        // optional quantifier
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo: usize = lo.trim().parse().expect("quantifier lower bound");
                    let hi: usize = hi.trim().parse().expect("quantifier upper bound");
                    assert!(lo <= hi, "bad quantifier in pattern {pattern:?}");
                    (lo, hi)
                } else {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
            Some('*') => {
                i += 1;
                (0, STAR_MAX)
            }
            Some('+') => {
                i += 1;
                (1, STAR_MAX)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => char::from_u32(rng.int_in(0x20, 0x7e) as u32).expect("printable ascii"),
        Atom::Lit(c) => *c,
        Atom::Class(options) => options[rng.below(options.len())],
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.int_in(piece.min as i128, piece.max as i128) as usize;
        for _ in 0..count {
            out.push(gen_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 ?.,]{0,60}", &mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ?.,".contains(c)));
        }
    }

    #[test]
    fn dot_quantified() {
        let mut rng = TestRng::for_test("dot");
        let mut max_len = 0;
        for _ in 0..200 {
            let s = generate(".{0,120}", &mut rng);
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            max_len = max_len.max(s.chars().count());
        }
        assert!(max_len > 40, "quantifier should reach long strings");
    }

    #[test]
    fn literals_and_counts() {
        let mut rng = TestRng::for_test("lit");
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate("a{3}", &mut rng), "aaa");
        let s = generate("x[01]{2}y", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }
}

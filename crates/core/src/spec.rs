//! Scale-out dataset engine: arbitrary-N collections from the five
//! discipline generators.
//!
//! The paper's 142-question collection is the *unit* of generation; a
//! [`DatasetSpec`] scales that unit to arbitrary sizes (10² … 10⁵
//! questions) while preserving Table-I structure within rounding:
//!
//! * **category mix** — question counts per discipline follow
//!   `category_weights` by largest-remainder apportionment (the default
//!   weights are exactly Table I's 35/44/20/20/23, so the default mix is
//!   exact at every scale, not just "within rounding");
//! * **visual/token mix** — each category is produced in *replica
//!   blocks*: replica `r` re-runs the category's generator with a
//!   replica-mixed seed, so the per-block family sequence (and with it
//!   the visual-kind and token-length distributions) repeats at every
//!   scale, truncated only in the final partial block;
//! * **MC/SA mix** — `mc_sa_ratio` is the fraction of naturally
//!   multiple-choice questions *kept* as multiple choice. The default
//!   `1.0` preserves Table I's 99/43 split; `0.0` reproduces the
//!   challenge transform. Conversion follows an even-spread floor rule
//!   on the global MC ordinal, so it is exact within rounding **and**
//!   streamable (no global pass needed).
//!
//! **Identity contract:** replica 0 is the generator's output verbatim —
//! untruncated, unrenumbered, unconverted — so [`DatasetSpec::default`]
//! (scale 1) builds a collection id- and byte-identical to
//! [`ChipVqa::standard`]. Everything downstream (cache keys, checkpoint
//! hashes, report bytes) is anchored on that.
//!
//! [`ShardStream`] is the bounded-memory face of the same engine: it
//! yields the identical question sequence shard-by-shard, holding at
//! most one generator block (≤ [`RESIDENT_SLACK`] questions) plus the
//! shard under construction. [`ShardStream::peak_resident`] exposes the
//! high-water mark so the bound is *testable*, not just documented.
//!
//! Scaled collections must not be mixed with the extension set: the
//! extension continues each category's numbering from 100, which replica
//! renumbering reaches at scale ≥ 3 (e.g. `digital-100` is replica 2,
//! offset 30). Use one or the other.

use serde::{Deserialize, Serialize};

use crate::dataset::{ChipVqa, DEFAULT_SEED};
use crate::gen;
use crate::question::{Category, Question};

/// Size of the base (scale-1) collection — the paper's Table I total.
pub const BASE_SIZE: usize = 142;

/// Table I's category weights (Digital, Analog, Architecture,
/// Manufacture, Physical) — the [`DatasetSpec::default`] mix.
pub const TABLE1_WEIGHTS: [f64; 5] = [35.0, 44.0, 20.0, 20.0, 23.0];

/// Upper bound on questions a [`ShardStream`] holds *besides* the shard
/// under construction: one generator block (the largest block is
/// Analog's 44).
pub const RESIDENT_SLACK: usize = 44;

/// A recipe for an arbitrary-N ChipVQA collection.
///
/// `scale` multiplies the 142-question base; `category_weights` shifts
/// the discipline mix (largest-remainder apportionment of the total);
/// `mc_sa_ratio` dials the presentation mix from challenge-style all
/// short-answer (`0.0`) to Table I's natural split (`1.0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Multiplier on the 142-question base collection (≥ 1).
    pub scale: usize,
    /// Generation seed; replica blocks derive their seeds from it.
    pub seed: u64,
    /// Relative category weights in [`Category::ALL`] order
    /// (non-negative, positive sum).
    pub category_weights: [f64; 5],
    /// Fraction of naturally-MC questions kept multiple-choice, in
    /// `[0, 1]`.
    pub mc_sa_ratio: f64,
}

impl Default for DatasetSpec {
    /// The paper's collection: scale 1, canonical seed, Table-I weights,
    /// natural MC/SA split. Builds byte-identical to
    /// [`ChipVqa::standard`].
    fn default() -> Self {
        DatasetSpec {
            scale: 1,
            seed: DEFAULT_SEED,
            category_weights: TABLE1_WEIGHTS,
            mc_sa_ratio: 1.0,
        }
    }
}

impl DatasetSpec {
    /// The default spec at `scale` (Table-I weights, canonical seed).
    pub fn scaled(scale: usize) -> Self {
        DatasetSpec {
            scale,
            ..DatasetSpec::default()
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the category weights.
    pub fn with_weights(mut self, weights: [f64; 5]) -> Self {
        self.category_weights = weights;
        self
    }

    /// Replaces the MC/SA ratio.
    pub fn with_mc_sa_ratio(mut self, ratio: f64) -> Self {
        self.mc_sa_ratio = ratio;
        self
    }

    /// Panics with a description of the first invalid field, if any.
    fn validate(&self) {
        assert!(self.scale >= 1, "DatasetSpec.scale must be >= 1");
        assert!(
            self.category_weights
                .iter()
                .all(|w| w.is_finite() && *w >= 0.0),
            "DatasetSpec.category_weights must be finite and non-negative: {:?}",
            self.category_weights
        );
        assert!(
            self.category_weights.iter().sum::<f64>() > 0.0,
            "DatasetSpec.category_weights must have a positive sum"
        );
        assert!(
            (0.0..=1.0).contains(&self.mc_sa_ratio) && self.mc_sa_ratio.is_finite(),
            "DatasetSpec.mc_sa_ratio must be in [0, 1], got {}",
            self.mc_sa_ratio
        );
    }

    /// Total question count: `scale × 142`.
    pub fn total(&self) -> usize {
        self.scale * BASE_SIZE
    }

    /// Per-category question counts by largest-remainder apportionment
    /// of [`total`](DatasetSpec::total) over the normalized weights
    /// (ties broken by category order). With the default Table-I weights
    /// the result is exactly `scale × [35, 44, 20, 20, 23]`.
    pub fn category_counts(&self) -> [usize; 5] {
        self.validate();
        let total = self.total();
        let wsum: f64 = self.category_weights.iter().sum();
        let quotas: Vec<f64> = self
            .category_weights
            .iter()
            .map(|w| w * total as f64 / wsum)
            .collect();
        let mut counts = [0usize; 5];
        for (c, q) in counts.iter_mut().zip(&quotas) {
            *c = q.floor() as usize;
        }
        let assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..5).collect();
        // stable sort → ties fall to the earlier category
        order.sort_by(|&a, &b| {
            let fa = quotas[a] - quotas[a].floor();
            let fb = quotas[b] - quotas[b].floor();
            fb.partial_cmp(&fa).expect("finite quotas")
        });
        for &i in order.iter().take(total - assigned) {
            counts[i] += 1;
        }
        counts
    }

    /// A stable content fingerprint of the spec (FNV-1a over every
    /// field). Used to key answer caches and checkpoints so results from
    /// one spec can never be served to another.
    ///
    /// This value is also part of the *persistent* content address: the
    /// on-disk answer store embeds it in every record's `CacheKey`, so
    /// it must stay stable across releases for existing stores to keep
    /// their meaning (the encoding is frozen by the golden test in
    /// `tests/cache_consistency.rs`). Fleet execution pins it too: it
    /// enters the `FleetManifest` fingerprint stamped on every lease
    /// and shard record, so `table2 merge` refuses to fold shards
    /// evaluated against a different spec.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&(self.scale as u64).to_le_bytes());
        eat(&self.seed.to_le_bytes());
        for w in &self.category_weights {
            eat(&w.to_bits().to_le_bytes());
        }
        eat(&self.mc_sa_ratio.to_bits().to_le_bytes());
        h
    }

    /// Materializes the whole collection in memory. The question
    /// sequence is byte-identical to flattening
    /// [`stream`](DatasetSpec::stream), at any shard size.
    pub fn build(&self) -> ChipVqa {
        let total = self.total();
        let mut questions = Vec::with_capacity(total);
        for shard in self.stream(total.max(1)) {
            questions.extend(shard);
        }
        ChipVqa::from_parts(questions, self.seed)
    }

    /// A bounded-memory iterator over the same question sequence as
    /// [`build`](DatasetSpec::build), in shards of `shard_len` questions
    /// (the final shard may be shorter).
    ///
    /// # Panics
    ///
    /// Panics when `shard_len` is zero or the spec is invalid.
    pub fn stream(&self, shard_len: usize) -> ShardStream {
        self.validate();
        assert!(shard_len > 0, "shard_len must be positive");
        ShardStream {
            spec: self.clone(),
            counts: self.category_counts(),
            shard_len,
            cat: 0,
            produced_in_cat: 0,
            replica: 0,
            block: Vec::new(),
            block_pos: 0,
            mc_ordinal: 0,
            peak_resident: 0,
            shards_emitted: 0,
        }
    }
}

/// Whether the question at global MC ordinal `j` stays multiple-choice
/// under `ratio`: the even-spread floor rule
/// `⌊(j+1)·ratio⌋ > ⌊j·ratio⌋`. Keeps exactly `⌊m·ratio⌋` of any `m`
/// consecutive ordinals (within rounding) and needs no lookahead, so
/// streaming and in-memory builds convert identically.
fn keep_mc(ordinal: u64, ratio: f64) -> bool {
    ((ordinal + 1) as f64 * ratio).floor() > (ordinal as f64 * ratio).floor()
}

/// Deterministic seed for replica `r` of a spec seed. Replica 0 is the
/// raw seed (the identity contract); later replicas go through a
/// splitmix64 finalizer so sibling replicas decorrelate.
pub(crate) fn replica_seed(seed: u64, replica: usize) -> u64 {
    if replica == 0 {
        return seed;
    }
    let mut z = seed ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard-by-shard generator for a [`DatasetSpec`].
///
/// Memory bound: besides the shard being filled, at most one generator
/// block (≤ [`RESIDENT_SLACK`] questions) is resident at any time —
/// [`peak_resident`](ShardStream::peak_resident) records the observed
/// high-water mark of `buffered block + shard under construction`.
#[derive(Debug)]
pub struct ShardStream {
    spec: DatasetSpec,
    counts: [usize; 5],
    shard_len: usize,
    cat: usize,
    produced_in_cat: usize,
    replica: usize,
    block: Vec<Question>,
    block_pos: usize,
    mc_ordinal: u64,
    peak_resident: usize,
    shards_emitted: usize,
}

impl ShardStream {
    /// The spec this stream generates.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The configured shard length.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// High-water mark of resident questions (buffered generator block
    /// plus shard under construction) since the stream was created.
    /// Always ≤ `shard_len + RESIDENT_SLACK`.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// How many shards this stream has emitted so far — i.e. the shard
    /// index the *next* [`next`](Iterator::next) call will produce.
    /// Shard indices are a stable property of `(spec, shard_len)`:
    /// regenerating the stream yields the same shard at the same index,
    /// which is what lets a quarantined-shard requeue regenerate only
    /// selected indices.
    pub fn shards_emitted(&self) -> usize {
        self.shards_emitted
    }

    /// [`next`](Iterator::next) paired with the emitted shard's stable
    /// index.
    pub fn next_indexed(&mut self) -> Option<(usize, Vec<Question>)> {
        let idx = self.shards_emitted;
        self.next().map(|shard| (idx, shard))
    }

    /// The next question of the global sequence, or `None` when every
    /// category has produced its share.
    fn next_question(&mut self) -> Option<Question> {
        loop {
            if self.cat >= Category::ALL.len() {
                return None;
            }
            if self.produced_in_cat == self.counts[self.cat] {
                self.cat += 1;
                self.produced_in_cat = 0;
                self.replica = 0;
                self.block.clear();
                self.block_pos = 0;
                continue;
            }
            if self.block_pos == self.block.len() {
                self.block = generate_block(self.cat, self.spec.seed, self.replica);
                self.block_pos = 0;
                self.replica += 1;
            }
            let mut q = self.block[self.block_pos].clone();
            // drop the handed-out slot so residency genuinely shrinks
            self.block[self.block_pos] = placeholder();
            self.block_pos += 1;
            self.produced_in_cat += 1;
            if q.is_multiple_choice() {
                if !keep_mc(self.mc_ordinal, self.spec.mc_sa_ratio) {
                    q = q.to_short_answer();
                }
                self.mc_ordinal += 1;
            }
            return Some(q);
        }
    }
}

/// One replica block of a category, ids renumbered past the block.
fn generate_block(cat: usize, seed: u64, replica: usize) -> Vec<Question> {
    match Category::ALL[cat] {
        Category::Digital => gen::digital::generate_replica(seed, replica),
        Category::Analog => gen::analog::generate_replica(seed, replica),
        Category::Architecture => gen::architecture::generate_replica(seed, replica),
        Category::Manufacture => gen::manufacturing::generate_replica(seed, replica),
        Category::Physical => gen::physical::generate_replica(seed, replica),
    }
}

/// A zero-cost stand-in for an already-emitted block slot (no rendered
/// visual, empty strings).
fn placeholder() -> Question {
    use crate::question::{AnswerSpec, Difficulty, QuestionKind, VisualKind};
    Question {
        id: String::new(),
        category: Category::Digital,
        visual_kind: VisualKind::Table,
        prompt: String::new(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Text {
            canonical: String::new(),
            aliases: Vec::new(),
        },
        difficulty: Difficulty::new(0.0, 1, 0.0, false),
        visual: chipvqa_raster::Annotated::new(chipvqa_raster::Pixmap::new(1, 1)),
        key_marks: Vec::new(),
    }
}

impl Iterator for ShardStream {
    type Item = Vec<Question>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut shard = Vec::new();
        while shard.len() < self.shard_len {
            match self.next_question() {
                Some(q) => {
                    shard.push(q);
                    // live questions still buffered in the block + shard
                    let buffered = self.block.len() - self.block_pos;
                    self.peak_resident = self.peak_resident.max(buffered + shard.len());
                }
                None => break,
            }
        }
        if shard.is_empty() {
            None
        } else {
            self.shards_emitted += 1;
            Some(shard)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::QuestionKind;

    #[test]
    fn default_spec_is_identity_with_standard() {
        let built = DatasetSpec::default().build();
        let std = ChipVqa::standard();
        assert_eq!(built.len(), std.len());
        for (a, b) in built.iter().zip(std.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn default_counts_are_exact_multiples() {
        for scale in [1usize, 2, 10, 100] {
            let counts = DatasetSpec::scaled(scale).category_counts();
            assert_eq!(
                counts,
                [35 * scale, 44 * scale, 20 * scale, 20 * scale, 23 * scale]
            );
        }
    }

    #[test]
    fn apportionment_always_sums_to_total() {
        let weird = DatasetSpec::scaled(3).with_weights([1.0, 1.0, 1.0, 1.0, 1.0]);
        let counts = weird.category_counts();
        assert_eq!(counts.iter().sum::<usize>(), weird.total());
        // near-uniform apportionment: every category within one of total/5
        let per = weird.total() / 5;
        assert!(counts.iter().all(|&c| c == per || c == per + 1));
    }

    #[test]
    fn zero_weight_category_is_dropped() {
        let spec = DatasetSpec::scaled(1).with_weights([0.0, 1.0, 1.0, 1.0, 1.0]);
        let counts = spec.category_counts();
        assert_eq!(counts[0], 0);
        assert_eq!(counts.iter().sum::<usize>(), 142);
        let built = spec.build();
        assert_eq!(built.category(Category::Digital).count(), 0);
    }

    #[test]
    fn ratio_zero_matches_challenge_at_scale_one() {
        let converted = DatasetSpec::default().with_mc_sa_ratio(0.0).build();
        let challenge = ChipVqa::standard().challenge();
        assert_eq!(converted.len(), challenge.len());
        for (a, b) in converted.iter().zip(challenge.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mc_ratio_is_respected_within_rounding() {
        for ratio in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let spec = DatasetSpec::scaled(2).with_mc_sa_ratio(ratio);
            let built = spec.build();
            let natural_mc = 99 * 2; // per Table I, at scale 2
            let kept = built
                .iter()
                .filter(|q| matches!(q.kind, QuestionKind::MultipleChoice { .. }))
                .count();
            let expect = (natural_mc as f64 * ratio).floor() as usize;
            assert!(
                kept.abs_diff(expect) <= 1,
                "ratio {ratio}: kept {kept}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn replica_ids_are_renumbered_and_unique() {
        let built = DatasetSpec::scaled(3).build();
        let mut ids: Vec<&str> = built.iter().map(|q| q.id.as_str()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "scaled ids must stay unique");
        // replica 1 of digital starts right after the base block
        assert!(built.get("digital-035").is_some());
        assert!(built.get("analog-087").is_some());
    }

    #[test]
    fn stream_is_bounded_and_equals_build() {
        let spec = DatasetSpec::scaled(2);
        let built = spec.build();
        for shard_len in [1usize, 17, 142] {
            let mut stream = spec.stream(shard_len);
            let mut flat = Vec::new();
            for shard in &mut stream {
                assert!(shard.len() <= shard_len);
                flat.extend(shard);
            }
            assert_eq!(flat.len(), built.len(), "shard_len {shard_len}");
            for (a, b) in flat.iter().zip(built.iter()) {
                assert_eq!(a, b, "shard_len {shard_len}");
            }
            assert!(
                stream.peak_resident() <= shard_len + RESIDENT_SLACK,
                "shard_len {shard_len}: peak {} over bound",
                stream.peak_resident()
            );
            assert_eq!(
                stream.shards_emitted(),
                built.len().div_ceil(shard_len),
                "shard_len {shard_len}"
            );
        }
    }

    #[test]
    fn shard_indices_are_stable_under_selective_regeneration() {
        let spec = DatasetSpec::scaled(2);
        let shard_len = 17;
        let all: Vec<(usize, Vec<Question>)> = {
            let mut stream = spec.stream(shard_len);
            let mut out = Vec::new();
            while let Some(pair) = stream.next_indexed() {
                out.push(pair);
            }
            out
        };
        assert_eq!(all.first().map(|(i, _)| *i), Some(0));
        assert_eq!(all.last().map(|(i, _)| *i), Some(all.len() - 1));
        // regenerate, keeping only a scattered subset of indices: each
        // survivor is identical to the same index of the full pass
        let keep = [0usize, 3, all.len() - 1];
        let selected: Vec<(usize, Vec<Question>)> = spec
            .stream(shard_len)
            .enumerate()
            .filter(|(i, _)| keep.contains(i))
            .collect();
        assert_eq!(selected.len(), keep.len());
        for (idx, shard) in &selected {
            assert_eq!(
                shard, &all[*idx].1,
                "shard {idx} drifted under regeneration"
            );
        }
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = DatasetSpec::default();
        let fp = base.fingerprint();
        assert_eq!(fp, DatasetSpec::default().fingerprint(), "stable");
        assert_ne!(fp, DatasetSpec::scaled(2).fingerprint());
        assert_ne!(fp, base.clone().with_seed(1).fingerprint());
        assert_ne!(fp, base.clone().with_mc_sa_ratio(0.5).fingerprint());
        assert_ne!(
            fp,
            base.clone()
                .with_weights([35.0, 44.0, 20.0, 20.0, 24.0])
                .fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "shard_len must be positive")]
    fn zero_shard_len_rejected() {
        let _ = DatasetSpec::default().stream(0);
    }

    #[test]
    #[should_panic(expected = "scale must be >= 1")]
    fn zero_scale_rejected() {
        let _ = DatasetSpec::scaled(0).build();
    }
}

//! The extension collection: questions over the substrate features the
//! paper lists as topics but the 142-question standard set does not yet
//! exercise (out-of-order machines, floorplanning, buffer insertion,
//! differential pairs/current mirrors, BDD-style function analysis) —
//! the "ChipVQA-oriented dataset collection" direction of the paper's
//! future work.
//!
//! Ids continue each category's numbering from 100 (`digital-100`, …) so
//! they never collide with the standard set.

use chipvqa_analog::devices::Mosfet;
use chipvqa_analog::stages::{CurrentMirror, DiffPair, TwoStageOpamp};
use chipvqa_arch::isa::{program, Instr, Reg};
use chipvqa_arch::ooo::{run_in_order, run_ooo, OooConfig};
use chipvqa_logic::bdd::Bdd;
use chipvqa_manuf::implant::Implant;
use chipvqa_physd::buffering::{insert_buffers, BufferLibrary};
use chipvqa_physd::floorplan::SlicingTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::text_panel;
use crate::question::{
    trim_float, AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind,
};

/// Number of extension questions generated.
pub const EXTENSION_SIZE: usize = 18;

/// Generates the extension set (deterministic per seed).
pub fn generate(seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE97E);
    let mut out = Vec::with_capacity(EXTENSION_SIZE);
    for k in 0..3 {
        out.push(sat_count_question(k, &mut rng));
    }
    for k in 0..3 {
        out.push(diff_pair_question(k, &mut rng));
    }
    for k in 0..2 {
        out.push(mirror_question(k, &mut rng));
    }
    out.push(opamp_question(&mut rng));
    for k in 0..3 {
        out.push(ooo_question(k, &mut rng));
    }
    for k in 0..3 {
        out.push(floorplan_question(k, &mut rng));
    }
    for k in 0..2 {
        out.push(buffering_question(k, &mut rng));
    }
    out.push(implant_question(&mut rng));
    assert_eq!(out.len(), EXTENSION_SIZE);
    out
}

fn sat_count_question(k: usize, rng: &mut StdRng) -> Question {
    // random 4-variable function with a known satisfy count via BDD
    let vars = ['A', 'B', 'C', 'D'];
    let (expr, count) = loop {
        let mut outputs = [false; 16];
        for o in outputs.iter_mut() {
            *o = rng.gen_bool(0.4);
        }
        let ones = outputs.iter().filter(|&&b| b).count();
        if !(3..=13).contains(&ones) {
            continue;
        }
        let table = chipvqa_logic::TruthTable::new(vars.to_vec(), outputs.to_vec());
        let expr = chipvqa_logic::minimize::minimize_table(&table);
        let mut bdd = Bdd::new(&vars);
        let root = bdd.from_expr(&expr);
        break (expr, bdd.sat_count(root));
    };
    let lines = vec![
        "boolean function over A, B, C, D:".to_string(),
        format!("F = {expr}"),
    ];
    let vis = text_panel(&lines, false);
    Question {
        id: format!("digital-{}", 100 + k),
        category: Category::Digital,
        visual_kind: VisualKind::Equations,
        prompt: "For the four-variable boolean function shown in the figure, how many of the \
                 16 input assignments satisfy F (make it evaluate to 1)? Answer with a number."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: count as f64,
            tolerance: 0.01,
            unit: None,
        },
        difficulty: Difficulty::new(0.5, 3, 0.9, true),
        visual: vis,
        key_marks: vec![1],
    }
}

fn round_sig(x: f64, digits: i32) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let mag = 10f64.powi(digits - 1 - x.abs().log10().floor() as i32);
    (x * mag).round() / mag
}

fn diff_pair_question(k: usize, rng: &mut StdRng) -> Question {
    let dp = DiffPair {
        device: Mosfet {
            gm: f64::from(rng.gen_range(1..=5)) * 1e-3,
            ro: f64::from(rng.gen_range(2..=8)) * 25e3,
        },
        tail_resistance: f64::from(rng.gen_range(5..=20)) * 10e3,
        load: f64::from(rng.gen_range(5..=20)) * 1e3,
    };
    let lines = vec![
        "differential pair:".to_string(),
        format!("gm = {} mS per side", trim_float(dp.device.gm * 1e3)),
        format!("ro = {} kOhm", trim_float(dp.device.ro / 1e3)),
        format!("RD = {} kOhm per side", trim_float(dp.load / 1e3)),
        format!("tail Rout = {} kOhm", trim_float(dp.tail_resistance / 1e3)),
    ];
    let vis = text_panel(&lines, false);
    let (prompt, gold, unit): (String, f64, Option<&str>) = match k {
        0 => (
            "Compute the differential-mode voltage gain Adm = gm (RD || ro) of the \
             resistively loaded pair described in the figure."
                .into(),
            round_sig(dp.differential_gain(), 3),
            None,
        ),
        1 => (
            "Compute the common-mode gain magnitude |Acm| = RD / (2 Rtail) of the pair \
             described in the figure."
                .into(),
            round_sig(dp.common_mode_gain().abs(), 3),
            None,
        ),
        _ => (
            "Compute the common-mode rejection ratio (CMRR) of the pair in dB.".into(),
            round_sig(dp.cmrr_db(), 3),
            Some("dB"),
        ),
    };
    Question {
        id: format!("analog-{}", 100 + k),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.03,
            unit: unit.map(String::from),
        },
        difficulty: Difficulty::new(0.65, 3, 0.9, true),
        visual: vis,
        key_marks: vec![1, 2, 3, 4],
    }
}

fn mirror_question(k: usize, rng: &mut StdRng) -> Question {
    let mirror = CurrentMirror::new(
        f64::from(rng.gen_range(1..=4)),
        Mosfet {
            gm: 2e-3,
            ro: f64::from(rng.gen_range(2..=8)) * 25e3,
        },
    );
    let i_ref = f64::from(rng.gen_range(5..=50)) * 10e-6;
    let lines = vec![
        "current mirror:".to_string(),
        format!("Iref = {} uA", trim_float(i_ref * 1e6)),
        format!("W/L ratio out:ref = {}:1", trim_float(mirror.ratio)),
        format!(
            "gm = 2 mS, ro = {} kOhm",
            trim_float(mirror.out_device.ro / 1e3)
        ),
    ];
    let vis = text_panel(&lines, false);
    let (prompt, gold, unit): (String, f64, &str) = if k == 0 {
        (
            "What output current does the mirror described in the figure deliver? Answer in \
             microamperes."
                .into(),
            round_sig(mirror.output_current(i_ref) * 1e6, 3),
            "uA",
        )
    } else {
        (
            "If the output device is cascoded with an identical transistor, what output \
             resistance results (Rout = ro (1 + gm ro) + ro)? Answer in megaohms."
                .into(),
            round_sig(mirror.cascode_output_resistance() / 1e6, 3),
            "MOhm",
        )
    };
    Question {
        id: format!("analog-{}", 110 + k),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.03,
            unit: Some(unit.into()),
        },
        difficulty: Difficulty::new(0.6, 2, 0.9, true),
        visual: vis,
        key_marks: vec![1, 2, 3],
    }
}

fn opamp_question(rng: &mut StdRng) -> Question {
    let op = TwoStageOpamp {
        gm1: f64::from(rng.gen_range(5..=20)) * 1e-4,
        r1: 200e3,
        gm2: 4e-3,
        r2: 100e3,
        cc: f64::from(rng.gen_range(1..=4)) * 1e-12,
        cl: 5e-12,
    };
    let gold = round_sig(
        op.unity_gain_bandwidth() / (2.0 * std::f64::consts::PI) / 1e6,
        3,
    );
    let lines = vec![
        "two-stage Miller op-amp:".to_string(),
        format!("gm1 = {} mS", trim_float(op.gm1 * 1e3)),
        format!("Cc = {} pF", trim_float(op.cc * 1e12)),
        "wu = gm1 / Cc".to_string(),
    ];
    let vis = text_panel(&lines, false);
    Question {
        id: "analog-120".into(),
        category: Category::Analog,
        visual_kind: VisualKind::Equation,
        prompt: "Using the Miller-compensated op-amp parameters in the figure, compute the \
                 unity-gain bandwidth gm1/Cc and express it as a frequency in MHz."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.03,
            unit: Some("MHz".into()),
        },
        difficulty: Difficulty::new(0.7, 3, 0.9, true),
        visual: vis,
        key_marks: vec![1, 2],
    }
}

fn ooo_program(rng: &mut StdRng) -> Vec<Instr> {
    let mut b = program();
    let n = rng.gen_range(5..9);
    for i in 0..n {
        b = match i % 3 {
            0 => b.load(Reg(1 + (i % 3) as u8), Reg(0), 8 * i),
            1 => b.add(Reg(4 + (i % 4) as u8), Reg(1), Reg(2)),
            _ => b.add(Reg(8 + (i % 4) as u8), Reg(9), Reg(10)),
        };
    }
    b.build()
}

fn ooo_question(k: usize, rng: &mut StdRng) -> Question {
    let prog = ooo_program(rng);
    let cfg = OooConfig::default();
    let ooo = run_ooo(&prog, cfg);
    let ino = run_in_order(&prog, cfg);
    let lines: Vec<String> =
        std::iter::once("dual-issue machine: 2 ALUs (1 cy), 1 load unit (3 cy)".to_string())
            .chain(prog.iter().map(|i| format!("{i}")))
            .collect();
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let (prompt, gold): (String, f64) = match k {
        0 => (
            "Scheduling the listed program on the out-of-order machine described (operands \
             and a free unit permitting, any instruction may start regardless of program \
             order), in how many cycles does the last instruction complete? Answer with a \
             number."
                .into(),
            ooo.cycles as f64,
        ),
        1 => (
            "Running the listed program strictly in order (an instruction may not begin \
             before every earlier instruction has begun), in how many cycles does the last \
             instruction complete? Answer with a number."
                .into(),
            ino.cycles as f64,
        ),
        _ => (
            "How many cycles does out-of-order execution save over in-order execution for \
             the listed program on the machine described? Answer with a number."
                .into(),
            (ino.cycles - ooo.cycles) as f64,
        ),
    };
    Question {
        id: format!("arch-{}", 100 + k),
        category: Category::Architecture,
        visual_kind: VisualKind::Table,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("cycles".into()),
        },
        difficulty: Difficulty::new(0.7, 4, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn floorplan_question(k: usize, rng: &mut StdRng) -> Question {
    let a = SlicingTree::module("A", rng.gen_range(4..10), rng.gen_range(4..10));
    let b = SlicingTree::module("B", rng.gen_range(4..10), rng.gen_range(4..10));
    let c = SlicingTree::module("C", rng.gen_range(4..10), rng.gen_range(4..10));
    let tree = SlicingTree::hcut(a.clone(), SlicingTree::vcut(b.clone(), c.clone()));
    let best = tree.best_shape().expect("leaves have shapes");
    let dims = |t: &SlicingTree| -> String {
        if let SlicingTree::Module { name, shapes } = t {
            format!("{name}: {}x{}", shapes[0].w, shapes[0].h)
        } else {
            String::new()
        }
    };
    let lines = vec![
        "slicing floorplan: A over (B beside C)".to_string(),
        dims(&a),
        dims(&b),
        dims(&c),
        "rotations allowed".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..4).collect();
    let (prompt, gold): (String, f64) = match k {
        0 | 1 => (
            "Using Stockmeyer shape curves (each macro may rotate), what is the minimum \
             bounding-box area of the slicing floorplan described in the figure? Answer with \
             a number in square units."
                .into(),
            best.area() as f64,
        ),
        _ => (
            "What fraction of the optimal bounding box is dead space (not covered by any \
             macro)? Answer as a decimal fraction to two decimals."
                .into(),
            (tree.dead_space().expect("valid tree") * 100.0).round() / 100.0,
        ),
    };
    Question {
        id: format!("physical-{}", 100 + k),
        category: Category::Physical,
        visual_kind: VisualKind::Layout,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: (gold * 0.02).max(0.011),
            unit: None,
        },
        difficulty: Difficulty::new(0.7, 4, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn buffering_question(k: usize, rng: &mut StdRng) -> Question {
    let lib = BufferLibrary::nominal();
    let total = f64::from(rng.gen_range(6..=12)) * 1_000.0;
    let stations: Vec<f64> = (1..6).map(|i| f64::from(i) * total / 6.0).collect();
    let plan = insert_buffers(&lib, total, &stations);
    let lines = vec![
        format!("global wire, length {} um", trim_float(total)),
        "r_wire = 1 Ohm/um, c_wire = 0.2 fF/um".to_string(),
        "buffer: Rout = 1 kOhm, Cin = 1 fF, delay 20 ps".to_string(),
        "driver 1 kOhm, sink 2 fF".to_string(),
        format!("{} legal buffer stations, evenly spaced", stations.len()),
    ];
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let (prompt, gold, unit): (String, f64, &str) = if k == 0 {
        (
            "Under the Elmore model with the parameters listed, how many buffers does the \
             delay-optimal insertion use on this route? Answer with a number."
                .into(),
            plan.positions.len() as f64,
            "buffers",
        )
    } else {
        (
            "By what factor does optimal buffering speed up the route relative to the \
             unbuffered wire (unbuffered delay divided by buffered delay)? Answer to two \
             decimals."
                .into(),
            (plan.speedup() * 100.0).round() / 100.0,
            "x",
        )
    };
    Question {
        id: format!("physical-{}", 110 + k),
        category: Category::Physical,
        visual_kind: VisualKind::Diagram,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: (gold * 0.03).max(0.011),
            unit: Some(unit.into()),
        },
        difficulty: Difficulty::new(0.75, 4, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn implant_question(rng: &mut StdRng) -> Question {
    let imp = Implant::new(
        f64::from(rng.gen_range(5..=20)) * 10.0,
        f64::from(rng.gen_range(1..=5)) * 10.0,
        1e15,
    );
    let gold = round_sig(imp.peak_concentration_cm3() / 1e20, 3);
    let lines = vec![
        "ion implant:".to_string(),
        format!("projected range Rp = {} nm", trim_float(imp.range_nm)),
        format!("straggle dRp = {} nm", trim_float(imp.straggle_nm)),
        "dose = 1e15 cm-2".to_string(),
        "Np = dose / (sqrt(2 pi) dRp)".to_string(),
    ];
    let vis = text_panel(&lines, false);
    Question {
        id: "manuf-100".into(),
        category: Category::Manufacture,
        visual_kind: VisualKind::Curve,
        prompt: "Using the Gaussian implant model and the parameters listed, compute the peak \
                 dopant concentration. Answer in units of 1e20 cm-3 to three significant \
                 figures."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.03,
            unit: None,
        },
        difficulty: Difficulty::new(0.75, 3, 0.9, true),
        visual: vis,
        key_marks: vec![2, 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::AnswerSpec;

    #[test]
    fn extension_size_and_determinism() {
        let a = generate(1);
        let b = generate(1);
        assert_eq!(a.len(), EXTENSION_SIZE);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_do_not_collide_with_standard() {
        let ext = generate(0);
        let std = crate::ChipVqa::standard();
        for q in &ext {
            assert!(std.get(&q.id).is_none(), "{} collides", q.id);
        }
        let mut ids: Vec<&str> = ext.iter().map(|q| q.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), EXTENSION_SIZE);
    }

    #[test]
    fn all_extension_questions_are_short_answer_numeric() {
        for q in generate(2) {
            assert!(!q.is_multiple_choice(), "{}", q.id);
            assert!(matches!(q.answer, AnswerSpec::Numeric { .. }), "{}", q.id);
            assert!(q.visual.image.ink_pixels() > 20, "{}", q.id);
        }
    }

    #[test]
    fn ooo_saving_is_nonnegative() {
        for q in generate(4) {
            if q.prompt.contains("save over in-order") {
                let AnswerSpec::Numeric { value, .. } = q.answer else {
                    panic!()
                };
                assert!(value >= 0.0, "{}: {value}", q.id);
            }
        }
    }

    #[test]
    fn floorplan_dead_space_in_unit_interval() {
        for q in generate(6) {
            if q.prompt.contains("dead space") {
                let AnswerSpec::Numeric { value, .. } = q.answer else {
                    panic!()
                };
                assert!((0.0..1.0).contains(&value), "{}: {value}", q.id);
            }
        }
    }
}

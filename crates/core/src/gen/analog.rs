//! Analog Design question generator: 44 multiple-choice questions over
//! DC operating points, small-signal gain, equivalent resistance,
//! feedback, transfer functions and data converters (§III-B.2).

use chipvqa_analog::adc::{Adc, AdcKind};
use chipvqa_analog::devices::{
    common_source_gain, degenerated_cs_gain, looking_into_drain, source_follower_gain, Mosfet,
};
use chipvqa_analog::feedback::FeedbackLoop;
use chipvqa_analog::mna::Circuit;
use chipvqa_analog::render as arender;
use chipvqa_analog::TransferFunction;
use chipvqa_raster::{Annotated, Pixmap, Region, BLACK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{numeric_distractors, shuffle_choices, text_panel};
use crate::question::{
    trim_float, AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind,
};

/// Questions per replica block (Table I's Analog count).
pub const BLOCK_SIZE: usize = 44;

/// Replica block `replica` for the scale engine: the same family
/// sequence under the replica-mixed seed, ids renumbered past the
/// preceding blocks. Replica 0 is [`generate`] verbatim.
pub fn generate_replica(seed: u64, replica: usize) -> Vec<Question> {
    super::replica_block(generate, seed, replica, "analog")
}

/// Generates the 44-question Analog Design set (all multiple choice).
pub fn generate(seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA7A1);
    let mut out = Vec::with_capacity(44);
    let mut idx = 0usize;
    for _ in 0..8 {
        out.push(cs_gain_question(&mut idx, &mut rng));
    }
    for _ in 0..5 {
        out.push(degenerated_question(&mut idx, &mut rng));
    }
    for _ in 0..4 {
        out.push(follower_question(&mut idx, &mut rng));
    }
    for _ in 0..5 {
        out.push(output_resistance_question(&mut idx, &mut rng));
    }
    for _ in 0..5 {
        out.push(divider_question(&mut idx, &mut rng));
    }
    for k in 0..3 {
        out.push(adc_question(k, &mut idx, &mut rng));
    }
    for _ in 0..6 {
        out.push(feedback_question(&mut idx, &mut rng));
    }
    for k in 0..5 {
        out.push(bode_question(k, &mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(tf_pole_question(&mut idx, &mut rng));
    }
    out.push(tf_match_question(&mut idx, &mut rng));
    assert_eq!(out.len(), 44);
    out
}

fn next_id(idx: &mut usize) -> String {
    let id = format!("analog-{idx:03}");
    *idx += 1;
    id
}

fn random_mosfet(rng: &mut StdRng) -> Mosfet {
    Mosfet {
        gm: f64::from(rng.gen_range(1..=8)) * 1e-3,
        ro: f64::from(rng.gen_range(2..=10)) * 25e3,
    }
}

fn round_sig(x: f64, digits: i32) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let mag = 10f64.powi(digits - 1 - x.abs().log10().floor() as i32);
    (x * mag).round() / mag
}

fn cs_gain_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let m = random_mosfet(rng);
    let rd = f64::from(rng.gen_range(2..=20)) * 1e3;
    let gold = round_sig(common_source_gain(m, rd), 3);
    let vis = arender::render_cs_amplifier(m, rd, 0.0);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let distractors = numeric_distractors(gold, None, rng);
    let (choices, correct) = shuffle_choices(trim_float(gold), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt: "The common-source amplifier schematic shows the device transconductance gm, \
                 its output resistance ro and the drain load RD. Assuming the source is at AC \
                 ground and the bias is ideal, determine the small-signal voltage gain \
                 vout/vin."
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.02,
            unit: None,
        },
        difficulty: Difficulty::new(0.55, 2, 0.95, true),
        visual: vis,
        key_marks,
    }
}

fn degenerated_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let m = random_mosfet(rng);
    let rd = f64::from(rng.gen_range(5..=20)) * 1e3;
    let rs = f64::from(rng.gen_range(1..=4)) * 500.0;
    let gold = round_sig(degenerated_cs_gain(m, rd, rs), 3);
    let vis = arender::render_cs_amplifier(m, rd, rs);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let mut distractors = numeric_distractors(gold, None, rng);
    // the classic wrong answer: forgetting the degeneration
    distractors.insert(0, trim_float(round_sig(common_source_gain(m, rd), 3)));
    distractors.retain(|d| *d != trim_float(gold));
    let (choices, correct) = shuffle_choices(trim_float(gold), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt: "The schematic shows a common-source stage with a source-degeneration resistor \
                 RS in addition to the drain load RD; device parameters gm and ro are \
                 annotated. Determine the small-signal voltage gain vout/vin including the \
                 effect of degeneration."
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.02,
            unit: None,
        },
        difficulty: Difficulty::new(0.65, 3, 0.95, true),
        visual: vis,
        key_marks,
    }
}

fn follower_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let m = random_mosfet(rng);
    let rs = f64::from(rng.gen_range(2..=10)) * 1e3;
    let gold = round_sig(source_follower_gain(m, rs), 3);
    let vis = arender::render_cs_amplifier(m, 1.0, rs); // follower drawn as source-loaded stage
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let mut distractors = vec![
        "1".to_string(),
        trim_float(round_sig(m.gm * rs, 3)),
        trim_float(round_sig(-gold, 3)),
        trim_float(round_sig(gold / 2.0, 3)),
    ];
    distractors.retain(|d| *d != trim_float(gold));
    let (choices, correct) = shuffle_choices(trim_float(gold), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt: "The schematic shows a source follower (common-drain stage) driving a source \
                 resistor RS, with gm and ro annotated. What is the small-signal voltage gain \
                 vout/vin of the stage?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.02,
            unit: None,
        },
        difficulty: Difficulty::new(0.55, 2, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn output_resistance_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let m = random_mosfet(rng);
    let rs = f64::from(rng.gen_range(1..=4)) * 1e3;
    let gold_ohms = looking_into_drain(m, rs);
    let gold = round_sig(gold_ohms / 1e3, 3); // in kΩ
    let vis = arender::render_cs_amplifier(m, 10e3, rs);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let mut distractors = vec![
        format!("{} kOhm", trim_float(round_sig(m.ro / 1e3, 3))),
        format!("{} kOhm", trim_float(round_sig((m.ro + rs) / 1e3, 3))),
        format!("{} kOhm", trim_float(round_sig(rs / 1e3, 3))),
        format!("{} kOhm", trim_float(round_sig(gold * 2.0, 3))),
    ];
    let gold_text = format!("{} kOhm", trim_float(gold));
    distractors.retain(|d| *d != gold_text);
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt: "For the degenerated stage shown (gm, ro and RS annotated), determine the \
                 small-signal resistance looking into the drain terminal. Answer in kOhm."
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.02,
            unit: Some("kOhm".into()),
        },
        difficulty: Difficulty::new(0.7, 3, 0.9, true),
        visual: vis,
        key_marks,
    }
}

/// Draws a series/parallel resistor ladder with value labels.
fn divider_schematic(vs: f64, r1: f64, r2: f64, rl: Option<f64>) -> Annotated {
    let mut img = Pixmap::new(420, 300);
    let mut marks: Vec<(String, Region)> = Vec::new();
    img.draw_text(20, 20, &format!("Vs = {}V", trim_float(vs)), 2, BLACK);
    marks.push((
        format!("source Vs = {}V", trim_float(vs)),
        Region::new(16, 14, 130, 26),
    ));
    img.draw_line(60, 50, 60, 250, 2, BLACK);
    // R1 box
    img.draw_rect(120, 60, 90, 36, 2, BLACK);
    let l1 = format!("R1={}k", trim_float(r1 / 1e3));
    img.draw_text(128, 70, &l1, 2, BLACK);
    marks.push((
        format!("series resistor {l1}"),
        Region::new(120, 60, 90, 36),
    ));
    img.draw_line(60, 78, 120, 78, 2, BLACK);
    img.draw_line(210, 78, 300, 78, 2, BLACK);
    // R2 to ground
    img.draw_rect(280, 110, 40, 90, 2, BLACK);
    let l2 = format!("R2={}k", trim_float(r2 / 1e3));
    img.draw_text(326, 140, &l2, 2, BLACK);
    marks.push((
        format!("shunt resistor {l2}"),
        Region::new(278, 108, 110, 94),
    ));
    img.draw_line(300, 78, 300, 110, 2, BLACK);
    img.draw_line(300, 200, 300, 240, 2, BLACK);
    img.draw_line(270, 240, 330, 240, 2, BLACK);
    if let Some(rl) = rl {
        img.draw_rect(360, 110, 40, 90, 2, BLACK);
        let l3 = format!("RL={}k", trim_float(rl / 1e3));
        img.draw_text(352, 90, &l3, 2, BLACK);
        marks.push((
            format!("load resistor {l3}"),
            Region::new(350, 86, 110, 120),
        ));
        img.draw_line(300, 78, 380, 78, 2, BLACK);
        img.draw_line(380, 78, 380, 110, 2, BLACK);
        img.draw_line(380, 200, 380, 240, 2, BLACK);
    }
    img.draw_text(228, 60, "vout", 2, BLACK);
    marks.push(("output node vout".to_string(), Region::new(224, 54, 60, 26)));
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

fn divider_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let vs = f64::from(rng.gen_range(3..=12));
    let r1 = f64::from(rng.gen_range(1..=5)) * 1e3;
    let r2 = f64::from(rng.gen_range(1..=5)) * 1e3;
    let with_load = rng.gen_bool(0.5);
    let rl = with_load.then(|| f64::from(rng.gen_range(2..=6)) * 1e3);
    let mut ckt = Circuit::new();
    ckt.add_voltage_source(1, 0, vs);
    ckt.add_resistor(1, 2, r1);
    ckt.add_resistor(2, 0, r2);
    if let Some(rl) = rl {
        ckt.add_resistor(2, 0, rl);
    }
    let sol = ckt.solve().expect("divider is well-posed");
    let gold = round_sig(sol.voltage(2), 3);
    let vis = divider_schematic(vs, r1, r2, rl);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let mut distractors = numeric_distractors(gold, Some("V"), rng);
    // classic error: ignoring the load
    distractors.insert(
        0,
        format!("{} V", trim_float(round_sig(vs * r2 / (r1 + r2), 3))),
    );
    let gold_text = format!("{} V", trim_float(gold));
    distractors.retain(|d| *d != gold_text);
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt: format!(
            "Given Vs = {}V and the resistor values annotated on the schematic, determine the \
             voltage at the output node vout. Answer in units of V.",
            trim_float(vs)
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.02,
            unit: Some("V".into()),
        },
        difficulty: Difficulty::new(0.4, 2, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn adc_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let bits = rng.gen_range(6..=10);
    let (adc, prompt, gold, unit): (Adc, String, f64, &str) = match k {
        0 => {
            let adc = Adc::new(AdcKind::Flash, bits, 1.0);
            (
                adc,
                format!(
                    "The block diagram shows a {bits}-bit flash analog-to-digital converter. \
                     How many comparators does the architecture require?"
                ),
                adc.comparator_count() as f64,
                "comparators",
            )
        }
        1 => {
            let adc = Adc::new(AdcKind::Sar, bits, 1.0);
            (
                adc,
                format!(
                    "The diagram shows a successive-approximation ADC with a {bits}-bit DAC in \
                     the loop. How many clock cycles does one conversion take?"
                ),
                adc.conversion_cycles() as f64,
                "cycles",
            )
        }
        _ => {
            let adc = Adc::new(AdcKind::Pipeline { bits_per_stage: 2 }, bits, 1.0);
            (
                adc,
                format!(
                    "The pipeline ADC shown resolves 2 bits per stage for {bits} bits total. \
                     How many residue-amplifier stages are required?"
                ),
                f64::from(bits.div_ceil(2)),
                "stages",
            )
        }
    };
    let vis = arender::render_adc(&adc);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let distractors = numeric_distractors(gold, Some(unit), rng);
    let (choices, correct) =
        shuffle_choices(format!("{} {}", trim_float(gold), unit), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Schematic,
        prompt,
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some(unit.into()),
        },
        difficulty: Difficulty::new(0.5, 2, 0.6, true),
        visual: vis,
        key_marks,
    }
}

fn feedback_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let a = f64::from(rng.gen_range(2..=50)) * 100.0;
    let beta = f64::from(rng.gen_range(1..=10)) / 100.0;
    let lp = FeedbackLoop::new(a, beta);
    let gold = round_sig(lp.closed_loop_gain(), 3);
    let vis = arender::render_feedback_block(a, beta);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let mut distractors = vec![
        trim_float(round_sig(lp.ideal_gain(), 3)),
        trim_float(round_sig(a, 3)),
        trim_float(round_sig(lp.loop_gain(), 3)),
        trim_float(round_sig(gold / 2.0, 3)),
    ];
    distractors.retain(|d| *d != trim_float(gold));
    let (choices, correct) = shuffle_choices(trim_float(gold), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Diagram,
        prompt: "The block diagram shows a negative-feedback loop with forward gain a and \
                 feedback factor B annotated. Compute the closed-loop gain y/x to three \
                 significant figures."
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.02,
            unit: None,
        },
        difficulty: Difficulty::new(0.5, 2, 0.85, true),
        visual: vis,
        key_marks,
    }
}

fn bode_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let dc = f64::from(rng.gen_range(2..=4));
    let dc_gain = 10f64.powf(dc);
    let wp1 = 10f64.powf(f64::from(rng.gen_range(2..=3)));
    let tf = if k.is_multiple_of(2) {
        TransferFunction::single_pole(dc_gain, wp1)
    } else {
        TransferFunction::from_poles_zeros(dc_gain, &[wp1, wp1 * 1e3], &[])
    };
    let vis = arender::render_bode(&tf, 1.0, 9);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let (prompt, gold, unit): (String, f64, &str) = match k {
        0 | 1 => {
            let wu = tf.unity_gain_freq().expect("crossover exists");
            (
                "The Bode magnitude plot of an amplifier is shown. Reading the low-frequency \
                 gain and the roll-off from the plot, estimate the unity-gain angular frequency \
                 in rad/s."
                    .into(),
                round_sig(wu, 2),
                "rad/s",
            )
        }
        2 => (
            "From the Bode magnitude plot shown, what is the low-frequency gain of the \
             amplifier in dB?"
                .into(),
            round_sig(20.0 * dc_gain.log10(), 3),
            "dB",
        ),
        3 => {
            let pm = tf.phase_margin_deg().expect("crossover exists");
            (
                "The magnitude response shown belongs to a two-pole amplifier. Estimate its \
                 phase margin at the unity-gain crossover, in degrees."
                    .into(),
                round_sig(pm, 2),
                "degrees",
            )
        }
        _ => (
            "How many poles does the amplifier whose Bode magnitude plot is shown possess \
             within the plotted range?"
                .into(),
            tf.poles().len() as f64,
            "poles",
        ),
    };
    let distractors = numeric_distractors(gold, Some(unit), rng);
    let (choices, correct) =
        shuffle_choices(format!("{} {}", trim_float(gold), unit), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Curve,
        prompt,
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold.abs() * 0.05,
            unit: Some(unit.into()),
        },
        difficulty: Difficulty::new(0.6, 3, 0.95, true),
        visual: vis,
        key_marks,
    }
}

fn tf_pole_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let wp = f64::from(rng.gen_range(1..=9)) * 10f64.powf(f64::from(rng.gen_range(2..=5)));
    let dc = f64::from(rng.gen_range(10..=100));
    let tf = TransferFunction::single_pole(dc, wp);
    let lines = vec![
        "Transfer function:".to_string(),
        format!("H(s) = {} / (1 + s/{})", trim_float(dc), trim_float(wp)),
    ];
    let vis = text_panel(&lines, false);
    let gold = wp;
    let distractors = numeric_distractors(gold, Some("rad/s"), rng);
    let (choices, correct) =
        shuffle_choices(format!("{} rad/s", trim_float(gold)), distractors, rng);
    let _ = tf;
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Equation,
        prompt: "The figure shows the symbolic transfer function of a single-stage amplifier. \
                 At what angular frequency does its pole lie?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.02,
            unit: Some("rad/s".into()),
        },
        difficulty: Difficulty::new(0.45, 1, 0.95, false),
        visual: vis,
        key_marks: vec![1],
    }
}

fn tf_match_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let gold = "integrator";
    let lines = vec![
        "Candidate transfer functions:".to_string(),
        "H1(s) = K / s".to_string(),
        "H2(s) = K s".to_string(),
        "H3(s) = K / (1 + s/wp)".to_string(),
        "H4(s) = K (1 + s/wz)".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let distractors = vec![
        "differentiator".to_string(),
        "single-pole low-pass".to_string(),
        "high-pass with one zero".to_string(),
    ];
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Analog,
        visual_kind: VisualKind::Equations,
        prompt: "Among the transfer functions listed in the figure, what circuit behaviour does \
                 H1(s) = K/s implement?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec!["ideal integrator".to_string()],
        },
        difficulty: Difficulty::new(0.4, 1, 0.7, false),
        visual: vis,
        key_marks: vec![1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_and_all_mc() {
        let qs = generate(0);
        assert_eq!(qs.len(), 44);
        assert!(qs.iter().all(|q| q.is_multiple_choice()));
        assert!(qs.iter().all(|q| q.category == Category::Analog));
    }

    #[test]
    fn visual_kind_distribution() {
        let qs = generate(0);
        let count = |k: VisualKind| qs.iter().filter(|q| q.visual_kind == k).count();
        assert_eq!(count(VisualKind::Schematic), 30);
        assert_eq!(count(VisualKind::Diagram), 6);
        assert_eq!(count(VisualKind::Curve), 5);
        assert_eq!(count(VisualKind::Equation), 2);
        assert_eq!(count(VisualKind::Equations), 1);
    }

    #[test]
    fn cs_gain_gold_matches_mna() {
        // cross-check a generated CS-gain question's gold against an
        // independent MNA solve reconstructed from the marks
        let qs = generate(9);
        let q = &qs[0];
        let AnswerSpec::Numeric { value, .. } = q.answer else {
            panic!("cs gain is numeric");
        };
        assert!(value < 0.0, "CS stage inverts: {value}");
    }

    #[test]
    fn choices_distinct_and_contain_gold() {
        for q in generate(4) {
            let QuestionKind::MultipleChoice { choices, correct } = &q.kind else {
                panic!()
            };
            let mut set = choices.to_vec();
            set.sort();
            set.dedup();
            assert_eq!(set.len(), 4, "{}: {choices:?}", q.id);
            assert_eq!(&choices[*correct], &q.golden_text());
        }
    }

    #[test]
    fn visuals_are_rendered() {
        for q in generate(1) {
            assert!(q.visual.image.ink_pixels() > 30, "{}", q.id);
            assert!(!q.visual.marks.is_empty(), "{}", q.id);
        }
    }

    #[test]
    fn divider_gold_in_range() {
        for q in generate(7) {
            if q.prompt.contains("voltage at the output node") {
                let AnswerSpec::Numeric { value, .. } = q.answer else {
                    panic!()
                };
                assert!(value > 0.0 && value < 12.0, "{}: {value}", q.id);
            }
        }
    }
}

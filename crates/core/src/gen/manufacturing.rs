//! Manufacturing question generator: 20 questions (5 MC + 15 SA) over
//! lithography, etching, doping, oxidation, yield and process flows
//! (§III-B.5) — including the paper's Buffered-HF over-etch example with
//! its long scenario prompt.

use chipvqa_manuf::diffusion::Diffusion;
use chipvqa_manuf::etch::{etch_stack, EtchProcess, Layer, Material};
use chipvqa_manuf::litho::{Lithography, Ret};
use chipvqa_manuf::oxidation::DealGrove;
use chipvqa_manuf::render as mrender;
use chipvqa_manuf::yield_model::{gross_dies_per_wafer, YieldModel};
use chipvqa_raster::{Annotated, Pixmap, Region, BLACK, GRAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{shuffle_choices, text_panel};
use crate::question::{
    trim_float, AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind,
};

/// Questions per replica block (Table I's Manufacture count).
pub const BLOCK_SIZE: usize = 20;

/// Replica block `replica` for the scale engine: the same family
/// sequence under the replica-mixed seed, ids renumbered past the
/// preceding blocks. Replica 0 is [`generate`] verbatim.
pub fn generate_replica(seed: u64, replica: usize) -> Vec<Question> {
    super::replica_block(generate, seed, replica, "manuf")
}

/// Generates the 20-question Manufacturing set (5 MC, 15 SA).
pub fn generate(seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3A0F);
    let mut out = Vec::with_capacity(20);
    let mut idx = 0usize;
    for k in 0..3 {
        out.push(boe_overetch_question(k, &mut idx, &mut rng));
    }
    out.push(stack_remaining_question(&mut idx, &mut rng));
    out.push(ret_mc_question(&mut idx, &mut rng));
    out.push(ret_sa_question(&mut idx, &mut rng));
    for _ in 0..2 {
        out.push(resolution_question(&mut idx, &mut rng));
    }
    out.push(dof_question(&mut idx, &mut rng));
    out.push(junction_question(&mut idx, &mut rng));
    for k in 0..3 {
        out.push(oxidation_question(k, &mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(dies_per_wafer_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(yield_mc_question(&mut idx, &mut rng));
    }
    for k in 0..3 {
        out.push(flow_question(k, &mut idx, &mut rng));
    }
    assert_eq!(out.len(), 20);
    out
}

fn next_id(idx: &mut usize) -> String {
    let id = format!("manuf-{idx:03}");
    *idx += 1;
    id
}

fn boe_overetch_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let thickness = f64::from(rng.gen_range(3..=8)) * 100.0;
    let rate = f64::from(rng.gen_range(5..=15)) * 10.0;
    let over = f64::from(rng.gen_range(1..=3)) * 5.0 / 100.0;
    let boe = EtchProcess::wet("5:1 BOE", Material::SiO2, rate);
    let gold = boe.time_for_overetch(thickness, over);
    let stack = [
        Layer {
            material: Material::SiO2,
            thickness_nm: thickness,
        },
        Layer {
            material: Material::Si,
            thickness_nm: 2000.0,
        },
    ];
    let vis = mrender::render_stack_cross_section(&stack, "etch window");
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    // The first instance carries the paper's long scenario prompt; the
    // others are terser variants, spreading the token-length spectrum.
    let prompt = if k == 0 {
        format!(
            "Assume 5:1 BOE (Buffered HF) etches SiO2 isotropically at {rate} nm/min, RIE \
             etches SiO2 at {rie} nm/min and has a SiO2:Si selectivity of 15:1. Assume a \
             Si/SiO2 substrate with patterned photoresist as shown in the figure: the oxide \
             film of thickness {thickness} nm sits on a thick silicon substrate, and the \
             resist opening exposes the oxide in the window indicated by the arrow. Recall \
             that a wet chemistry like BOE attacks the film equally in all directions, so the \
             opening also undercuts the resist edge while the film clears vertically, whereas \
             the reactive-ion etch is nearly vertical; production recipes therefore time the \
             wet etch from the nominal film thickness and add a deliberate safety margin so \
             that slow spots across the wafer still clear. In this lab module the wafer has \
             already been cleaned in piranha solution, rinsed in deionized water and spun \
             dry; the photoresist was spun at 4000 rpm, soft baked at 90 C for 60 seconds, \
             exposed through the contact mask drawn above and developed, so the oxide window \
             is open and ready for the wet chemistry. The beaker of buffered oxide etch sits \
             at 21 C on the wet bench, freshly mixed, and you may assume the quoted etch rate \
             holds constant over the full immersion because the buffering agent replenishes \
             the fluoride as it is consumed. Ignore the negligible etching of the photoresist \
             mask and of the underlying silicon by the BOE chemistry, ignore loading effects \
             from neighbouring wafers in the cassette, and ignore the few seconds needed to \
             transfer the wafer into the rinse tank when you time the process. For the \
             structure above, how long should this wafer be placed in 5:1 BOE etchant to \
             record a {pct}% over-etch? Answer in minutes.",
            rate = trim_float(rate),
            rie = trim_float(rate * 2.0),
            thickness = trim_float(thickness),
            pct = trim_float(over * 100.0),
        )
    } else {
        format!(
            "5:1 BOE etches the SiO2 film shown at {} nm/min. The film is {} nm thick. How \
             many minutes of etching give a {}% over-etch?",
            trim_float(rate),
            trim_float(thickness),
            trim_float(over * 100.0),
        )
    };
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Mixed,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: (gold * 1000.0).round() / 1000.0,
            tolerance: gold * 0.02,
            unit: Some("minutes".into()),
        },
        difficulty: Difficulty::new(0.7, 3, 0.85, true),
        visual: vis,
        key_marks,
    }
}

fn stack_remaining_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let oxide = f64::from(rng.gen_range(2..=5)) * 100.0;
    let minutes = f64::from(rng.gen_range(2..=4));
    let rie = EtchProcess::rie("CHF3 RIE", Material::SiO2, 200.0, 0.95)
        .with_selectivity(Material::Si, 15.0);
    let stack = [
        Layer {
            material: Material::SiO2,
            thickness_nm: oxide,
        },
        Layer {
            material: Material::Si,
            thickness_nm: 2000.0,
        },
    ];
    let after = etch_stack(&stack, &rie, minutes);
    let gold = after
        .iter()
        .find(|l| l.material == Material::Si)
        .map(|l| 2000.0 - l.thickness_nm)
        .unwrap_or(2000.0);
    let vis = mrender::render_stack_cross_section(&stack, "RIE window");
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Mixed,
        prompt: format!(
            "A reactive-ion etch removes SiO2 at 200 nm/min with a SiO2:Si selectivity of \
             15:1. The cross-section shows a {} nm oxide film over silicon. After {} minutes \
             in the RIE chamber, how many nanometres of the underlying silicon have been \
             consumed in the open window? Answer in nm.",
            trim_float(oxide),
            trim_float(minutes)
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: (gold * 100.0).round() / 100.0,
            tolerance: gold.abs().max(1.0) * 0.03,
            unit: Some("nm".into()),
        },
        difficulty: Difficulty::new(0.75, 4, 0.85, true),
        visual: vis,
        key_marks,
    }
}

const ALL_RETS: [Ret; 5] = [
    Ret::Opc,
    Ret::Psm,
    Ret::Oai,
    Ret::Sraf,
    Ret::MultiPatterning,
];

fn ret_mc_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let ret = *super::pick(&ALL_RETS, rng);
    let vis = mrender::render_ret_figure(ret);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let distractors: Vec<String> = ALL_RETS
        .iter()
        .filter(|r| **r != ret)
        .map(|r| r.name().to_string())
        .collect();
    let (choices, correct) = shuffle_choices(ret.name().to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Figure,
        prompt: "What is the lithography resolution enhancement technique depicted in the \
                 figure?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: ret.name().to_string(),
            aliases: vec![ret.signature().to_string()],
        },
        difficulty: Difficulty::new(0.65, 1, 1.0, false),
        visual: vis,
        key_marks,
    }
}

fn ret_sa_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let ret = *super::pick(&ALL_RETS, rng);
    let vis = mrender::render_ret_figure(ret);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Figure,
        prompt: "Name the RET shown.".into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Text {
            canonical: ret.name().to_string(),
            aliases: match ret {
                Ret::Opc => vec!["optical proximity correction".into()],
                Ret::Psm => vec!["phase shift mask".into(), "phase-shift mask".into()],
                Ret::Oai => vec!["off-axis illumination".into()],
                Ret::Sraf => vec![
                    "sub-resolution assist features".into(),
                    "scatter bars".into(),
                ],
                Ret::MultiPatterning => vec!["double patterning".into()],
            },
        },
        difficulty: Difficulty::new(0.7, 1, 1.0, false),
        visual: vis,
        key_marks,
    }
}

fn resolution_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let (tool, name) = if rng.gen_bool(0.5) {
        (Lithography::arf_immersion(), "193 nm ArF immersion")
    } else {
        (Lithography::euv(), "13.5 nm EUV")
    };
    let gold = (tool.resolution_nm() * 10.0).round() / 10.0;
    let lines = vec![
        format!("scanner: {name}"),
        format!("wavelength = {} nm", trim_float(tool.wavelength_nm)),
        format!("NA = {}", trim_float(tool.na)),
        format!("k1 = {}", trim_float(tool.k1)),
        "R = k1 * wavelength / NA".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..4).collect();
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Diagram,
        prompt: format!(
            "The diagram lists the optics of a {name} scanner together with the Rayleigh \
             criterion. What minimum half-pitch resolution does the tool achieve? Answer in \
             nm to one decimal place."
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.03,
            unit: Some("nm".into()),
        },
        difficulty: Difficulty::new(0.55, 2, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn dof_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let tool = Lithography::new(193.0, 0.5 + f64::from(rng.gen_range(0..8)) * 0.1, 0.35, 0.5);
    let gold = (tool.depth_of_focus_nm() * 10.0).round() / 10.0;
    let lines = vec![
        format!("wavelength = {} nm", trim_float(tool.wavelength_nm)),
        format!("NA = {:.1}", tool.na),
        format!("k2 = {}", trim_float(tool.k2)),
        "DOF = k2 * wavelength / NA^2".to_string(),
    ];
    let vis = text_panel(&lines, false);
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Diagram,
        prompt: "Using the Rayleigh depth-of-focus relation and the scanner parameters listed \
                 in the diagram, compute the usable depth of focus. Answer in nm to one \
                 decimal place."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.03,
            unit: Some("nm".into()),
        },
        difficulty: Difficulty::new(0.6, 2, 0.9, true),
        visual: vis,
        key_marks: vec![0, 1, 2],
    }
}

fn junction_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let hours = f64::from(rng.gen_range(1..=4));
    let d = Diffusion::new(1e-13, hours * 3600.0);
    let dose = 1e15;
    let bg = 1e16;
    let xj_cm = d
        .gaussian_junction_depth_cm(dose, bg)
        .expect("dose dominates background");
    let gold_um = (xj_cm * 1e4 * 100.0).round() / 100.0;
    let samples: Vec<(f64, f64)> = (0..80)
        .map(|i| {
            let x_nm = i as f64 * xj_cm * 1e7 / 50.0;
            (x_nm, d.gaussian_profile(dose, x_nm * 1e-7))
        })
        .collect();
    let vis = mrender::render_profile_curve(&samples, Some(xj_cm * 1e7));
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Curve,
        prompt: format!(
            "A limited-source boron drive-in runs {} hours at a diffusivity of 1e-13 cm2/s \
             with an implanted dose of 1e15 cm-2 into a substrate doped 1e16 cm-3; the \
             resulting Gaussian profile is plotted in the curve. At what depth does the \
             junction form (where the profile crosses the background level)? Answer in \
             micrometres to two decimals.",
            trim_float(hours)
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold_um,
            tolerance: gold_um * 0.05,
            unit: Some("um".into()),
        },
        difficulty: Difficulty::new(0.8, 4, 0.7, true),
        visual: vis,
        key_marks,
    }
}

fn oxidation_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let wet = rng.gen_bool(0.5);
    let dg = if wet {
        DealGrove::wet_1100c()
    } else {
        DealGrove::dry_1100c()
    };
    let ambient = if wet { "wet (steam)" } else { "dry O2" };
    let stack = [Layer {
        material: Material::SiO2,
        thickness_nm: 100.0,
    }];
    let vis = mrender::render_stack_cross_section(&stack, "growing oxide");
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let (prompt, gold, unit): (String, f64, &str) = match k {
        0 | 1 => {
            let hours = f64::from(rng.gen_range(1..=6));
            let x = dg.thickness_um(hours, 0.0);
            (
                format!(
                    "Bare silicon is oxidised for {} hours at 1100 C in a {} ambient \
                     (Deal-Grove: B/A = {} um/hr, B = {} um2/hr). What oxide thickness \
                     results? Answer in micrometres to two decimals.",
                    trim_float(hours),
                    ambient,
                    trim_float(dg.linear_um_hr),
                    trim_float(dg.parabolic_um2_hr),
                ),
                (x * 100.0).round() / 100.0,
                "um",
            )
        }
        _ => {
            let x = 0.5;
            (
                format!(
                    "The cross-section shows {} nm of thermally grown SiO2. Roughly how many \
                     nanometres of the original silicon surface were consumed growing it? \
                     Answer in nm.",
                    trim_float(x * 1000.0)
                ),
                (DealGrove::silicon_consumed_um(x) * 1000.0 * 10.0).round() / 10.0,
                "nm",
            )
        }
    };
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Schematic,
        prompt,
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.05,
            unit: Some(unit.into()),
        },
        difficulty: Difficulty::new(0.65, 3, 0.6, true),
        visual: vis,
        key_marks,
    }
}

/// Draws a wafer map: circle with a die grid and caption.
fn wafer_map(diameter_mm: f64, die_mm2: f64) -> Annotated {
    let mut img = Pixmap::new(360, 360);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let (cx, cy, r) = (180i64, 170i64, 140i64);
    img.draw_circle(cx, cy, r, 2, BLACK);
    let die_px = ((die_mm2.sqrt() / diameter_mm) * 2.0 * r as f64).max(6.0) as i64;
    let mut y = cy - r;
    while y < cy + r {
        let mut x = cx - r;
        while x < cx + r {
            let ddx = (x + die_px / 2 - cx) as f64;
            let ddy = (y + die_px / 2 - cy) as f64;
            if (ddx * ddx + ddy * ddy).sqrt() < (r - die_px) as f64 {
                img.draw_rect(x, y, die_px, die_px, 1, GRAY);
            }
            x += die_px;
        }
        y += die_px;
    }
    let cap = format!(
        "{} mm wafer, {} mm2 dies",
        trim_float(diameter_mm),
        trim_float(die_mm2)
    );
    img.draw_text(40, 330, &cap, 2, BLACK);
    marks.push((format!("caption: {cap}"), Region::new(36, 324, 300, 26)));
    marks.push((
        "wafer outline with die grid".to_string(),
        Region::new(
            (cx - r) as usize,
            (cy - r) as usize,
            (2 * r) as usize,
            (2 * r) as usize,
        ),
    ));
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

fn dies_per_wafer_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let diameter = *super::pick(&[200.0f64, 300.0], rng);
    let die = f64::from(rng.gen_range(5..=30)) * 10.0;
    let gold = gross_dies_per_wafer(diameter, die) as f64;
    let vis = wafer_map(diameter, die);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Layout,
        prompt: format!(
            "The wafer map shows a {} mm wafer tiled with {} mm2 dies. Using the standard \
             edge-corrected estimate (pi d^2 / 4A - pi d / sqrt(2A)), how many gross dies fit \
             on the wafer? Answer with an integer.",
            trim_float(diameter),
            trim_float(die)
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: gold * 0.02 + 1.0,
            unit: Some("dies".into()),
        },
        difficulty: Difficulty::new(0.6, 3, 0.7, true),
        visual: vis,
        key_marks,
    }
}

fn yield_mc_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let area = f64::from(rng.gen_range(1..=4)) * 0.5; // cm²
    let d0 = f64::from(rng.gen_range(2..=10)) / 10.0;
    let gold = (YieldModel::Poisson.die_yield(area, d0) * 1000.0).round() / 10.0;
    let vis = wafer_map(300.0, area * 100.0);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let mut distractors = vec![
        format!(
            "{}%",
            trim_float((YieldModel::Murphy.die_yield(area, d0) * 1000.0).round() / 10.0)
        ),
        format!("{}%", trim_float((gold * 0.5 * 10.0).round() / 10.0)),
        format!("{}%", trim_float(((100.0 - gold) * 10.0).round() / 10.0)),
        format!("{}%", trim_float((gold.powf(0.5) * 100.0).round() / 10.0)),
    ];
    let gold_text = format!("{}%", trim_float(gold));
    distractors.retain(|d| *d != gold_text);
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Manufacture,
        visual_kind: VisualKind::Layout,
        prompt: format!(
            "A {} cm2 die is manufactured on the wafer shown with a defect density of {} \
             defects/cm2. Under the Poisson yield model Y = exp(-A D0), what die yield do you \
             expect?",
            trim_float(area),
            trim_float(d0)
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.5,
            unit: Some("percent".into()),
        },
        difficulty: Difficulty::new(0.6, 2, 0.5, true),
        visual: vis,
        key_marks,
    }
}

fn flow_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let steps = [
        "clean wafer",
        "grow gate oxide",
        "deposit polysilicon",
        "pattern gate (litho + etch)",
        "source/drain implant",
        "activation anneal",
        "contact formation",
    ];
    if k < 2 {
        let hole = rng.gen_range(1..steps.len() - 1);
        let gold = steps[hole];
        let lines: Vec<String> = steps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == hole {
                    "???".into()
                } else {
                    (*s).to_string()
                }
            })
            .collect();
        let vis = text_panel(&lines, true);
        let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
        let distractors: Vec<String> = steps
            .iter()
            .filter(|&&s| s != gold)
            .take(4)
            .map(|&s| s.to_string())
            .collect();
        let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
        Question {
            id: next_id(idx),
            category: Category::Manufacture,
            visual_kind: VisualKind::Flow,
            prompt: "The flow chart shows a self-aligned MOS front-end process with one step \
                     hidden. Which step belongs in the hidden box?"
                .into(),
            kind: QuestionKind::MultipleChoice { choices, correct },
            answer: AnswerSpec::Text {
                canonical: gold.to_string(),
                aliases: vec![],
            },
            difficulty: Difficulty::new(0.6, 2, 0.85, false),
            visual: vis,
            key_marks,
        }
    } else {
        // SA: why is the process called self-aligned?
        let lines: Vec<String> = steps.iter().map(|s| (*s).to_string()).collect();
        let vis = text_panel(&lines, true);
        let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
        Question {
            id: next_id(idx),
            category: Category::Manufacture,
            visual_kind: VisualKind::Flow,
            prompt: "In the MOS process flow shown, which already-patterned structure acts as \
                     the implantation mask that makes the source/drain implant self-aligned?"
                .into(),
            kind: QuestionKind::ShortAnswer,
            answer: AnswerSpec::Text {
                canonical: "the polysilicon gate".into(),
                aliases: vec![
                    "polysilicon gate".into(),
                    "the gate".into(),
                    "poly gate".into(),
                    "gate".into(),
                ],
            },
            difficulty: Difficulty::new(0.7, 2, 0.6, false),
            visual: vis,
            key_marks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::count_tokens;

    #[test]
    fn exact_counts_and_split() {
        let qs = generate(0);
        assert_eq!(qs.len(), 20);
        let mc = qs.iter().filter(|q| q.is_multiple_choice()).count();
        assert_eq!(mc, 5);
    }

    #[test]
    fn visual_kind_distribution() {
        let qs = generate(0);
        let count = |k: VisualKind| qs.iter().filter(|q| q.visual_kind == k).count();
        assert_eq!(count(VisualKind::Mixed), 4);
        assert_eq!(count(VisualKind::Figure), 2);
        assert_eq!(count(VisualKind::Diagram), 3);
        assert_eq!(count(VisualKind::Curve), 1);
        assert_eq!(count(VisualKind::Schematic), 3);
        assert_eq!(count(VisualKind::Layout), 4);
        assert_eq!(count(VisualKind::Flow), 3);
    }

    #[test]
    fn boe_gold_matches_formula() {
        let qs = generate(0);
        let q = &qs[0];
        assert!(q.prompt.contains("Buffered HF"));
        let AnswerSpec::Numeric { value, .. } = q.answer else {
            panic!()
        };
        assert!(value > 0.0 && value < 100.0);
        // the flagship prompt is the long-token one
        assert!(count_tokens(&q.prompt) > 150, "{}", count_tokens(&q.prompt));
    }

    #[test]
    fn short_and_long_prompts_coexist() {
        let qs = generate(0);
        let tokens: Vec<usize> = qs.iter().map(|q| count_tokens(&q.prompt)).collect();
        assert!(tokens.iter().any(|&t| t < 30));
        assert!(tokens.iter().any(|&t| t > 150));
    }

    #[test]
    fn sa_dominates_category() {
        let qs = generate(0);
        let sa = qs.iter().filter(|q| !q.is_multiple_choice()).count();
        assert_eq!(sa, 15, "manufacture is the SA-heavy category");
    }

    #[test]
    fn all_visuals_rendered() {
        for q in generate(1) {
            assert!(q.visual.image.ink_pixels() > 30, "{}", q.id);
            assert!(!q.visual.marks.is_empty(), "{}", q.id);
        }
    }
}

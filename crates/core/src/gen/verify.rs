//! Golden-answer re-verification against the solver substrates.
//!
//! Scaled collections are only trustworthy if their goldens can be
//! *checked*, not just generated. Two independent layers:
//!
//! * [`verify_question`] — intrinsic, per-question: boolean-expression
//!   goldens are re-solved (parse → truth table → Quine–McCluskey
//!   re-minimisation → equivalence), MC choice sets are checked against
//!   the semantic golden (the correct choice must match it, every
//!   distractor must *refute* it — numerically outside tolerance, or
//!   logically non-equivalent by truth table), numeric goldens must be
//!   finite with sane tolerances.
//! * [`reverify`] — differential, per-collection: every replica block a
//!   [`DatasetSpec`] consumed is regenerated from scratch — re-running
//!   the MNA, pipeline, routing and process-physics solvers inside the
//!   generators — and the freshly derived goldens are compared against
//!   the collection's recorded ones.

use chipvqa_logic::Expr;

use crate::dataset::ChipVqa;
use crate::question::{AnswerSpec, Question, QuestionKind};
use crate::spec::DatasetSpec;

/// The expression body of a possibly equation-styled string
/// (`"Q = S'Q + SR'"` → `"S'Q + SR'"`).
fn expr_body(s: &str) -> &str {
    match s.split_once('=') {
        Some((_, rhs)) => rhs.trim(),
        None => s.trim(),
    }
}

/// Parses the leading numeric token of a choice string ("42 V" → 42.0,
/// "24.7%" → 24.7).
fn leading_number(s: &str) -> Option<f64> {
    let token = s.split_whitespace().next()?;
    if let Ok(x) = token.parse::<f64>() {
        return Some(x);
    }
    // unit glued onto the number: strip trailing non-numeric characters
    let trimmed = token.trim_end_matches(|c: char| !(c.is_ascii_digit() || c == '.'));
    trimmed.parse::<f64>().ok()
}

/// The acceptance band of a numeric golden (mirrors the judge's rule:
/// absolute tolerance or 1% relative, whichever is wider).
fn numeric_band(value: f64, tolerance: f64) -> f64 {
    tolerance.max(0.01 * value.abs())
}

/// Checks one question's golden answer against its solver substrate.
/// Returns a description of the first violated invariant.
///
/// # Errors
///
/// Fails when the golden is malformed (non-finite numerics, empty
/// canonical text, unparseable boolean canonical), when the canonical
/// boolean expression does not survive a truth-table → re-minimisation
/// round trip, or when an MC choice set contradicts the semantic golden
/// (correct choice not matching it, or a distractor satisfying it).
pub fn verify_question(q: &Question) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", q.id));
    if q.id.is_empty() || q.prompt.is_empty() {
        return fail("empty id or prompt".into());
    }
    match &q.answer {
        AnswerSpec::Numeric {
            value, tolerance, ..
        } => {
            if !value.is_finite() || !tolerance.is_finite() || *tolerance < 0.0 {
                return fail(format!("bad numeric golden {value} ± {tolerance}"));
            }
        }
        AnswerSpec::Text { canonical, .. } => {
            if canonical.trim().is_empty() {
                return fail("empty canonical text".into());
            }
        }
        AnswerSpec::BoolExpr { canonical } => {
            // re-solve: parse, tabulate, re-minimize, check equivalence
            let expr = match Expr::parse(expr_body(canonical)) {
                Ok(e) => e,
                Err(e) => return fail(format!("unparseable golden '{canonical}': {e:?}")),
            };
            let table = expr
                .truth_table()
                .map_err(|_| format!("{}: golden has too many variables", q.id))?;
            let reminimized = chipvqa_logic::minimize::minimize_table(&table);
            match reminimized.equivalent(&expr) {
                Ok(true) => {}
                Ok(false) => {
                    return fail(format!(
                        "re-minimisation of '{canonical}' is not equivalent (got '{reminimized}')"
                    ))
                }
                Err(_) => return fail("equivalence check overflowed".into()),
            }
        }
    }
    if let QuestionKind::MultipleChoice { choices, correct } = &q.kind {
        if *correct >= choices.len() {
            return fail(format!("correct index {correct} out of range"));
        }
        let mut distinct = choices.to_vec();
        distinct.sort();
        distinct.dedup();
        if distinct.len() != choices.len() {
            return fail(format!("duplicate choices {choices:?}"));
        }
        for (i, choice) in choices.iter().enumerate() {
            let is_gold = i == *correct;
            verify_choice(q, choice, is_gold)?;
        }
    }
    Ok(())
}

/// Checks one MC choice against the semantic golden: the correct choice
/// must satisfy it, a distractor must refute it.
fn verify_choice(q: &Question, choice: &str, is_gold: bool) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", q.id));
    match &q.answer {
        AnswerSpec::Numeric {
            value, tolerance, ..
        } => {
            let band = numeric_band(*value, *tolerance);
            match leading_number(choice) {
                Some(x) if is_gold && (x - value).abs() > band => {
                    return fail(format!("gold choice '{choice}' outside {value} ± {band}"));
                }
                // MC presentation judges by choice text, so a distractor
                // may sit inside the short-answer band (off-by-one bit
                // patterns do); it must never *be* the golden value.
                Some(x) if !is_gold && x == *value => {
                    return fail(format!("distractor '{choice}' equals golden {value}"));
                }
                None if is_gold => {
                    return fail(format!("gold choice '{choice}' is not numeric"));
                }
                // in-band gold, off-gold distractor, or a non-numeric
                // distractor (which cannot satisfy a numeric golden)
                _ => {}
            }
        }
        AnswerSpec::Text { canonical, aliases } => {
            let matches = |s: &str| {
                let s = s.trim().to_ascii_lowercase();
                s == canonical.trim().to_ascii_lowercase()
                    || aliases.iter().any(|a| s == a.trim().to_ascii_lowercase())
            };
            if is_gold && !matches(choice) {
                return fail(format!(
                    "gold choice '{choice}' matches no accepted phrasing"
                ));
            }
            if !is_gold && matches(choice) {
                return fail(format!("distractor '{choice}' matches the golden text"));
            }
        }
        AnswerSpec::BoolExpr { canonical } => {
            let gold = Expr::parse(expr_body(canonical))
                .map_err(|e| format!("{}: unparseable golden '{canonical}': {e:?}", q.id))?;
            match Expr::parse(expr_body(choice)) {
                Ok(expr) => match expr.equivalent(&gold) {
                    Ok(eq) => {
                        if is_gold && !eq {
                            return fail(format!("gold choice '{choice}' ≠ '{canonical}'"));
                        }
                        if !is_gold && eq {
                            return fail(format!("distractor '{choice}' ≡ golden '{canonical}'"));
                        }
                    }
                    Err(_) => return fail("equivalence check overflowed".into()),
                },
                Err(e) if is_gold => {
                    return fail(format!("gold choice '{choice}' unparseable: {e:?}"));
                }
                Err(_) => {} // unparseable distractor trivially refutes
            }
        }
    }
    Ok(())
}

/// Verifies every question of an iterator; returns how many passed.
///
/// # Errors
///
/// Propagates the first [`verify_question`] failure.
pub fn verify_collection<'a, I>(questions: I) -> Result<usize, String>
where
    I: IntoIterator<Item = &'a Question>,
{
    let mut n = 0;
    for q in questions {
        verify_question(q)?;
        n += 1;
    }
    Ok(n)
}

/// Differential re-verification of a built collection against freshly
/// regenerated replica blocks.
///
/// Every block the spec consumed is produced again directly from the
/// discipline generators — re-running the substrate solvers that derive
/// the goldens (logic minimisation, MNA, pipeline simulation, routing
/// cost, process physics) — and each recorded question is compared to
/// its freshly derived twin: same id, prompt, visual kind and semantic
/// golden (the MC→SA presentation may differ; the golden may not).
/// Returns the number of questions re-verified.
///
/// # Errors
///
/// Fails when the collection does not match the spec's shape or when
/// any recorded golden disagrees with its regenerated twin.
pub fn reverify(spec: &DatasetSpec, built: &ChipVqa) -> Result<usize, String> {
    if built.len() != spec.total() {
        return Err(format!(
            "collection has {} questions, spec expects {}",
            built.len(),
            spec.total()
        ));
    }
    let counts = spec.category_counts();
    let mut cursor = built.iter();
    let mut verified = 0;
    for (cat_idx, &count) in counts.iter().enumerate() {
        let mut produced = 0;
        let mut replica = 0;
        while produced < count {
            let fresh = regenerate_block(cat_idx, spec.seed, replica);
            for twin in fresh.iter().take(count - produced) {
                let recorded = cursor
                    .next()
                    .ok_or_else(|| "collection shorter than spec shape".to_string())?;
                if recorded.id != twin.id
                    || recorded.prompt != twin.prompt
                    || recorded.visual_kind != twin.visual_kind
                    || recorded.answer != twin.answer
                    || recorded.category != twin.category
                {
                    return Err(format!(
                        "{}: recorded golden disagrees with regenerated twin {}",
                        recorded.id, twin.id
                    ));
                }
                produced += 1;
                verified += 1;
            }
            replica += 1;
        }
    }
    Ok(verified)
}

/// One fresh replica block straight from the discipline generator.
fn regenerate_block(cat_idx: usize, seed: u64, replica: usize) -> Vec<Question> {
    use crate::question::Category;
    match Category::ALL[cat_idx] {
        Category::Digital => super::digital::generate_replica(seed, replica),
        Category::Analog => super::analog::generate_replica(seed, replica),
        Category::Architecture => super::architecture::generate_replica(seed, replica),
        Category::Manufacture => super::manufacturing::generate_replica(seed, replica),
        Category::Physical => super::physical::generate_replica(seed, replica),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_collection_verifies() {
        let bench = ChipVqa::standard();
        assert_eq!(verify_collection(bench.iter()), Ok(142));
    }

    #[test]
    fn tampered_golden_is_caught() {
        let bench = ChipVqa::standard();
        let mut q = bench.questions()[0].clone();
        // flip the golden to one of the distractors
        if let QuestionKind::MultipleChoice { correct, choices } = &mut q.kind {
            *correct = (*correct + 1) % choices.len();
        }
        assert!(verify_question(&q).is_err(), "swapped gold must fail");
    }

    #[test]
    fn tampered_numeric_tolerance_is_caught() {
        let bench = ChipVqa::standard();
        let mut hit = false;
        for q in bench.iter() {
            if let AnswerSpec::Numeric { tolerance, .. } = &q.answer {
                let mut bad = q.clone();
                if let AnswerSpec::Numeric { tolerance: t, .. } = &mut bad.answer {
                    *t = -tolerance.abs() - 1.0;
                }
                assert!(verify_question(&bad).is_err());
                hit = true;
                break;
            }
        }
        assert!(hit, "the collection has numeric goldens");
    }

    #[test]
    fn reverify_accepts_spec_builds_and_rejects_foreign_collections() {
        let spec = DatasetSpec::scaled(2);
        let built = spec.build();
        assert_eq!(reverify(&spec, &built), Ok(284));

        // a different seed's collection cannot pass as this spec's
        let other = spec.clone().with_seed(spec.seed + 1).build();
        assert!(reverify(&spec, &other).is_err());

        // neither can a size mismatch
        assert!(reverify(&DatasetSpec::default(), &built).is_err());
    }
}

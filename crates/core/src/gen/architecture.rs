//! Architecture question generator: 20 questions (7 MC + 13 SA) over
//! pipelining, bypassing, caches, coherence, virtual memory, branch
//! prediction, vector execution and network topology (§III-B.3).

use chipvqa_arch::branch::{accuracy, loop_trace, OneBitPredictor, TwoBitPredictor};
use chipvqa_arch::cache::{Cache, CacheConfig, Replacement};
use chipvqa_arch::coherence::{cpu_transition, CpuOp, Mesi};
use chipvqa_arch::isa::{program, Instr, Reg};
use chipvqa_arch::noc::Topology;
use chipvqa_arch::pipeline::{ForwardingConfig, Pipeline};
use chipvqa_arch::render as xrender;
use chipvqa_arch::vector::{daxpy, VectorMachine};
use chipvqa_arch::vm::{AddressSpace, Translation, VmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{numeric_distractors, shuffle_choices, text_panel};
use crate::question::{
    trim_float, AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind,
};

/// Questions per replica block (Table I's Architecture count).
pub const BLOCK_SIZE: usize = 20;

/// Replica block `replica` for the scale engine: the same family
/// sequence under the replica-mixed seed, ids renumbered past the
/// preceding blocks. Replica 0 is [`generate`] verbatim.
pub fn generate_replica(seed: u64, replica: usize) -> Vec<Question> {
    super::replica_block(generate, seed, replica, "arch")
}

/// Generates the 20-question Architecture set (7 MC, 13 SA).
pub fn generate(seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA2C4);
    let mut out = Vec::with_capacity(20);
    let mut idx = 0usize;
    for k in 0..4 {
        out.push(pipeline_stall_question(k, &mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(bypass_tradeoff_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(mesi_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(cache_bits_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(cache_trace_question(&mut idx, &mut rng));
    }
    out.push(page_walk_question(&mut idx, &mut rng));
    out.push(noc_mc_question(&mut idx, &mut rng));
    for _ in 0..2 {
        out.push(noc_sa_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(branch_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(vector_question(&mut idx, &mut rng));
    }
    assert_eq!(out.len(), 20);
    out
}

fn next_id(idx: &mut usize) -> String {
    let id = format!("arch-{idx:03}");
    *idx += 1;
    id
}

fn hazard_program(rng: &mut StdRng) -> Vec<Instr> {
    let mut b = program();
    let n = rng.gen_range(4..8);
    for i in 0..n {
        match i % 3 {
            0 => b = b.load(Reg(1), Reg(0), 4 * i),
            1 => b = b.add(Reg(2), Reg(1), Reg(1)),
            _ => b = b.store(Reg(2), Reg(0), 8 * i),
        }
    }
    b.build()
}

fn pipeline_stall_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let prog = hazard_program(rng);
    let cfg = if k.is_multiple_of(2) {
        ForwardingConfig::full()
    } else {
        ForwardingConfig::none()
    };
    let res = Pipeline::new(cfg).run(&prog);
    let vis = xrender::render_pipeline(cfg);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let listing: String = prog.iter().map(|i| format!("{i}; ")).collect::<String>();
    let (gold, unit, what) = if k < 2 {
        (
            res.data_stalls as f64,
            "stall cycles",
            "data-hazard stall cycles",
        )
    } else {
        (
            (res.cpi() * 100.0).round() / 100.0,
            "CPI",
            "cycles per instruction (CPI)",
        )
    };
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Diagram,
        prompt: format!(
            "The datapath diagram shows a classic five-stage pipeline{}. The program {} runs \
             to completion with branches resolved in EX and the register file written in the \
             first half of WB. How many {} does the execution incur? Answer with a number.",
            if cfg == ForwardingConfig::full() {
                " with all forwarding paths drawn in bold"
            } else {
                " with no forwarding paths (values pass only through the register file)"
            },
            listing.trim_end(),
            what
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.05,
            unit: Some(unit.into()),
        },
        difficulty: Difficulty::new(0.6, 4, 0.7, true),
        visual: vis,
        key_marks,
    }
}

fn bypass_tradeoff_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let cfg = ForwardingConfig::full();
    let vis = xrender::render_pipeline(cfg);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold = "CPI decreases but the cycle time increases";
    let distractors = vec![
        "both CPI and cycle time decrease".to_string(),
        "CPI increases but the cycle time decreases".to_string(),
        "neither CPI nor cycle time changes".to_string(),
    ];
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    let _ = rng;
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Diagram,
        prompt: "The pipeline diagram shows a bolded bypass path connecting the load unit \
                 output in MEM back to the ALU input in EX. Relative to the same pipeline \
                 without this path, how does adding the bypass affect the cycles per \
                 instruction and the achievable clock frequency?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec!["lower CPI, longer cycle time".to_string()],
        },
        difficulty: Difficulty::new(0.6, 3, 0.8, false),
        visual: vis,
        key_marks,
    }
}

fn mesi_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let states = [Mesi::Invalid, Mesi::Shared, Mesi::Exclusive];
    let start = states[rng.gen_range(0..states.len())];
    let op = if rng.gen_bool(0.5) {
        CpuOp::Read
    } else {
        CpuOp::Write
    };
    let others = rng.gen_bool(0.5);
    let (next, _) = cpu_transition(start, op, others);
    let vis = xrender::render_mesi_diagram();
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold = format!("{next}");
    let distractors: Vec<String> = ["M", "E", "S", "I"]
        .iter()
        .filter(|&&s| s != gold)
        .map(|&s| s.to_string())
        .collect();
    let (choices, correct) = shuffle_choices(gold.clone(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Diagram,
        prompt: format!(
            "The state diagram shows the MESI coherence protocol. A cache line currently in \
             state {start} receives a processor {} while {} other cache holds a copy. Which \
             state does the line move to?",
            match op {
                CpuOp::Read => "read",
                CpuOp::Write => "write",
            },
            if others { "at least one" } else { "no" }
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold,
            aliases: vec![format!("{next:?}")],
        },
        difficulty: Difficulty::new(0.55, 2, 0.6, false),
        visual: vis,
        key_marks,
    }
}

fn cache_bits_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let size_kb = *super::pick(&[8u64, 16, 32, 64], rng);
    let block = *super::pick(&[32u64, 64], rng);
    let ways = *super::pick(&[1u64, 2, 4], rng);
    let cfg = CacheConfig {
        size_bytes: size_kb * 1024,
        block_bytes: block,
        associativity: ways,
        replacement: Replacement::Lru,
    };
    let vis = xrender::render_address_breakdown(cfg, 32);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold = f64::from(cfg.tag_bits(32));
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Diagram,
        prompt: format!(
            "A {size_kb} KiB, {ways}-way set-associative cache with {block}-byte blocks indexes \
             32-bit physical addresses as shown in the field-breakdown diagram. How many tag \
             bits does each cache line store? Answer with a number."
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("bits".into()),
        },
        difficulty: Difficulty::new(0.5, 3, 0.6, true),
        visual: vis,
        key_marks,
    }
}

fn cache_trace_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 256,
        block_bytes: 32,
        associativity: 2,
        replacement: Replacement::Lru,
    })
    .expect("geometry valid");
    let trace: Vec<u64> = (0..8)
        .map(|_| u64::from(rng.gen_range(0u32..8)) * 32)
        .collect();
    let stats = cache.run_trace(&trace);
    let gold = stats.hits as f64;
    let lines: Vec<String> = std::iter::once("access trace (byte addresses):".to_string())
        .chain(trace.iter().map(|a| format!("0x{a:03X}")))
        .collect();
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Table,
        prompt: "A 256-byte two-way set-associative cache with 32-byte blocks and LRU \
                 replacement starts empty and services the address trace listed in the table. \
                 How many of the accesses hit in the cache? Answer with a number."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("hits".into()),
        },
        difficulty: Difficulty::new(0.55, 4, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn page_walk_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let cfg = VmConfig {
        page_bits: 12,
        bits_per_level: 9,
        levels: 2,
    };
    let mut asp = AddressSpace::new(cfg, 4);
    let vpn: u64 = rng.gen_range(1..512);
    let ppn: u64 = rng.gen_range(512..1024);
    asp.map(vpn << 12, ppn << 12).expect("aligned");
    let offset: u64 = rng.gen_range(0..4096);
    let va = (vpn << 12) | offset;
    let Translation::Walked { pa, .. } = asp.translate(va) else {
        panic!("mapped address walks");
    };
    let lines = vec![
        "page table entry:".to_string(),
        format!("VPN 0x{vpn:X} -> PPN 0x{ppn:X}"),
        format!("virtual address: 0x{va:X}"),
        "page size: 4 KiB".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Table,
        prompt: "Using the page-table mapping and the virtual address listed in the table, \
                 perform the translation and give the resulting physical address in \
                 hexadecimal."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Text {
            canonical: format!("0x{pa:X}"),
            aliases: vec![format!("{pa:#x}"), format!("{pa:X}"), pa.to_string()],
        },
        difficulty: Difficulty::new(0.5, 3, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn noc_mc_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let gold = "hypercube";
    let vis = xrender::render_topology(Topology::Hypercube { d: 3 });
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let distractors = vec![
        "2-D mesh".to_string(),
        "2-D torus".to_string(),
        "fat tree".to_string(),
        "ring".to_string(),
    ];
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Structure,
        prompt: "The interconnect drawing shows eight routers where every node connects to \
                 exactly three neighbours and node labels differ in one bit per link. What \
                 topology is this?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec!["3-cube".to_string(), "binary hypercube".to_string()],
        },
        difficulty: Difficulty::new(0.45, 1, 1.0, false),
        visual: vis,
        key_marks,
    }
}

fn noc_sa_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let (topo, name) = if rng.gen_bool(0.5) {
        let w = rng.gen_range(3..6);
        (Topology::Mesh { w, h: w }, format!("{w}x{w} mesh"))
    } else {
        let w = rng.gen_range(3..6);
        (Topology::Torus { w, h: w }, format!("{w}x{w} torus"))
    };
    let ask_diameter = rng.gen_bool(0.5);
    let (gold, what) = if ask_diameter {
        (topo.diameter() as f64, "network diameter in hops")
    } else {
        (topo.bisection_width() as f64, "bisection width in links")
    };
    let vis = xrender::render_topology(topo);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Structure,
        prompt: format!(
            "The drawing shows a {name} on-chip network with dimension-ordered routing. What \
             is its {what}? Answer with a number."
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: None,
        },
        difficulty: Difficulty::new(0.5, 2, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn branch_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let iters = rng.gen_range(4..12);
    let trips = 50;
    let trace = loop_trace(0x40, iters, trips);
    let use_two_bit = rng.gen_bool(0.5);
    let acc = if use_two_bit {
        accuracy(&mut TwoBitPredictor::new(64), &trace)
    } else {
        accuracy(&mut OneBitPredictor::new(64), &trace)
    };
    let gold = (acc * 100.0 * 10.0).round() / 10.0;
    let clk: Vec<bool> = (0..iters).map(|i| i + 1 < iters).collect();
    let vis = chipvqa_logic::render::render_waveform(&[("taken?", &clk[..])]);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::Figure,
        prompt: format!(
            "The figure traces the outcome of a loop-closing branch over one loop trip: taken \
             for {} iterations, then not taken once. The loop body runs {trips} consecutive \
             trips and the branch is predicted by a {} predictor with ample table capacity. \
             What prediction accuracy does the predictor achieve over the whole run, as a \
             percentage to one decimal place?",
            iters - 1,
            if use_two_bit {
                "2-bit saturating-counter"
            } else {
                "1-bit last-outcome"
            }
        ),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.3,
            unit: Some("percent".into()),
        },
        difficulty: Difficulty::new(0.6, 4, 0.6, true),
        visual: vis,
        key_marks,
    }
}

fn vector_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let chaining = rng.gen_bool(0.5);
    let machine = VectorMachine {
        vector_length: 64,
        lanes: *super::pick(&[1u32, 2, 4], rng),
        startup_cycles: 12,
        chaining,
    };
    let prog = daxpy();
    let gold = machine.convoys(&prog).len() as f64;
    let lines = vec![
        "vector kernel (DAXPY):".to_string(),
        "LV    V1, X".to_string(),
        "MULVS V2, V1, a".to_string(),
        "LV    V3, Y".to_string(),
        "ADDV  V4, V2, V3".to_string(),
        "SV    V4, Y".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..vis.marks.len()).collect();
    let distractors = numeric_distractors(gold, Some("convoys"), rng);
    let (choices, correct) =
        shuffle_choices(format!("{} convoys", trim_float(gold)), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Architecture,
        visual_kind: VisualKind::NeuralNets,
        prompt: format!(
            "The figure lists the DAXPY kernel for a vector accelerator with one memory \
             pipeline, one multiply pipeline and one add pipeline, {} chaining. Into how many \
             convoys must the five instructions be grouped?",
            if chaining { "with" } else { "without" }
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("convoys".into()),
        },
        difficulty: Difficulty::new(0.65, 3, 0.8, true),
        visual: vis,
        key_marks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_and_split() {
        let qs = generate(0);
        assert_eq!(qs.len(), 20);
        let mc = qs.iter().filter(|q| q.is_multiple_choice()).count();
        assert_eq!(mc, 7);
        assert!(qs.iter().all(|q| q.category == Category::Architecture));
    }

    #[test]
    fn visual_kind_distribution() {
        let qs = generate(0);
        let count = |k: VisualKind| qs.iter().filter(|q| q.visual_kind == k).count();
        assert_eq!(count(VisualKind::Diagram), 10);
        assert_eq!(count(VisualKind::Table), 3);
        assert_eq!(count(VisualKind::Structure), 3);
        assert_eq!(count(VisualKind::Figure), 2);
        assert_eq!(count(VisualKind::NeuralNets), 2);
    }

    #[test]
    fn pipeline_golds_are_consistent() {
        // Re-running the simulator on the embedded program listing should
        // be possible in principle; here we sanity-bound the golds.
        for q in generate(3) {
            if let AnswerSpec::Numeric { value, unit, .. } = &q.answer {
                if unit.as_deref() == Some("stall cycles") {
                    assert!((0.0..=30.0).contains(value), "{}: {value}", q.id);
                }
                if unit.as_deref() == Some("CPI") {
                    assert!((1.0..=4.0).contains(value), "{}: {value}", q.id);
                }
            }
        }
    }

    #[test]
    fn branch_accuracy_in_percent_range() {
        for q in generate(5) {
            if q.id.starts_with("arch") && q.prompt.contains("prediction accuracy") {
                let AnswerSpec::Numeric { value, .. } = q.answer else {
                    panic!()
                };
                assert!((50.0..100.0).contains(&value), "{}: {value}", q.id);
            }
        }
    }

    #[test]
    fn page_walk_gold_is_hex() {
        let qs = generate(0);
        let q = qs
            .iter()
            .find(|q| q.prompt.contains("resulting physical address"))
            .expect("page walk present");
        let AnswerSpec::Text { canonical, .. } = &q.answer else {
            panic!()
        };
        assert!(canonical.starts_with("0x"));
    }

    #[test]
    fn all_visuals_rendered() {
        for q in generate(1) {
            assert!(q.visual.image.ink_pixels() > 20, "{}", q.id);
        }
    }
}

//! Content-keyed memoization of the substrate solvers used during
//! question generation.
//!
//! The scale engine re-runs the same generators for every replica block,
//! and the streamed `table2` grid re-generates the *identical* question
//! stream once per (model, column) pass — so the expensive solver calls
//! (Quine–McCluskey minimization, next-state derivation, rectilinear
//! Steiner trees) recur with identical inputs many times over. Each
//! cached solver is keyed on the **full canonical content bytes** of its
//! input (never a lossy hash: a collision would silently produce a wrong
//! golden), so a hit is exactly the value the solver would have computed
//! and memoization is behaviour-neutral by construction.
//!
//! The layer can be disabled (for differential testing) with
//! [`set_enabled`], and exposes hit/miss counters so tests can assert
//! the cache is actually exercised. `gen/verify.rs` deliberately does
//! NOT route through this module: re-verification must re-solve
//! independently, otherwise a corrupted cache entry could confirm
//! itself.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use chipvqa_logic::expr::{Expr, TruthTable};
use chipvqa_logic::minimize::minimize_table;
use chipvqa_logic::seq::StateTable;
use chipvqa_physd::geom::Point;
use chipvqa_physd::steiner::{rsmt, RouteTree};

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Turns the memo layer on or off process-wide. Disabled, every cached
/// entry point falls straight through to its solver (and the tables are
/// left untouched), which is what the memoization-equivalence tests
/// diff against.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether solver memoization is currently active.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Cache hits since the last [`reset`].
pub fn hits() -> u64 {
    HITS.load(Ordering::SeqCst)
}

/// Cache misses (solver runs that populated an entry) since [`reset`].
pub fn misses() -> u64 {
    MISSES.load(Ordering::SeqCst)
}

/// Clears every memo table and zeroes the hit/miss counters.
pub fn reset() {
    MINIMIZE.clear();
    NEXT_STATE.clear();
    RSMT.clear();
    HITS.store(0, Ordering::SeqCst);
    MISSES.store(0, Ordering::SeqCst);
}

/// One solver's memo table: canonical content bytes → solved value.
struct MemoTable<V> {
    map: Mutex<Option<HashMap<Vec<u8>, V>>>,
}

impl<V: Clone> MemoTable<V> {
    const fn new() -> Self {
        MemoTable {
            map: Mutex::new(None),
        }
    }

    fn get_or_compute(&self, key: Vec<u8>, compute: impl FnOnce() -> V) -> V {
        {
            let guard = self.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = guard.as_ref().and_then(|m| m.get(&key)) {
                HITS.fetch_add(1, Ordering::SeqCst);
                return v.clone();
            }
        }
        // Solve outside the lock: concurrent generators may redundantly
        // solve the same key (both arrive at the identical value), but
        // never block each other on a long minimization.
        MISSES.fetch_add(1, Ordering::SeqCst);
        let v = compute();
        let mut guard = self.map.lock().unwrap_or_else(|e| e.into_inner());
        guard
            .get_or_insert_with(HashMap::new)
            .insert(key, v.clone());
        v
    }

    fn clear(&self) {
        *self.map.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

static MINIMIZE: MemoTable<Expr> = MemoTable::new();
static NEXT_STATE: MemoTable<Expr> = MemoTable::new();
static RSMT: MemoTable<RouteTree> = MemoTable::new();

/// [`minimize_table`] with content-keyed memoization.
pub fn minimize_table_cached(table: &TruthTable) -> Expr {
    if !enabled() {
        return minimize_table(table);
    }
    MINIMIZE.get_or_compute(truth_table_key(table), || minimize_table(table))
}

/// [`StateTable::next_state_expr`] with content-keyed memoization.
pub fn next_state_expr_cached(table: &StateTable, bit: usize) -> Expr {
    if !enabled() {
        return table.next_state_expr(bit);
    }
    NEXT_STATE.get_or_compute(state_table_key(table, bit), || table.next_state_expr(bit))
}

/// [`rsmt`] with content-keyed memoization.
pub fn rsmt_cached(pins: &[Point]) -> RouteTree {
    if !enabled() {
        return rsmt(pins);
    }
    RSMT.get_or_compute(pins_key(pins), || rsmt(pins))
}

fn truth_table_key(table: &TruthTable) -> Vec<u8> {
    let mut key = Vec::with_capacity(4 * table.vars.len() + 1 + table.outputs.len());
    for &v in &table.vars {
        key.extend_from_slice(&(v as u32).to_le_bytes());
    }
    key.push(0xFF);
    key.extend(table.outputs.iter().map(|&b| b as u8));
    key
}

fn state_table_key(table: &StateTable, bit: usize) -> Vec<u8> {
    let mut key = Vec::new();
    key.extend_from_slice(&(table.state_bits() as u64).to_le_bytes());
    key.extend_from_slice(&(bit as u64).to_le_bytes());
    for &c in table.input_names() {
        key.extend_from_slice(&(c as u32).to_le_bytes());
    }
    key.push(0xFF);
    for &s in table.rows() {
        key.extend_from_slice(&(s as u64).to_le_bytes());
    }
    key
}

fn pins_key(pins: &[Point]) -> Vec<u8> {
    let mut key = Vec::with_capacity(16 * pins.len());
    for p in pins {
        key.extend_from_slice(&p.x.to_le_bytes());
        key.extend_from_slice(&p.y.to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or reset the global counters.
    static STATS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn minimize_hits_on_repeat_and_matches_solver() {
        let _guard = STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let table = TruthTable::new(vec!['A', 'B'], vec![false, true, true, true]);
        let first = minimize_table_cached(&table);
        let second = minimize_table_cached(&table);
        assert_eq!(first, second);
        assert_eq!(first, minimize_table(&table));
        assert!(hits() >= 1, "second lookup must hit");
        reset();
    }

    #[test]
    fn disabled_layer_bypasses_tables() {
        let _guard = STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        let table = TruthTable::new(vec!['A'], vec![true, false]);
        let a = minimize_table_cached(&table);
        let b = minimize_table_cached(&table);
        set_enabled(true);
        assert_eq!(a, b);
        assert_eq!(hits() + misses(), 0, "disabled layer must not touch stats");
        reset();
    }

    #[test]
    fn rsmt_cached_matches_solver() {
        let _guard = STATS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let pins = vec![
            Point::new(0, 0),
            Point::new(5, 2),
            Point::new(3, 7),
            Point::new(9, 9),
        ];
        assert_eq!(rsmt_cached(&pins), rsmt(&pins));
        assert_eq!(rsmt_cached(&pins), rsmt(&pins));
        assert!(hits() >= 1);
        reset();
    }

    #[test]
    fn keys_distinguish_content() {
        let a = truth_table_key(&TruthTable::new(vec!['A'], vec![true, false]));
        let b = truth_table_key(&TruthTable::new(vec!['A'], vec![false, true]));
        let c = truth_table_key(&TruthTable::new(vec!['B'], vec![true, false]));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}

//! Solver-backed question generators, one module per discipline.
//!
//! Each generator builds domain objects with seeded parameters, derives
//! the golden answer with the corresponding substrate solver, renders the
//! visual, and (for multiple choice) manufactures plausible distractors
//! the way the paper describes: *"answer choices are syntactically and
//! even semantically similar to each other, as well as logically
//! plausible"*.

pub mod analog;
pub mod architecture;
pub mod digital;
pub mod extension;
pub mod manufacturing;
pub mod memo;
pub mod physical;
pub mod verify;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::question::trim_float;

/// Produces replica block `replica` of a category: the generator re-run
/// with the replica-mixed seed, ids renumbered past the preceding
/// replicas (`{prefix}-{replica·block + i}`). Replica 0 is the base
/// output verbatim — the identity anchor of the scale engine.
pub(crate) fn replica_block(
    generate: fn(u64) -> Vec<crate::question::Question>,
    seed: u64,
    replica: usize,
    prefix: &str,
) -> Vec<crate::question::Question> {
    if replica == 0 {
        return generate(seed);
    }
    let mut block = generate(crate::spec::replica_seed(seed, replica));
    let size = block.len();
    for (i, q) in block.iter_mut().enumerate() {
        q.id = format!("{prefix}-{:03}", replica * size + i);
    }
    block
}

/// Builds a shuffled four-option MC answer set from the gold text and
/// three distractors, returning `(choices, correct_index)`.
///
/// # Panics
///
/// Panics if fewer than three distinct distractors are supplied.
pub(crate) fn shuffle_choices(
    gold: String,
    distractors: Vec<String>,
    rng: &mut StdRng,
) -> ([String; 4], usize) {
    let mut uniq: Vec<String> = Vec::new();
    for d in distractors {
        if d != gold && !uniq.contains(&d) {
            uniq.push(d);
        }
    }
    assert!(
        uniq.len() >= 3,
        "need three distinct distractors, got {uniq:?} vs gold {gold:?}"
    );
    uniq.truncate(3);
    let mut all = vec![gold.clone()];
    all.extend(uniq);
    all.shuffle(rng);
    let correct = all.iter().position(|c| *c == gold).expect("gold present");
    (
        [
            all[0].clone(),
            all[1].clone(),
            all[2].clone(),
            all[3].clone(),
        ],
        correct,
    )
}

/// Distractors for a numeric gold: common error patterns (halved,
/// doubled, off-by-style perturbations), all formatted like the gold.
pub(crate) fn numeric_distractors(gold: f64, unit: Option<&str>, rng: &mut StdRng) -> Vec<String> {
    let fmt = |v: f64| -> String {
        match unit {
            Some(u) => format!("{} {}", trim_float(v), u),
            None => trim_float(v),
        }
    };
    let mut cands: Vec<f64> = vec![
        gold * 2.0,
        gold / 2.0,
        gold * 1.5,
        gold + gold.abs().max(1.0) * 0.2 + 1.0,
        -gold,
        gold - gold.abs().max(1.0) * 0.3 - 1.0,
    ];
    cands.shuffle(rng);
    let mut out = Vec::new();
    for v in cands {
        let s = fmt(v);
        if s != fmt(gold) && !out.contains(&s) {
            out.push(s);
        }
        if out.len() == 5 {
            break;
        }
    }
    out
}

/// Picks a pseudo-random element (seeded, deterministic).
pub(crate) fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Renders a panel of text lines as an image, one mark per line — the
/// generic visual for bit patterns, equation sets, state sequences and
/// flow charts.
pub(crate) fn text_panel(lines: &[String], with_arrows: bool) -> chipvqa_raster::Annotated {
    use chipvqa_raster::{Annotated, Pixmap, Region, BLACK};
    let widest = lines.iter().map(|l| l.len()).max().unwrap_or(1);
    let w = (widest as i64 * 12 + 60).max(220) as usize;
    let h = (lines.len() as i64 * 44 + 50) as usize;
    let mut img = Pixmap::new(w, h.max(80));
    let mut out = Annotated::new(Pixmap::new(1, 1));
    let mut marks = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let y = 30 + i as i64 * 44;
        img.draw_text(30, y, line, 2, BLACK);
        if with_arrows && i + 1 < lines.len() {
            img.draw_arrow(18, y + 18, 18, y + 40, 2, BLACK);
        }
        marks.push((
            format!("line {i}: {line}"),
            Region::new(
                26,
                (y - 4).max(0) as usize,
                (line.len() * 12 + 12).min(w),
                30,
            ),
        ));
    }
    out.image = img;
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Distractor boolean expressions near `gold`: minimized SOPs of
/// functions that differ from gold's truth table in one or two minterms
/// (syntactically similar, logically plausible, never equivalent).
///
/// The table is built over the *full* variable list `vars` (not just the
/// variables surviving in `gold`), so a heavily-minimized gold still has
/// a rich neighbourhood of distinct functions to draw from.
pub(crate) fn expr_distractors(
    gold: &chipvqa_logic::Expr,
    vars: &[char],
    rng: &mut StdRng,
    want: usize,
) -> Vec<String> {
    let table = gold
        .truth_table_over(vars)
        .expect("generator exprs are small");
    let rows = table.outputs.len();
    let mut out: Vec<String> = Vec::new();
    let mut guard = 0;
    // One flip buffer reused across attempts (the loop runs up to 200
    // times); each attempt restores the gold outputs in place.
    let mut flipped = table.clone();
    while out.len() < want && guard < 200 {
        guard += 1;
        flipped.outputs.copy_from_slice(&table.outputs);
        let flips = 1 + rng.gen_range(0..2);
        for _ in 0..flips {
            let i = rng.gen_range(0..rows);
            flipped.outputs[i] = !flipped.outputs[i];
        }
        let cand = memo::minimize_table_cached(&flipped);
        if matches!(cand, chipvqa_logic::Expr::Const(_)) {
            continue;
        }
        let text = cand.to_string();
        if !out.contains(&text)
            && !cand.equivalent(gold).unwrap_or(true)
            && text != gold.to_string()
        {
            out.push(text);
        }
    }
    assert!(out.len() >= want, "could not build {want} expr distractors");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shuffle_keeps_gold_reachable() {
        let mut rng = StdRng::seed_from_u64(7);
        let (choices, correct) = shuffle_choices(
            "42".into(),
            vec!["21".into(), "84".into(), "63".into(), "42".into()],
            &mut rng,
        );
        assert_eq!(choices[correct], "42");
        let mut sorted = choices.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "choices distinct: {choices:?}");
    }

    #[test]
    #[should_panic(expected = "three distinct")]
    fn too_few_distractors_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = shuffle_choices("42".into(), vec!["42".into(), "21".into()], &mut rng);
    }

    #[test]
    fn numeric_distractors_distinct_from_gold() {
        let mut rng = StdRng::seed_from_u64(3);
        for gold in [5.5, -3.0, 100.0, 0.25] {
            let d = numeric_distractors(gold, Some("V"), &mut rng);
            assert!(d.len() >= 3, "{gold}: {d:?}");
            assert!(d.iter().all(|s| *s != format!("{} V", trim_float(gold))));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = digital::generate(42);
        let b = digital::generate(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.prompt, y.prompt);
            assert_eq!(x.kind, y.kind);
        }
        let c = digital::generate(43);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.prompt != y.prompt || x.kind != y.kind),
            "different seeds should vary parameters"
        );
    }
}

//! Digital Design question generator: 35 multiple-choice questions over
//! logic derivation, circuit analysis, data representation and memory
//! elements — the topic list of §III-B.1.

use chipvqa_logic::expr::{Expr, TruthTable};
use chipvqa_logic::seq::{FlipFlop, StateTable};
use chipvqa_logic::{builders, numbers, render};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{expr_distractors, memo, numeric_distractors, pick, shuffle_choices, text_panel};
use crate::question::{
    trim_float, AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind,
};

/// Questions per replica block (Table I's Digital count).
pub const BLOCK_SIZE: usize = 35;

/// Replica block `replica` for the scale engine: the same family
/// sequence under the replica-mixed seed, ids renumbered past the
/// preceding blocks. Replica 0 is [`generate`] verbatim.
pub fn generate_replica(seed: u64, replica: usize) -> Vec<Question> {
    super::replica_block(generate, seed, replica, "digital")
}

/// Generates the 35-question Digital Design set (all multiple choice).
pub fn generate(seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD161);
    let mut out = Vec::with_capacity(35);
    let mut idx = 0usize;
    let push = |q: Question, out: &mut Vec<Question>| {
        out.push(q);
    };

    // 3 x state-table derivation (mixed). The first is the paper's own
    // flagship example, verbatim.
    for k in 0..3 {
        push(state_table_question(k, &mut idx, &mut rng), &mut out);
    }
    // 5 x K-map minimisation (table)
    for _ in 0..5 {
        push(kmap_question(&mut idx, &mut rng), &mut out);
    }
    // 6 x schematic -> expression
    for _ in 0..6 {
        push(schematic_function_question(&mut idx, &mut rng), &mut out);
    }
    // 3 x identify the block (schematic)
    for block in 0..3 {
        push(identify_block_question(block, &mut idx, &mut rng), &mut out);
    }
    // 3 x critical path (schematic)
    for _ in 0..3 {
        push(critical_path_question(&mut idx, &mut rng), &mut out);
    }
    // 4 x two's complement (diagram)
    for _ in 0..4 {
        push(twos_complement_question(&mut idx, &mut rng), &mut out);
    }
    // 2 x gray code (diagram)
    for _ in 0..2 {
        push(gray_code_question(&mut idx, &mut rng), &mut out);
    }
    // 2 x overflow (diagram)
    for _ in 0..2 {
        push(overflow_question(&mut idx, &mut rng), &mut out);
    }
    // 2 x waveform / flip-flop behaviour (figure)
    for k in 0..2 {
        push(waveform_question(k, &mut idx, &mut rng), &mut out);
    }
    // 2 x counter sequence (structure)
    for _ in 0..2 {
        push(counter_question(&mut idx, &mut rng), &mut out);
    }
    // 2 x characteristic equations (equations)
    for k in 0..2 {
        push(characteristic_question(k, &mut idx, &mut rng), &mut out);
    }
    // 1 x design flow (flow)
    push(flow_question(&mut idx, &mut rng), &mut out);

    assert_eq!(out.len(), 35);
    out
}

fn next_id(idx: &mut usize) -> String {
    let id = format!("digital-{idx:03}");
    *idx += 1;
    id
}

fn state_table_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let (table, gold) = if k == 0 {
        // The paper's example: gold is exactly "S'Q + SR'". QM derives an
        // equivalent cover (term/factor order may differ), so the display
        // form is pinned to the paper's literal text after verifying
        // equivalence.
        let t = StateTable::paper_example();
        let derived = memo::next_state_expr_cached(&t, 0);
        let paper = Expr::parse("S'Q + SR'").expect("well-formed");
        assert!(
            derived.equivalent(&paper).expect("small expr"),
            "state table must minimize to the paper's answer"
        );
        (t, paper)
    } else {
        // A random single-bit machine over inputs S, R.
        loop {
            let rows: Vec<usize> = (0..8).map(|_| rng.gen_range(0..2)).collect();
            let Ok(t) = StateTable::new(1, vec!['S', 'R'], rows) else {
                continue;
            };
            let g = memo::next_state_expr_cached(&t, 0);
            if !matches!(g, Expr::Const(_)) && g.literal_count() >= 2 {
                break (t, g);
            }
        }
    };
    let vis = render::render_state_table(&table);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold_text = format!("Q = {gold}");
    let mut dvars = table.state_var_names();
    dvars.extend(table.input_names().iter().copied());
    let distractors: Vec<String> = expr_distractors(&gold, &dvars, rng, 3)
        .into_iter()
        .map(|d| format!("Q = {d}"))
        .collect();
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Mixed,
        prompt: "Derive the function for Q given the state table and excitation maps as shown \
                 in the figure. Q denotes the present state and the table lists the next state \
                 for every input combination."
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::BoolExpr {
            canonical: gold.to_string(),
        },
        difficulty: Difficulty::new(0.55, 3, 0.95, false),
        visual: vis,
        key_marks,
    }
}

fn random_function(rng: &mut StdRng, vars: usize) -> TruthTable {
    loop {
        let rows = 1usize << vars;
        let outputs: Vec<bool> = (0..rows).map(|_| rng.gen_bool(0.4)).collect();
        let ones = outputs.iter().filter(|&&b| b).count();
        if ones >= 2 && ones < rows - 1 {
            let names: Vec<char> = ('A'..).take(vars).collect();
            return TruthTable::new(names, outputs);
        }
    }
}

fn kmap_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let vars = 3 + rng.gen_range(0..2); // 3 or 4
    let table = random_function(rng, vars);
    let gold = memo::minimize_table_cached(&table);
    let vis = render::render_kmap(&table);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold_text = format!("F = {gold}");
    let distractors: Vec<String> = expr_distractors(&gold, &table.vars, rng, 3)
        .into_iter()
        .map(|d| format!("F = {d}"))
        .collect();
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Table,
        prompt: format!(
            "The Karnaugh map of a {vars}-variable function F is shown. Group the ones and \
             select the minimized sum-of-products expression for F."
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::BoolExpr {
            canonical: gold.to_string(),
        },
        difficulty: Difficulty::new(0.4, 2, 0.95, false),
        visual: vis,
        key_marks,
    }
}

fn schematic_function_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let table = random_function(rng, 3);
    let gold = memo::minimize_table_cached(&table);
    let netlist = chipvqa_logic::Netlist::from_expr(&gold);
    let vis = render::render_schematic(&netlist);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold_text = format!("f = {gold}");
    let distractors: Vec<String> = expr_distractors(&gold, &table.vars, rng, 3)
        .into_iter()
        .map(|d| format!("f = {d}"))
        .collect();
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Schematic,
        prompt: "The gate-level schematic of a combinational block is shown with inputs on the \
                 left and the output f on the right. Which boolean expression does the circuit \
                 compute?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::BoolExpr {
            canonical: gold.to_string(),
        },
        difficulty: Difficulty::new(0.35, 2, 1.0, false),
        visual: vis,
        key_marks,
    }
}

fn identify_block_question(block: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let (netlist, gold, aliases) = match block {
        0 => (
            builders::half_adder(),
            "half adder",
            vec!["1-bit half adder".to_string()],
        ),
        1 => (
            builders::full_adder(),
            "full adder",
            vec!["1-bit full adder".to_string()],
        ),
        _ => (
            builders::mux2(),
            "2-to-1 multiplexer",
            vec![
                "mux".to_string(),
                "2:1 mux".to_string(),
                "multiplexer".to_string(),
            ],
        ),
    };
    let vis = render::render_schematic(&netlist);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let all = [
        "half adder",
        "full adder",
        "2-to-1 multiplexer",
        "2-to-4 decoder",
        "comparator",
        "parity generator",
    ];
    let distractors: Vec<String> = all
        .iter()
        .filter(|&&n| n != gold)
        .map(|&n| n.to_string())
        .collect();
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Schematic,
        prompt: "The figure shows the calculation circuit diagram of a small combinational \
                 block. What is this circuit usually called?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases,
        },
        difficulty: Difficulty::new(0.25, 1, 1.0, false),
        visual: vis,
        key_marks,
    }
}

fn critical_path_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let width = 2 + rng.gen_range(0..3); // 2..4 bits
    let adder = builders::ripple_carry_adder(width);
    let gold = adder.depth() as f64;
    let vis = render::render_schematic(&adder);
    let key_marks: Vec<usize> = (0..vis.marks.len().min(8)).collect();
    let distractors = numeric_distractors(gold, Some("gate delays"), rng);
    let (choices, correct) = shuffle_choices(
        format!("{} gate delays", trim_float(gold)),
        distractors,
        rng,
    );
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Schematic,
        prompt: format!(
            "The schematic shows a {width}-bit ripple-carry adder built from XOR, AND and OR \
             gates. Counting each gate as one delay, how many gate delays lie on the longest \
             input-to-output path?"
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("gate delays".into()),
        },
        difficulty: Difficulty::new(0.45, 3, 0.8, true),
        visual: vis,
        key_marks,
    }
}

fn twos_complement_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let value: i64 = rng.gen_range(-128..=-2); // negative keeps it interesting
    let bits = numbers::twos_complement(value, 8).expect("in range");
    let pattern = format!("{bits:08b}");
    let vis = text_panel(
        &[
            "8-bit register contents:".to_string(),
            pattern.clone(),
            "interpretation: two's complement".to_string(),
        ],
        false,
    );
    let gold = value as f64;
    let mut distractors = vec![
        trim_float(bits as f64),                // unsigned reading
        trim_float(-((bits & 0x7F) as f64)),    // sign-magnitude reading
        trim_float(-(((!bits) & 0xFF) as f64)), // negated one's complement confusion
        trim_float(gold + 1.0),
    ];
    // Degenerate draws exist (value −64: the sign-magnitude reading IS the
    // gold, and the one's-complement confusion always equals gold+1), so
    // append fallbacks; they are only reached when the confusions collapse,
    // since shuffle_choices keeps the first three distinct entries.
    distractors.push(trim_float(gold - 1.0));
    distractors.push(trim_float(gold * 2.0));
    distractors.retain(|d| *d != trim_float(gold));
    let (choices, correct) = shuffle_choices(trim_float(gold), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Diagram,
        prompt: "The diagram shows the contents of an 8-bit register. Interpreting the pattern \
                 as a two's-complement signed integer, what decimal value does it hold?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: None,
        },
        difficulty: Difficulty::new(0.3, 2, 0.9, true),
        visual: vis,
        key_marks: vec![1],
    }
}

fn gray_code_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let value: u64 = rng.gen_range(5..60);
    let gray = numbers::to_gray(value);
    let pattern = format!("{gray:06b}");
    let vis = text_panel(
        &["Gray-code encoder output:".to_string(), pattern.clone()],
        false,
    );
    let gold = value as f64;
    let mut distractors = vec![
        trim_float(gray as f64), // read as plain binary
        trim_float(gold + 1.0),
        trim_float(gold - 1.0),
        trim_float(numbers::to_gray(gray) as f64), // double-encoded
    ];
    // Degenerate draws exist (value 6: gray is 5 and the double-encoding
    // is 7, both colliding with value±1), so append fallbacks; they are
    // only reached when the confusions collapse, since shuffle_choices
    // keeps the first three distinct entries.
    distractors.push(trim_float(gold + 2.0));
    distractors.push(trim_float(gold - 2.0));
    distractors.retain(|d| *d != trim_float(gold));
    let (choices, correct) = shuffle_choices(trim_float(gold), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Diagram,
        prompt: "A position sensor outputs the 6-bit Gray-code word shown in the diagram. What \
                 binary-weighted (decimal) position does it encode?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: None,
        },
        difficulty: Difficulty::new(0.4, 2, 0.9, true),
        visual: vis,
        key_marks: vec![1],
    }
}

fn overflow_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    // bias towards interesting same-sign additions
    let a: i64 = rng.gen_range(60..=120);
    let b: i64 = rng.gen_range(20..=120);
    let r = numbers::add_twos_complement(a, b, 8).expect("in range");
    let gold = match (r.overflow, r.carry_out) {
        (true, true) => "overflow with carry out",
        (true, false) => "overflow, no carry out",
        (false, true) => "no overflow, carry out set",
        (false, false) => "no overflow, no carry out",
    };
    let vis = text_panel(
        &[
            format!("A = {a} ({:08b})", numbers::twos_complement(a, 8).unwrap()),
            format!("B = {b} ({:08b})", numbers::twos_complement(b, 8).unwrap()),
            "8-bit two's-complement adder".to_string(),
        ],
        false,
    );
    let distractors: Vec<String> = [
        "overflow with carry out",
        "overflow, no carry out",
        "no overflow, carry out set",
        "no overflow, no carry out",
    ]
    .iter()
    .filter(|&&s| s != gold)
    .map(|&s| s.to_string())
    .collect();
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Diagram,
        prompt: "Two signed operands shown in the diagram are added in an 8-bit two's-complement \
                 ALU. Which statement correctly describes the status flags after the addition?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec![],
        },
        difficulty: Difficulty::new(0.45, 3, 0.85, true),
        visual: vis,
        key_marks: vec![0, 1],
    }
}

fn waveform_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let (ff, gold) = if k == 0 {
        (FlipFlop::T, "T flip-flop")
    } else {
        (FlipFlop::D, "D flip-flop")
    };
    // simulate output over 6 clock edges with input held high / a pattern
    let input = [true, true, false, true, false, true];
    let mut q = false;
    let mut q_trace = Vec::new();
    for &i in &input {
        q = ff.next_state(q, &[i]).expect("D and T never reject inputs");
        q_trace.push(q);
    }
    let clk = [true, false, true, false, true, false];
    let vis =
        render::render_waveform(&[("CLK", &clk[..]), ("IN", &input[..]), ("Q", &q_trace[..])]);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let distractors: Vec<String> = ["D flip-flop", "T flip-flop", "SR latch", "JK flip-flop"]
        .iter()
        .filter(|&&s| s != gold)
        .map(|&s| s.to_string())
        .collect();
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Figure,
        prompt: "The timing diagram shows a clock, a synchronous input IN and the output Q of a \
                 single storage element sampled on each rising edge. Which memory element \
                 produces this behaviour?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec![gold.replace(" flip-flop", " FF")],
        },
        difficulty: Difficulty::new(0.4, 2, 1.0, false),
        visual: vis,
        key_marks,
    }
}

fn counter_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    // 3-bit up-counter with a skip pattern: next = (state + step) mod 8
    let step = *pick(&[1usize, 2, 3], rng);
    let probe = rng.gen_range(0..8usize);
    let gold = (probe + step) % 8;
    let lines: Vec<String> = (0..4)
        .map(|i| {
            let s = (i * step) % 8;
            format!("state {i}: {s:03b}")
        })
        .collect();
    let vis = text_panel(&lines, true);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let gold_text = format!("{gold:03b}");
    let mut distractors = vec![
        format!("{:03b}", (probe + step + 1) % 8),
        format!("{:03b}", (probe + 8 - step) % 8),
        format!("{:03b}", probe),
        format!("{:03b}", (probe + 2 * step) % 8),
    ];
    distractors.retain(|d| *d != gold_text);
    let (choices, correct) = shuffle_choices(gold_text, distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Structure,
        prompt: format!(
            "The structure diagram lists the first states of a 3-bit counter that advances by a \
             fixed step each clock. Following the same pattern, what state follows {probe:03b}?"
        ),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: format!("{gold:03b}"),
            aliases: vec![gold.to_string()],
        },
        difficulty: Difficulty::new(0.35, 2, 0.9, true),
        visual: vis,
        key_marks,
    }
}

fn characteristic_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let (ff, gold) = if k == 0 {
        (FlipFlop::Jk, "JK flip-flop")
    } else {
        (FlipFlop::Sr, "SR flip-flop")
    };
    let eq = ff.characteristic();
    let lines = vec!["Characteristic equation:".to_string(), format!("Q+ = {eq}")];
    let vis = text_panel(&lines, false);
    let distractors: Vec<String> = ["D flip-flop", "T flip-flop", "JK flip-flop", "SR flip-flop"]
        .iter()
        .filter(|&&s| s != gold)
        .map(|&s| s.to_string())
        .collect();
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Equations,
        prompt: "The figure shows the characteristic (next-state) equation of a clocked storage \
                 element, with Q as the present state. Which flip-flop type has this \
                 characteristic equation?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec![gold.replace(" flip-flop", "")],
        },
        difficulty: Difficulty::new(0.45, 1, 0.95, false),
        visual: vis,
        key_marks: vec![1],
    }
}

fn flow_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let steps = [
        "RTL design",
        "logic synthesis",
        "floorplanning",
        "placement",
        "clock tree synthesis",
        "routing",
        "signoff",
    ];
    let hole = rng.gen_range(1..steps.len() - 1);
    let gold = steps[hole];
    let lines: Vec<String> = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i == hole {
                "???".to_string()
            } else {
                s.to_string()
            }
        })
        .collect();
    let vis = text_panel(&lines, true);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    let distractors: Vec<String> = steps
        .iter()
        .filter(|&&s| s != gold)
        .take(4)
        .map(|&s| s.to_string())
        .collect();
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Digital,
        visual_kind: VisualKind::Flow,
        prompt: "The flow chart shows a standard digital implementation flow with one stage \
                 hidden. Which stage belongs in the hidden box?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec![],
        },
        difficulty: Difficulty::new(0.3, 1, 0.8, false),
        visual: vis,
        key_marks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_and_all_mc() {
        let qs = generate(0);
        assert_eq!(qs.len(), 35);
        assert!(qs.iter().all(|q| q.is_multiple_choice()));
        assert!(qs.iter().all(|q| q.category == Category::Digital));
    }

    #[test]
    fn visual_kind_distribution() {
        let qs = generate(0);
        let count = |k: VisualKind| qs.iter().filter(|q| q.visual_kind == k).count();
        assert_eq!(count(VisualKind::Schematic), 12);
        assert_eq!(count(VisualKind::Diagram), 8);
        assert_eq!(count(VisualKind::Table), 5);
        assert_eq!(count(VisualKind::Mixed), 3);
        assert_eq!(count(VisualKind::Equations), 2);
        assert_eq!(count(VisualKind::Structure), 2);
        assert_eq!(count(VisualKind::Figure), 2);
        assert_eq!(count(VisualKind::Flow), 1);
    }

    #[test]
    fn paper_flagship_question_present() {
        let qs = generate(0);
        let q = &qs[0];
        assert!(q.prompt.contains("Derive the function for Q"));
        let QuestionKind::MultipleChoice { choices, correct } = &q.kind else {
            panic!("flagship is MC");
        };
        assert_eq!(choices[*correct], "Q = S'Q + SR'");
    }

    #[test]
    fn mc_choices_are_distinct_and_contain_gold() {
        for q in generate(11) {
            let QuestionKind::MultipleChoice { choices, correct } = &q.kind else {
                panic!()
            };
            let mut set = choices.to_vec();
            set.sort();
            set.dedup();
            assert_eq!(set.len(), 4, "{}: {choices:?}", q.id);
            assert_eq!(&choices[*correct], &q.golden_text(), "{}", q.id);
        }
    }

    #[test]
    fn boolexpr_golds_verify_against_their_tables() {
        // The derived expression answers must not be constants (a
        // degenerate question) and must parse.
        for q in generate(5) {
            if let AnswerSpec::BoolExpr { canonical } = &q.answer {
                let e = Expr::parse(canonical).expect("canonical parses");
                assert!(e.literal_count() >= 1, "{}", q.id);
            }
        }
    }

    #[test]
    fn all_visuals_have_ink_and_marks() {
        for q in generate(2) {
            assert!(q.visual.image.ink_pixels() > 20, "{}", q.id);
            assert!(!q.visual.marks.is_empty(), "{}", q.id);
            for &m in &q.key_marks {
                assert!(m < q.visual.marks.len(), "{} key mark {m}", q.id);
            }
        }
    }

    #[test]
    fn ids_are_sequential() {
        let qs = generate(0);
        assert_eq!(qs[0].id, "digital-000");
        assert_eq!(qs[34].id, "digital-034");
    }
}

//! Physical Design question generator: 23 questions (8 MC + 15 SA) over
//! routing topologies, wirelength, clock trees, timing, legalization and
//! useful skew (§III-B.4) — including the paper's "which routing topology
//! has lower cost?" example.

use chipvqa_physd::cts::{comb_tree, h_tree};
use chipvqa_physd::geom::Point;
use chipvqa_physd::maze::Grid;
use chipvqa_physd::net::Net;
use chipvqa_physd::place::{legalize, total_displacement, Cell, PlacementRegion};
use chipvqa_physd::render as prender;
use chipvqa_physd::sta::{TimingGraph, TimingNode};
use chipvqa_physd::steiner::{rmst, star_tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{memo, numeric_distractors, shuffle_choices, text_panel};
use crate::question::{
    trim_float, AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind,
};

/// Questions per replica block (Table I's Physical count).
pub const BLOCK_SIZE: usize = 23;

/// Replica block `replica` for the scale engine: the same family
/// sequence under the replica-mixed seed, ids renumbered past the
/// preceding blocks. Replica 0 is [`generate`] verbatim.
pub fn generate_replica(seed: u64, replica: usize) -> Vec<Question> {
    super::replica_block(generate, seed, replica, "physical")
}

/// Generates the 23-question Physical Design set (8 MC, 15 SA).
pub fn generate(seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9D51);
    let mut out = Vec::with_capacity(23);
    let mut idx = 0usize;
    for k in 0..4 {
        out.push(route_comparison_question(k, &mut idx, &mut rng));
    }
    for _ in 0..3 {
        out.push(hpwl_question(&mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(steiner_gain_question(&mut idx, &mut rng));
    }
    for k in 0..3 {
        out.push(maze_question(k, &mut idx, &mut rng));
    }
    for k in 0..4 {
        out.push(clock_tree_question(k, &mut idx, &mut rng));
    }
    for k in 0..4 {
        out.push(sta_question(k, &mut idx, &mut rng));
    }
    for _ in 0..2 {
        out.push(legalize_question(&mut idx, &mut rng));
    }
    out.push(useful_skew_question(&mut idx, &mut rng));
    assert_eq!(out.len(), 23);
    out
}

fn next_id(idx: &mut usize) -> String {
    let id = format!("physical-{idx:03}");
    *idx += 1;
    id
}

fn random_pins(rng: &mut StdRng, n: usize) -> Vec<Point> {
    let mut pins = Vec::new();
    while pins.len() < n {
        let p = Point::new(rng.gen_range(0..16), rng.gen_range(0..16));
        if !pins.contains(&p) {
            pins.push(p);
        }
    }
    pins
}

fn route_comparison_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let extra = rng.gen_range(0..2);
    let pins = random_pins(rng, 4 + extra);
    let good = memo::rsmt_cached(&pins);
    let bad = star_tree(&pins);
    let vis = prender::render_route_comparison(&good, &bad, &pins);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    if k < 2 {
        // MC: which topology is cheaper (regenerate until they differ)
        let (gold, alt) = if good.cost() < bad.cost() {
            ("topology A", "topology B")
        } else if bad.cost() < good.cost() {
            ("topology B", "topology A")
        } else {
            ("topology A", "topology B") // equal: A ties, count as A
        };
        let distractors = vec![
            alt.to_string(),
            "both topologies cost the same".to_string(),
            "the cost cannot be determined from the figure".to_string(),
        ];
        let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Layout,
            prompt: "The routing points' coordinates are shown in the two diagrams, which route \
                     the same net with different topologies (A uses a Steiner tree, B routes \
                     every pin from a single hub). Can you calculate the routing costs for the \
                     2 diagrams and determine which routing topology has lower cost?"
                .into(),
            kind: QuestionKind::MultipleChoice { choices, correct },
            answer: AnswerSpec::Text {
                canonical: gold.to_string(),
                aliases: vec![gold.replace("topology ", "")],
            },
            difficulty: Difficulty::new(0.55, 3, 1.0, true),
            visual: vis,
            key_marks,
        }
    } else {
        let gold = good.cost() as f64;
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Layout,
            prompt: "Topology A in the left diagram routes the annotated pins with a \
                     rectilinear Steiner tree (hollow squares are Steiner points). Summing the \
                     Manhattan lengths of its edges, what is the total routing cost of \
                     topology A? Answer with a number in grid units."
                .into(),
            kind: QuestionKind::ShortAnswer,
            answer: AnswerSpec::Numeric {
                value: gold,
                tolerance: 0.01,
                unit: Some("units".into()),
            },
            difficulty: Difficulty::new(0.6, 4, 1.0, true),
            visual: vis,
            key_marks,
        }
    }
}

fn hpwl_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let extra = rng.gen_range(0..3);
    let pins = random_pins(rng, 3 + extra);
    let net = Net::new("n1", pins.clone());
    let gold = net.hpwl() as f64;
    let tree = rmst(&pins);
    let vis = prender::render_route_tree(&tree, &pins, "net n1");
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Physical,
        visual_kind: VisualKind::Layout,
        prompt: "The layout shows the pins of net n1 with their coordinates annotated. What is \
                 the half-perimeter wirelength (HPWL) of the net's bounding box? Answer with a \
                 number in grid units."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("units".into()),
        },
        difficulty: Difficulty::new(0.45, 2, 1.0, true),
        visual: vis,
        key_marks,
    }
}

fn steiner_gain_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    // force a pin set with genuine Steiner gain; keep the accepted
    // draw's trees instead of re-solving them for the render (both
    // solvers are deterministic, so the trees are the same)
    let (pins, mst, smt) = loop {
        let pins = random_pins(rng, 4);
        let m = rmst(&pins);
        let s = memo::rsmt_cached(&pins);
        if s.cost() < m.cost() {
            break (pins, m, s);
        }
    };
    let gold = (mst.cost() - smt.cost()) as f64;
    let vis = prender::render_route_comparison(&smt, &mst, &pins);
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Physical,
        visual_kind: VisualKind::Layout,
        prompt: "Topology A routes the annotated pins with a rectilinear Steiner tree and \
                 topology B with a spanning tree that connects pins directly. How many grid \
                 units of wirelength does the Steiner topology save over the spanning tree? \
                 Answer with a number."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("units".into()),
        },
        difficulty: Difficulty::new(0.65, 4, 1.0, true),
        visual: vis,
        key_marks,
    }
}

fn maze_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let mut grid = Grid::new(14, 14);
    // a wall with no gap forcing a detour
    let wall_x = 6 + rng.gen_range(0..2);
    let wall_h = 9 + rng.gen_range(0..3);
    grid.block_rect(wall_x, 0, 1, wall_h);
    let src = Point::new(2, 3);
    let dst = Point::new(11, 3);
    let len = grid
        .route_length(src, dst)
        .expect("detour exists over the wall") as f64;
    // draw the grid: obstacle as a filled layout rect + pins
    let cells = vec![(
        "blockage".to_string(),
        chipvqa_physd::geom::Rect::new(wall_x as i64, 0, wall_x as i64 + 1, wall_h as i64),
    )];
    let mut vis = prender::render_cell_layout(&cells);
    let w = vis.image.width();
    vis.image.draw_text(
        10,
        (vis.image.height() - 24) as i64,
        &format!(
            "route ({},{}) to ({},{}) on a 14x14 grid",
            src.x, src.y, dst.x, dst.y
        ),
        2,
        0,
    );
    vis.mark(
        format!("terminals ({},{}) and ({},{})", src.x, src.y, dst.x, dst.y),
        chipvqa_raster::Region::new(8, vis.image.height() - 28, w - 16, 26),
    );
    let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
    if k == 2 {
        let distractors = numeric_distractors(len, Some("steps"), rng);
        let (choices, correct) =
            shuffle_choices(format!("{} steps", trim_float(len)), distractors, rng);
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Layout,
            prompt: "A maze router must connect the two terminals shown around the routing \
                     blockage (the solid rectangle spans the full wall height shown). What is \
                     the length of the shortest legal path in grid steps?"
                .into(),
            kind: QuestionKind::MultipleChoice { choices, correct },
            answer: AnswerSpec::Numeric {
                value: len,
                tolerance: 0.01,
                unit: Some("steps".into()),
            },
            difficulty: Difficulty::new(0.55, 3, 1.0, true),
            visual: vis,
            key_marks,
        }
    } else {
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Layout,
            prompt: "Run Lee's maze-routing algorithm between the two annotated terminals, \
                     detouring around the blockage shown. How many grid steps long is the \
                     shortest legal route? Answer with a number."
                .into(),
            kind: QuestionKind::ShortAnswer,
            answer: AnswerSpec::Numeric {
                value: len,
                tolerance: 0.01,
                unit: Some("steps".into()),
            },
            difficulty: Difficulty::new(0.6, 4, 1.0, true),
            visual: vis,
            key_marks,
        }
    }
}

fn clock_tree_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let levels = 2 + rng.gen_range(0..2);
    let h = h_tree(Point::new(0, 0), 64, levels);
    let comb = comb_tree(Point::new(0, 0), 64, levels);
    let delay = 0.01; // ns per unit
    if k < 2 {
        // SA: skew of the comb tree
        let gold = (comb.skew(delay) * 100.0).round() / 100.0;
        let vis = prender::render_clock_tree(&comb);
        let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Schematic,
            prompt: format!(
                "The clock distribution shown drives {} sinks from the source square via a \
                 spine-and-fingers comb; the first labelled sinks carry their source-to-sink \
                 path lengths. With a wire delay of {} ns per unit length, what is the clock \
                 skew (max minus min sink delay)? Answer in ns to two decimals.",
                comb.sinks.len(),
                trim_float(delay)
            ),
            kind: QuestionKind::ShortAnswer,
            answer: AnswerSpec::Numeric {
                value: gold,
                tolerance: gold.abs() * 0.05 + 0.01,
                unit: Some("ns".into()),
            },
            difficulty: Difficulty::new(0.6, 3, 0.9, true),
            visual: vis,
            key_marks,
        }
    } else {
        let gold = "the H-tree";
        let vis = prender::render_clock_tree(&h);
        let key_marks: Vec<usize> = (0..vis.marks.len()).collect();
        let distractors = vec![
            "the comb (spine and fingers)".to_string(),
            "both have identical skew".to_string(),
            "skew depends only on the buffer sizing".to_string(),
        ];
        let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Schematic,
            prompt: "Two clock-distribution styles serve the same sink array: the symmetric \
                     H-tree shown, and a comb that runs a spine along one edge with a finger \
                     up to each sink. Under a purely wirelength-proportional delay model, \
                     which network achieves lower clock skew?"
                .into(),
            kind: QuestionKind::MultipleChoice { choices, correct },
            answer: AnswerSpec::Text {
                canonical: gold.to_string(),
                aliases: vec!["H-tree".to_string(), "h tree".to_string()],
            },
            difficulty: Difficulty::new(0.5, 2, 0.8, false),
            visual: vis,
            key_marks,
        }
    }
}

fn random_timing_graph(rng: &mut StdRng) -> (TimingGraph, Vec<TimingNode>, f64) {
    let mut g = TimingGraph::new();
    let in1 = g.add_node("FF1/Q", 0.2).expect("positive delay");
    let in2 = g.add_node("FF2/Q", 0.2).expect("positive delay");
    let d1 = 0.5 + f64::from(rng.gen_range(0..5)) * 0.25;
    let d2 = 0.5 + f64::from(rng.gen_range(5..10)) * 0.25;
    let g1 = g.add_node("U1", d1).expect("positive delay");
    let g2 = g.add_node("U2", d2).expect("positive delay");
    let g3 = g.add_node("U3", 0.5).expect("positive delay");
    g.add_edge(in1, g1, 0.1).expect("forward edge");
    g.add_edge(in2, g2, 0.1).expect("forward edge");
    g.add_edge(g1, g3, 0.1).expect("forward edge");
    g.add_edge(g2, g3, 0.1).expect("forward edge");
    g.mark_startpoint(in1);
    g.mark_startpoint(in2);
    g.mark_endpoint(g3);
    let min_period = g.min_period();
    (g, vec![in1, in2, g1, g2, g3], min_period)
}

fn sta_question(k: usize, idx: &mut usize, rng: &mut StdRng) -> Question {
    let (g, _nodes, min_period) = random_timing_graph(rng);
    let lines = vec![
        "timing graph (delays in ns):".to_string(),
        format!(
            "FF1/Q (0.2) -> U1 ({}) -> U3 (0.5)",
            trim_float(g_delay(&g, 2))
        ),
        format!(
            "FF2/Q (0.2) -> U2 ({}) -> U3 (0.5)",
            trim_float(g_delay(&g, 3))
        ),
        "every wire adds 0.1 ns".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..vis.marks.len()).collect();
    if k < 2 {
        let period = (min_period * 10.0).round() / 10.0 + 0.5;
        let report = g.analyze(period, &[]);
        let gold = (report.worst_slack * 100.0).round() / 100.0;
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Schematic,
            prompt: format!(
                "The figure lists a small timing graph with gate delays in ns and 0.1 ns per \
                 wire. At a clock period of {} ns, what is the worst slack at the endpoint \
                 U3? Answer in ns to two decimals.",
                trim_float(period)
            ),
            kind: QuestionKind::ShortAnswer,
            answer: AnswerSpec::Numeric {
                value: gold,
                tolerance: 0.02,
                unit: Some("ns".into()),
            },
            difficulty: Difficulty::new(0.6, 4, 0.9, true),
            visual: vis,
            key_marks,
        }
    } else {
        let report = g.analyze(min_period, &[]);
        let names: Vec<String> = report
            .critical_path
            .iter()
            .map(|&n| g.name(n).to_string())
            .collect();
        let gold = names.join(" -> ");
        let alt1 = "FF1/Q -> U1 -> U3".to_string();
        let alt2 = "FF2/Q -> U2 -> U3".to_string();
        let distractors = vec![
            if gold == alt1 {
                alt2.clone()
            } else {
                alt1.clone()
            },
            "FF1/Q -> U2 -> U3".to_string(),
            "FF2/Q -> U1 -> U3".to_string(),
        ];
        let (choices, correct) = shuffle_choices(gold.clone(), distractors, rng);
        Question {
            id: next_id(idx),
            category: Category::Physical,
            visual_kind: VisualKind::Schematic,
            prompt: "Using the gate and wire delays listed in the figure, which register-to-\
                     endpoint path is the critical (longest-delay) path?"
                .into(),
            kind: QuestionKind::MultipleChoice { choices, correct },
            answer: AnswerSpec::Text {
                canonical: gold,
                aliases: vec![],
            },
            difficulty: Difficulty::new(0.55, 3, 0.9, false),
            visual: vis,
            key_marks,
        }
    }
}

fn g_delay(g: &TimingGraph, node: usize) -> f64 {
    // helper: recover the delay we stored (nodes were added in a fixed
    // order; delays are not otherwise exposed per-node, so recompute from
    // arrival analysis of a trivial graph is overkill — we track via name)
    // Instead: re-derive from min_period structure is fragile; keep the
    // listing consistent by re-deriving from arrival times.
    let report = g.analyze(100.0, &[]);
    // arrival(U1) = 0.2 + 0.1 + d -> d = arrival - 0.3
    (report.arrival[node] - 0.3).max(0.0)
}

fn legalize_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let region = PlacementRegion {
        rows: 2,
        sites_per_row: 12,
    };
    let n = 3 + rng.gen_range(0..2);
    let cells: Vec<Cell> = (0..n)
        .map(|i| Cell {
            name: format!("c{i}"),
            width: rng.gen_range(2..5),
            target: Point::new(rng.gen_range(0..6), 0), // overlapped targets
        })
        .collect();
    let placed = legalize(&cells, region).expect("region has capacity");
    let gold = total_displacement(&placed) as f64;
    let lines: Vec<String> = std::iter::once("global placement (row 0):".to_string())
        .chain(
            cells
                .iter()
                .map(|c| format!("{} width {} at x={}", c.name, c.width, c.target.x)),
        )
        .chain(std::iter::once("rows: 2, sites per row: 12".to_string()))
        .collect();
    let vis = text_panel(&lines, false);
    let key_marks: Vec<usize> = (1..vis.marks.len()).collect();
    Question {
        id: next_id(idx),
        category: Category::Physical,
        visual_kind: VisualKind::Diagram,
        prompt: "The diagram lists overlapping global-placement locations for standard cells \
                 in a 2-row region. A Tetris-style legalizer processes cells left-to-right, \
                 packing each into the nearest free site (clamped into the row). What total \
                 Manhattan displacement does legalization incur? Answer with a number in \
                 sites."
            .into(),
        kind: QuestionKind::ShortAnswer,
        answer: AnswerSpec::Numeric {
            value: gold,
            tolerance: 0.01,
            unit: Some("sites".into()),
        },
        difficulty: Difficulty::new(0.65, 4, 0.85, true),
        visual: vis,
        key_marks,
    }
}

fn useful_skew_question(idx: &mut usize, rng: &mut StdRng) -> Question {
    let gold = "advance the capturing register's clock of the short path and delay the \
                critical path's launch";
    let lines = vec![
        "setup constraint:".to_string(),
        "Tclk >= Tcq + Tlogic + Tsetup - Tskew".to_string(),
        "Tskew = Tcapture - Tlaunch".to_string(),
    ];
    let vis = text_panel(&lines, false);
    let distractors = vec![
        "increase the clock period for every register equally".to_string(),
        "delay the capture clock of the critical path's endpoint".to_string(),
        "remove the clock tree buffers on the short path".to_string(),
    ];
    let (choices, correct) = shuffle_choices(gold.to_string(), distractors, rng);
    Question {
        id: next_id(idx),
        category: Category::Physical,
        visual_kind: VisualKind::Equations,
        prompt: "The equations in the figure give the setup constraint with useful skew. To \
                 let a critical path borrow time from a fast neighbouring stage without \
                 changing the clock period, how should the clock arrivals be skewed?"
            .into(),
        kind: QuestionKind::MultipleChoice { choices, correct },
        answer: AnswerSpec::Text {
            canonical: gold.to_string(),
            aliases: vec!["borrow time via useful skew".to_string()],
        },
        difficulty: Difficulty::new(0.7, 3, 0.7, false),
        visual: vis,
        key_marks: vec![1, 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_and_split() {
        let qs = generate(0);
        assert_eq!(qs.len(), 23);
        let mc = qs.iter().filter(|q| q.is_multiple_choice()).count();
        assert_eq!(mc, 8);
    }

    #[test]
    fn visual_kind_distribution() {
        let qs = generate(0);
        let count = |k: VisualKind| qs.iter().filter(|q| q.visual_kind == k).count();
        assert_eq!(count(VisualKind::Layout), 12);
        assert_eq!(count(VisualKind::Schematic), 8);
        assert_eq!(count(VisualKind::Diagram), 2);
        assert_eq!(count(VisualKind::Equations), 1);
    }

    #[test]
    fn paper_routing_question_present() {
        let qs = generate(0);
        assert!(qs.iter().any(|q| q
            .prompt
            .contains("determine which routing topology has lower cost")));
    }

    #[test]
    fn route_costs_positive_and_steiner_wins_or_ties() {
        for q in generate(3) {
            if let AnswerSpec::Numeric { value, unit, .. } = &q.answer {
                if unit.as_deref() == Some("units") {
                    assert!(*value >= 0.0, "{}: {value}", q.id);
                }
            }
        }
    }

    #[test]
    fn skew_questions_have_positive_gold() {
        for q in generate(2) {
            if q.prompt.contains("clock skew") && !q.is_multiple_choice() {
                let AnswerSpec::Numeric { value, .. } = q.answer else {
                    panic!()
                };
                assert!(value > 0.0, "{}: comb tree skew must be positive", q.id);
            }
        }
    }

    #[test]
    fn all_visuals_rendered() {
        for q in generate(1) {
            assert!(q.visual.image.ink_pixels() > 30, "{}", q.id);
            assert!(!q.visual.marks.is_empty(), "{}", q.id);
        }
    }
}

//! Dataset statistics — the machinery that regenerates Table I.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataset::ChipVqa;
use crate::question::{Category, VisualKind};
use crate::tokens::{count_tokens, TokenStats};

/// The Table-I statistics block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total questions.
    pub total: usize,
    /// Multiple-choice count.
    pub multiple_choice: usize,
    /// Short-answer count.
    pub short_answer: usize,
    /// Per-category counts (paper order).
    pub by_category: Vec<(Category, usize)>,
    /// Per-visual-kind counts (descending).
    pub by_visual: Vec<(VisualKind, usize)>,
    /// Prompt token statistics.
    pub prompt_tokens: TokenStats,
}

impl DatasetStats {
    /// Computes the statistics of a collection.
    ///
    /// # Panics
    ///
    /// Panics on an empty collection (no token statistics exist).
    pub fn compute(bench: &ChipVqa) -> DatasetStats {
        assert!(!bench.is_empty(), "empty collection has no statistics");
        let mut by_category: BTreeMap<Category, usize> = BTreeMap::new();
        let mut by_visual: BTreeMap<VisualKind, usize> = BTreeMap::new();
        let mut mc = 0usize;
        let mut token_counts = Vec::new();
        for q in bench.iter() {
            *by_category.entry(q.category).or_default() += 1;
            *by_visual.entry(q.visual_kind).or_default() += 1;
            if q.is_multiple_choice() {
                mc += 1;
            }
            token_counts.push(count_tokens(&q.prompt));
        }
        let mut by_visual: Vec<(VisualKind, usize)> = by_visual.into_iter().collect();
        by_visual.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        DatasetStats {
            total: bench.len(),
            multiple_choice: mc,
            short_answer: bench.len() - mc,
            by_category: Category::ALL
                .iter()
                .map(|&c| (c, by_category.get(&c).copied().unwrap_or(0)))
                .collect(),
            by_visual,
            prompt_tokens: TokenStats::compute(&token_counts).expect("nonempty"),
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE I  Statistics of ChipVQA (reproduced)")?;
        writeln!(
            f,
            "  Data      Total {}   MC {}   SA {}",
            self.total, self.multiple_choice, self.short_answer
        )?;
        writeln!(f, "  Category")?;
        for (cat, n) in &self.by_category {
            writeln!(f, "    {:<16} {}", cat.label(), n)?;
        }
        writeln!(f, "  Visual")?;
        for (kind, n) in &self.by_visual {
            writeln!(f, "    {:<16} {}", kind.label(), n)?;
        }
        let t = &self.prompt_tokens;
        writeln!(f, "  Prompt Token")?;
        writeln!(f, "    mean  {:.2}", t.mean)?;
        writeln!(f, "    std   {:.2}", t.std)?;
        writeln!(f, "    min   {}", t.min)?;
        writeln!(f, "    25%   {}", t.p25)?;
        writeln!(f, "    50%   {}", t.p50)?;
        writeln!(f, "    75%   {}", t.p75)?;
        writeln!(f, "    max   {}", t.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let stats = DatasetStats::compute(&ChipVqa::standard());
        assert_eq!(stats.total, 142);
        assert_eq!(stats.multiple_choice, 99);
        assert_eq!(stats.short_answer, 43);
    }

    #[test]
    fn table1_category_row() {
        let stats = DatasetStats::compute(&ChipVqa::standard());
        let counts: Vec<usize> = stats.by_category.iter().map(|&(_, n)| n).collect();
        assert_eq!(counts, vec![35, 44, 20, 20, 23]);
    }

    #[test]
    fn table1_visual_majority() {
        let stats = DatasetStats::compute(&ChipVqa::standard());
        // The paper: schematic (53), diagram (29) and layout (16) are the
        // majority kinds, in that order.
        assert_eq!(stats.by_visual[0], (VisualKind::Schematic, 53));
        assert_eq!(stats.by_visual[1], (VisualKind::Diagram, 29));
        assert_eq!(stats.by_visual[2], (VisualKind::Layout, 16));
        let total: usize = stats.by_visual.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 142);
        assert_eq!(stats.by_visual.len(), 12, "twelve distinct visual kinds");
    }

    #[test]
    fn token_spread_matches_paper_band() {
        let stats = DatasetStats::compute(&ChipVqa::standard());
        let t = &stats.prompt_tokens;
        // paper: 5..370 tokens; our generators span a comparable band
        assert!(t.min <= 15, "min {}", t.min);
        assert!(t.max >= 150 && t.max <= 400, "max {}", t.max);
        assert!(t.mean > 25.0 && t.mean < 100.0, "mean {}", t.mean);
    }

    #[test]
    fn display_renders_all_blocks() {
        let s = DatasetStats::compute(&ChipVqa::standard()).to_string();
        assert!(s.contains("TABLE I"));
        assert!(s.contains("schematic"));
        assert!(s.contains("mean"));
    }
}

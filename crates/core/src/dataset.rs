//! The assembled benchmark collections: standard (as published) and
//! challenge (all multiple-choice replaced by short answer, §IV-A).

use serde::{Deserialize, Serialize};

use crate::gen;
use crate::question::{Category, Question};

/// The default generation seed for the canonical collection.
pub const DEFAULT_SEED: u64 = 0xC41F;

/// A ChipVQA question collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipVqa {
    questions: Vec<Question>,
    seed: u64,
}

impl ChipVqa {
    /// Builds the canonical 142-question standard collection
    /// (seed [`DEFAULT_SEED`]).
    pub fn standard() -> Self {
        ChipVqa::with_seed(DEFAULT_SEED)
    }

    /// Builds the standard collection from an arbitrary seed (same
    /// structure/statistics, different question parameters).
    pub fn with_seed(seed: u64) -> Self {
        let mut questions = Vec::with_capacity(142);
        questions.extend(gen::digital::generate(seed));
        questions.extend(gen::analog::generate(seed));
        questions.extend(gen::architecture::generate(seed));
        questions.extend(gen::manufacturing::generate(seed));
        questions.extend(gen::physical::generate(seed));
        ChipVqa { questions, seed }
    }

    /// The standard collection plus the extension set (the "future work"
    /// questions over out-of-order execution, floorplanning, buffer
    /// insertion, differential pairs/mirrors and BDD analysis). Ids of
    /// the extra questions continue each category's numbering from 100.
    pub fn extended_with_seed(seed: u64) -> Self {
        let mut base = ChipVqa::with_seed(seed);
        base.questions.extend(gen::extension::generate(seed));
        base
    }

    /// [`ChipVqa::extended_with_seed`] at the canonical seed.
    pub fn extended() -> Self {
        ChipVqa::extended_with_seed(DEFAULT_SEED)
    }

    /// Assembles a collection from pre-generated questions (the
    /// [`DatasetSpec`](crate::spec::DatasetSpec) engine's constructor).
    pub(crate) fn from_parts(questions: Vec<Question>, seed: u64) -> Self {
        ChipVqa { questions, seed }
    }

    /// The seed this collection was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of questions.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// Iterates over all questions.
    pub fn iter(&self) -> std::slice::Iter<'_, Question> {
        self.questions.iter()
    }

    /// All questions as a slice.
    pub fn questions(&self) -> &[Question] {
        &self.questions
    }

    /// Questions of one category.
    pub fn category(&self, cat: Category) -> impl Iterator<Item = &Question> {
        self.questions.iter().filter(move |q| q.category == cat)
    }

    /// Looks a question up by id.
    pub fn get(&self, id: &str) -> Option<&Question> {
        self.questions.iter().find(|q| q.id == id)
    }

    /// The challenge collection: every multiple-choice question replaced
    /// with its short-answer form, prompts unchanged (§IV-A).
    pub fn challenge(&self) -> ChipVqa {
        ChipVqa {
            questions: self
                .questions
                .iter()
                .map(Question::to_short_answer)
                .collect(),
            seed: self.seed,
        }
    }

    /// Serialises the collection metadata (prompts, answers, statistics —
    /// not pixels) to JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` serialization errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a collection from JSON and regenerates the visuals from
    /// the recorded seed (images are not stored in the export).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` deserialization errors.
    pub fn from_json(json: &str) -> Result<ChipVqa, serde_json::Error> {
        let shell: ChipVqa = serde_json::from_str(json)?;
        // Regenerate to restore images; verify ids line up.
        let fresh = ChipVqa::with_seed(shell.seed);
        if fresh
            .questions
            .iter()
            .zip(&shell.questions)
            .all(|(a, b)| a.id == b.id && a.prompt == b.prompt)
        {
            Ok(fresh)
        } else {
            Ok(shell) // seed mismatch with stored data: keep metadata-only
        }
    }
}

impl<'a> IntoIterator for &'a ChipVqa {
    type Item = &'a Question;
    type IntoIter = std::slice::Iter<'a, Question>;
    fn into_iter(self) -> Self::IntoIter {
        self.questions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::QuestionKind;

    #[test]
    fn standard_has_table1_shape() {
        let b = ChipVqa::standard();
        assert_eq!(b.len(), 142);
        let mc = b.iter().filter(|q| q.is_multiple_choice()).count();
        assert_eq!(mc, 99);
        assert_eq!(b.category(Category::Digital).count(), 35);
        assert_eq!(b.category(Category::Analog).count(), 44);
        assert_eq!(b.category(Category::Architecture).count(), 20);
        assert_eq!(b.category(Category::Manufacture).count(), 20);
        assert_eq!(b.category(Category::Physical).count(), 23);
    }

    #[test]
    fn ids_unique() {
        let b = ChipVqa::standard();
        let mut ids: Vec<&str> = b.iter().map(|q| q.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 142);
    }

    #[test]
    fn challenge_is_all_short_answer() {
        let b = ChipVqa::standard();
        let c = b.challenge();
        assert_eq!(c.len(), 142);
        assert!(c.iter().all(|q| q.kind == QuestionKind::ShortAnswer));
        // prompts unchanged
        for (orig, chal) in b.iter().zip(c.iter()) {
            assert_eq!(orig.prompt, chal.prompt);
            assert_eq!(orig.answer, chal.answer);
        }
    }

    #[test]
    fn lookup_by_id() {
        let b = ChipVqa::standard();
        assert!(b.get("digital-000").is_some());
        assert!(b.get("nonexistent-999").is_none());
    }

    #[test]
    fn deterministic_build() {
        let a = ChipVqa::standard();
        let b = ChipVqa::standard();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn extended_collection_grows_consistently() {
        let ext = ChipVqa::extended();
        assert_eq!(ext.len(), 142 + crate::gen::extension::EXTENSION_SIZE);
        // standard prefix preserved verbatim
        let std = ChipVqa::standard();
        for (a, b) in std.iter().zip(ext.iter()) {
            assert_eq!(a, b);
        }
        // challenge transform still applies
        assert!(ext.challenge().iter().all(|q| !q.is_multiple_choice()));
    }

    #[test]
    fn json_roundtrip_restores_images() {
        let b = ChipVqa::standard();
        let json = b.to_json().expect("serializes");
        let back = ChipVqa::from_json(&json).expect("deserializes");
        assert_eq!(back.len(), 142);
        // visuals regenerated, not blank
        assert!(back.iter().all(|q| q.visual.image.ink_pixels() > 0));
    }
}

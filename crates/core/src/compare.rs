//! Cross-benchmark comparison (Fig. 3): ChipVQA versus general
//! engineering VQA suites on knowledge depth, reasoning demand and
//! domain coverage.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataset::ChipVqa;
use crate::question::Category;

/// A benchmark's difficulty profile along the axes Fig. 1/Fig. 3 contrast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name.
    pub name: String,
    /// Mean knowledge depth demanded (0 = everyday, 1 = practicing
    /// expert).
    pub knowledge_depth: f64,
    /// Mean reasoning steps per question.
    pub reasoning_steps: f64,
    /// Fraction of questions touching chip-design disciplines.
    pub chip_design_coverage: f64,
    /// Educational band description.
    pub difficulty_band: String,
}

/// Literature profiles of the prior benchmarks shown in Fig. 3. The
/// numbers are coarse editorial placements (grade-school/undergraduate
/// bands, near-zero chip-design coverage) used for the qualitative
/// comparison; they are not measured quantities.
pub fn prior_benchmarks() -> Vec<BenchmarkProfile> {
    vec![
        BenchmarkProfile {
            name: "MMBench".into(),
            knowledge_depth: 0.15,
            reasoning_steps: 1.2,
            chip_design_coverage: 0.0,
            difficulty_band: "grade school to early college".into(),
        },
        BenchmarkProfile {
            name: "MM-Vet".into(),
            knowledge_depth: 0.2,
            reasoning_steps: 1.5,
            chip_design_coverage: 0.0,
            difficulty_band: "general knowledge + OCR".into(),
        },
        BenchmarkProfile {
            name: "MathVista".into(),
            knowledge_depth: 0.35,
            reasoning_steps: 2.5,
            chip_design_coverage: 0.01,
            difficulty_band: "school math to early undergraduate".into(),
        },
        BenchmarkProfile {
            name: "MMMU".into(),
            knowledge_depth: 0.45,
            reasoning_steps: 2.0,
            chip_design_coverage: 0.03,
            difficulty_band: "undergraduate courses".into(),
        },
    ]
}

/// Measures ChipVQA's profile from its own difficulty attributes.
pub fn chipvqa_profile(bench: &ChipVqa) -> BenchmarkProfile {
    let n = bench.len().max(1) as f64;
    let knowledge_depth = bench
        .iter()
        .map(|q| q.difficulty.knowledge_depth)
        .sum::<f64>()
        / n;
    let reasoning_steps = bench
        .iter()
        .map(|q| f64::from(q.difficulty.reasoning_steps))
        .sum::<f64>()
        / n;
    BenchmarkProfile {
        name: "ChipVQA".into(),
        knowledge_depth,
        reasoning_steps,
        chip_design_coverage: 1.0,
        difficulty_band: "undergraduate course to practicing industry expert".into(),
    }
}

/// The full Fig.-3-style comparison: priors plus measured ChipVQA.
pub fn comparison(bench: &ChipVqa) -> Vec<BenchmarkProfile> {
    let mut rows = prior_benchmarks();
    rows.push(chipvqa_profile(bench));
    rows
}

/// Renders the comparison as an ASCII table.
pub struct ComparisonTable(pub Vec<BenchmarkProfile>);

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>9} {:>9} {:>9}  band",
            "benchmark", "knowledge", "reasoning", "chip-cov"
        )?;
        for p in &self.0 {
            writeln!(
                f,
                "{:<10} {:>9.2} {:>9.2} {:>8.0}%  {}",
                p.name,
                p.knowledge_depth,
                p.reasoning_steps,
                p.chip_design_coverage * 100.0,
                p.difficulty_band
            )?;
        }
        Ok(())
    }
}

/// Verifies the qualitative Fig.-3 claims: ChipVQA demands strictly more
/// knowledge depth than every prior benchmark and covers the chip-design
/// domain completely.
pub fn chipvqa_dominates(bench: &ChipVqa) -> bool {
    let us = chipvqa_profile(bench);
    prior_benchmarks().iter().all(|p| {
        us.knowledge_depth > p.knowledge_depth && us.chip_design_coverage > p.chip_design_coverage
    })
}

/// Per-category mean knowledge depth (Fig. 1's "comprehensive
/// difficulties" axis).
pub fn depth_by_category(bench: &ChipVqa) -> Vec<(Category, f64)> {
    Category::ALL
        .iter()
        .map(|&c| {
            let qs: Vec<_> = bench.category(c).collect();
            let mean = qs.iter().map(|q| q.difficulty.knowledge_depth).sum::<f64>()
                / qs.len().max(1) as f64;
            (c, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chipvqa_dominates_priors() {
        let bench = ChipVqa::standard();
        assert!(chipvqa_dominates(&bench));
    }

    #[test]
    fn profile_is_measured_not_hardcoded() {
        let bench = ChipVqa::standard();
        let p = chipvqa_profile(&bench);
        assert!(p.knowledge_depth > 0.4 && p.knowledge_depth < 0.8);
        assert!(p.reasoning_steps > 1.5);
        assert_eq!(p.chip_design_coverage, 1.0);
    }

    #[test]
    fn comparison_has_five_rows() {
        let rows = comparison(&ChipVqa::standard());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.last().unwrap().name, "ChipVQA");
    }

    #[test]
    fn manufacture_is_deepest_category() {
        // the paper singles out Manufacture as demanding the most
        // reasoning/deduction; our difficulty annotations agree
        let by_cat = depth_by_category(&ChipVqa::standard());
        let manuf = by_cat
            .iter()
            .find(|(c, _)| *c == Category::Manufacture)
            .unwrap()
            .1;
        let digital = by_cat
            .iter()
            .find(|(c, _)| *c == Category::Digital)
            .unwrap()
            .1;
        assert!(manuf > digital);
    }

    #[test]
    fn table_renders() {
        let t = ComparisonTable(comparison(&ChipVqa::standard())).to_string();
        assert!(t.contains("ChipVQA"));
        assert!(t.contains("MMMU"));
    }
}

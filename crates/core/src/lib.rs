//! The ChipVQA benchmark: a 142-question visual-question-answering suite
//! over five chip-design disciplines, reproduced procedurally.
//!
//! The original benchmark (Yang et al., DATE 2025) curates 142 VQA
//! triplets from copyrighted textbook and research material. Those images
//! and texts cannot be redistributed, so this reproduction *generates*
//! the dataset: every question is produced by a domain generator backed
//! by a real solver (boolean minimisation, MNA circuit analysis, pipeline
//! simulation, Steiner routing, process physics), renders its visual with
//! [`chipvqa_raster`], and carries a machine-checkable golden answer. The
//! default [`ChipVqa::standard`] collection reproduces the paper's
//! Table I statistics exactly: 142 questions, 99 multiple-choice / 43
//! short-answer, category split 35/44/20/20/23, twelve visual kinds and
//! a 5-to-370-token prompt-length spread.
//!
//! # Example
//!
//! ```
//! use chipvqa_core::dataset::ChipVqa;
//! use chipvqa_core::question::Category;
//!
//! let bench = ChipVqa::standard();
//! assert_eq!(bench.len(), 142);
//! assert_eq!(bench.category(Category::Analog).count(), 44);
//! let challenge = bench.challenge(); // all MC replaced with short answer
//! assert!(challenge.iter().all(|q| !q.is_multiple_choice()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod dataset;
pub mod gen;
pub mod question;
pub mod spec;
pub mod stats;
pub mod tokens;

pub use dataset::ChipVqa;
pub use question::{AnswerSpec, Category, Difficulty, Question, QuestionKind, VisualKind};
pub use spec::{DatasetSpec, ShardStream, BASE_SIZE, RESIDENT_SLACK, TABLE1_WEIGHTS};

//! The benchmark data model: questions, answers, categories, visual
//! kinds and difficulty attributes.

use std::fmt;

use chipvqa_raster::Annotated;
use serde::{Deserialize, Serialize};

/// The five chip-design disciplines of ChipVQA (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Digital design (logic, CPUs, data representation).
    Digital,
    /// Analog design (amplifiers, feedback, data converters).
    Analog,
    /// Computer architecture (pipelines, caches, coherence, NoC).
    Architecture,
    /// Semiconductor manufacturing (litho, etch, doping, yield).
    Manufacture,
    /// Physical design (routing, CTS, STA, placement, DRC).
    Physical,
}

impl Category {
    /// All categories in the paper's column order.
    pub const ALL: [Category; 5] = [
        Category::Digital,
        Category::Analog,
        Category::Architecture,
        Category::Manufacture,
        Category::Physical,
    ];

    /// Column label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Digital => "Digital",
            Category::Analog => "Analog",
            Category::Architecture => "Architecture",
            Category::Manufacture => "Manufacture",
            Category::Physical => "Physical",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The twelve visual-content kinds of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VisualKind {
    /// Circuit/gate schematics.
    Schematic,
    /// Block and concept diagrams.
    Diagram,
    /// Mask/cell layouts and wafer maps.
    Layout,
    /// Truth/state/trace tables.
    Table,
    /// Combined table + drawing figures.
    Mixed,
    /// Structural topology drawings.
    Structure,
    /// Photograph-style figures and waveforms.
    Figure,
    /// Plotted curves (Bode, dopant profiles).
    Curve,
    /// Flow charts.
    Flow,
    /// Sets of equations.
    Equations,
    /// Neural-network/accelerator diagrams.
    NeuralNets,
    /// A single equation.
    Equation,
}

impl VisualKind {
    /// All kinds in Table I row order.
    pub const ALL: [VisualKind; 12] = [
        VisualKind::Schematic,
        VisualKind::Diagram,
        VisualKind::Layout,
        VisualKind::Table,
        VisualKind::Mixed,
        VisualKind::Structure,
        VisualKind::Figure,
        VisualKind::Curve,
        VisualKind::Flow,
        VisualKind::Equations,
        VisualKind::NeuralNets,
        VisualKind::Equation,
    ];

    /// Table-I row label.
    pub fn label(&self) -> &'static str {
        match self {
            VisualKind::Schematic => "schematic",
            VisualKind::Diagram => "diagram",
            VisualKind::Layout => "layout",
            VisualKind::Table => "table",
            VisualKind::Mixed => "mixed",
            VisualKind::Structure => "structure",
            VisualKind::Figure => "figure",
            VisualKind::Curve => "curve",
            VisualKind::Flow => "flow",
            VisualKind::Equations => "equations",
            VisualKind::NeuralNets => "neural nets",
            VisualKind::Equation => "equation",
        }
    }
}

impl fmt::Display for VisualKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The semantic golden answer, independent of presentation (MC or SA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnswerSpec {
    /// A numeric value with absolute-or-relative tolerance and an
    /// optional unit word.
    Numeric {
        /// The golden value.
        value: f64,
        /// Accepted deviation: `|x − value| ≤ max(tolerance, 0.01·|value|)`.
        tolerance: f64,
        /// Optional unit label ("V", "nm", "cycles").
        unit: Option<String>,
    },
    /// Free text with a canonical form and accepted aliases.
    Text {
        /// The canonical answer.
        canonical: String,
        /// Other accepted phrasings.
        aliases: Vec<String>,
    },
    /// A boolean expression judged by semantic equivalence.
    BoolExpr {
        /// The canonical expression in textbook syntax.
        canonical: String,
    },
}

impl AnswerSpec {
    /// A short human-readable rendering of the gold (used for MC choice
    /// text and transcripts).
    pub fn display_text(&self) -> String {
        match self {
            AnswerSpec::Numeric { value, unit, .. } => match unit {
                Some(u) => format!("{} {}", trim_float(*value), u),
                None => trim_float(*value),
            },
            AnswerSpec::Text { canonical, .. } => canonical.clone(),
            AnswerSpec::BoolExpr { canonical } => canonical.clone(),
        }
    }
}

/// Formats a float without trailing noise (`42`, `0.5`, `3.3e-7`).
pub fn trim_float(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let ax = x.abs();
    if (1e-3..1e7).contains(&ax) {
        if (x - x.round()).abs() < 1e-9 * ax.max(1.0) {
            format!("{}", x.round() as i64)
        } else {
            let s = format!("{x:.4}");
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        }
    } else {
        format!("{x:.3e}")
    }
}

/// How the question presents its answer space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuestionKind {
    /// Four options; `correct` indexes the golden one.
    MultipleChoice {
        /// The four option texts (A–D order).
        choices: [String; 4],
        /// Index of the correct option.
        correct: usize,
    },
    /// Open-ended response.
    ShortAnswer,
}

/// Difficulty attributes the simulated models condition on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Difficulty {
    /// Depth of domain knowledge demanded, 0 (common) to 1 (expert).
    pub knowledge_depth: f64,
    /// Reasoning/derivation steps to the answer (≥ 1).
    pub reasoning_steps: u32,
    /// Fraction of answer-critical information carried by the image.
    pub visual_dependence: f64,
    /// Whether numeric computation is required.
    pub requires_arithmetic: bool,
}

impl Difficulty {
    /// Creates a difficulty descriptor, clamping ranges.
    pub fn new(
        knowledge_depth: f64,
        reasoning_steps: u32,
        visual_dependence: f64,
        requires_arithmetic: bool,
    ) -> Self {
        Difficulty {
            knowledge_depth: knowledge_depth.clamp(0.0, 1.0),
            reasoning_steps: reasoning_steps.max(1),
            visual_dependence: visual_dependence.clamp(0.0, 1.0),
            requires_arithmetic,
        }
    }
}

/// One VQA triplet: prompt, rendered visual, golden answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Question {
    /// Stable id, e.g. `digital-007`.
    pub id: String,
    /// Discipline.
    pub category: Category,
    /// Visual content kind.
    pub visual_kind: VisualKind,
    /// The question text (without choices; those live in `kind`).
    pub prompt: String,
    /// MC or SA presentation.
    pub kind: QuestionKind,
    /// Semantic golden answer.
    pub answer: AnswerSpec,
    /// Difficulty attributes.
    pub difficulty: Difficulty,
    /// Rendered visual. Skipped in serialization — the dataset is
    /// deterministic from its seed, so exports carry metadata only and
    /// images are regenerated.
    #[serde(skip)]
    pub visual: Annotated,
    /// Indices into `visual.marks` that a solver must perceive.
    pub key_marks: Vec<usize>,
}

impl Question {
    /// Whether the question is multiple-choice.
    pub fn is_multiple_choice(&self) -> bool {
        matches!(self.kind, QuestionKind::MultipleChoice { .. })
    }

    /// The full prompt as sent to a model: question text plus lettered
    /// options for MC.
    pub fn full_prompt(&self) -> String {
        match &self.kind {
            QuestionKind::MultipleChoice { choices, .. } => {
                let mut s = self.prompt.clone();
                for (i, c) in choices.iter().enumerate() {
                    s.push_str(&format!("\n({}) {}", (b'a' + i as u8) as char, c));
                }
                s
            }
            QuestionKind::ShortAnswer => self.prompt.clone(),
        }
    }

    /// The golden answer as display text (choice text for MC).
    pub fn golden_text(&self) -> String {
        match &self.kind {
            QuestionKind::MultipleChoice { choices, correct } => choices[*correct].clone(),
            QuestionKind::ShortAnswer => self.answer.display_text(),
        }
    }

    /// Converts an MC question into its challenge-collection short-answer
    /// form (prompt unchanged, choices removed — §IV-A of the paper).
    pub fn to_short_answer(&self) -> Question {
        let mut q = self.clone();
        q.kind = QuestionKind::ShortAnswer;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Question {
        Question {
            id: "digital-000".into(),
            category: Category::Digital,
            visual_kind: VisualKind::Table,
            prompt: "Derive the function for Q given the state table.".into(),
            kind: QuestionKind::MultipleChoice {
                choices: [
                    "Q = S'Q + S".into(),
                    "Q = S'R'q + SR'".into(),
                    "Q = SR' + R'q".into(),
                    "Q = S'Q + SR'".into(),
                ],
                correct: 3,
            },
            answer: AnswerSpec::BoolExpr {
                canonical: "S'Q + SR'".into(),
            },
            difficulty: Difficulty::new(0.5, 3, 0.9, false),
            visual: Annotated::default(),
            key_marks: vec![],
        }
    }

    #[test]
    fn full_prompt_includes_lettered_choices() {
        let q = sample();
        let p = q.full_prompt();
        assert!(p.contains("(a) Q = S'Q + S"));
        assert!(p.contains("(d) Q = S'Q + SR'"));
    }

    #[test]
    fn challenge_transform_keeps_prompt_and_answer() {
        let q = sample();
        let sa = q.to_short_answer();
        assert_eq!(sa.prompt, q.prompt);
        assert!(!sa.is_multiple_choice());
        assert_eq!(sa.golden_text(), "S'Q + SR'");
        assert_eq!(sa.answer, q.answer);
    }

    #[test]
    fn golden_text_of_mc_is_choice() {
        assert_eq!(sample().golden_text(), "Q = S'Q + SR'");
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(42.0), "42");
        assert_eq!(trim_float(0.5), "0.5");
        assert_eq!(trim_float(-3.25), "-3.25");
        assert_eq!(trim_float(3.3e-7), "3.300e-7");
        assert_eq!(trim_float(0.0), "0");
        assert_eq!(trim_float(1.23456), "1.2346");
    }

    #[test]
    fn difficulty_clamps() {
        let d = Difficulty::new(2.0, 0, -1.0, true);
        assert_eq!(d.knowledge_depth, 1.0);
        assert_eq!(d.reasoning_steps, 1);
        assert_eq!(d.visual_dependence, 0.0);
    }

    #[test]
    fn serde_skips_visual() {
        let q = sample();
        let json = serde_json::to_string(&q).unwrap();
        assert!(!json.contains("pixels"));
        let back: Question = serde_json::from_str(&json).unwrap();
        assert_eq!(back.prompt, q.prompt);
        assert_eq!(back.visual, Annotated::default());
    }

    #[test]
    fn answer_display_text() {
        let n = AnswerSpec::Numeric {
            value: 5.5,
            tolerance: 0.1,
            unit: Some("minutes".into()),
        };
        assert_eq!(n.display_text(), "5.5 minutes");
        let t = AnswerSpec::Text {
            canonical: "half adder".into(),
            aliases: vec![],
        };
        assert_eq!(t.display_text(), "half adder");
    }
}

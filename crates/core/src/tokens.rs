//! Prompt token accounting and summary statistics (the "Prompt Token"
//! block of Table I).

use serde::{Deserialize, Serialize};

/// Counts prompt tokens the way LLM tokenizers roughly do: whitespace
/// splits, plus standalone punctuation and number/word boundaries count
/// separately. Deterministic and dependency-free; calibrated so typical
/// English question prompts land near their BPE token counts.
pub fn count_tokens(text: &str) -> usize {
    let mut count = 0usize;
    for word in text.split_whitespace() {
        let mut runs = 0usize;
        let mut last_class = 0u8; // 0 none, 1 alpha, 2 digit, 3 punct
        for ch in word.chars() {
            let class = if ch.is_alphabetic() {
                1
            } else if ch.is_ascii_digit() {
                2
            } else {
                3
            };
            if class != last_class || class == 3 {
                runs += 1;
                last_class = class;
            }
        }
        count += runs.max(1);
        // long words split into subword pieces roughly every 8 chars
        let alpha_len = word.chars().filter(|c| c.is_alphabetic()).count();
        count += alpha_len / 9;
    }
    count
}

/// Summary statistics over a set of token counts (the Table-I block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenStats {
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: usize,
    /// 25th percentile.
    pub p25: usize,
    /// Median.
    pub p50: usize,
    /// 75th percentile.
    pub p75: usize,
    /// Maximum.
    pub max: usize,
}

impl TokenStats {
    /// Computes statistics; returns `None` for an empty input.
    pub fn compute(counts: &[usize]) -> Option<TokenStats> {
        if counts.is_empty() {
            return None;
        }
        let mut sorted = counts.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mean = sorted.iter().sum::<usize>() as f64 / n as f64;
        let var = sorted
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let pct = |p: f64| -> usize {
            let idx = ((n - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        Some(TokenStats {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            p25: pct(0.25),
            p50: pct(0.50),
            p75: pct(0.75),
            max: sorted[n - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentences() {
        assert_eq!(count_tokens("What is shown?"), 4); // what is shown ?
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("hello"), 1);
    }

    #[test]
    fn numbers_and_units_split() {
        // "100" + "nm" + "/" + "min" style splits
        let t = count_tokens("etches SiO2 at 100 nm/min");
        assert!(t >= 7, "{t}");
    }

    #[test]
    fn long_words_cost_extra() {
        assert!(count_tokens("electroencephalography") >= 2);
    }

    #[test]
    fn stats_of_known_set() {
        let counts = vec![5, 10, 15, 20, 25];
        let s = TokenStats::compute(&counts).unwrap();
        assert_eq!(s.mean, 15.0);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 25);
        assert_eq!(s.p50, 15);
        assert!((s.std - 7.071).abs() < 0.01);
    }

    #[test]
    fn empty_has_no_stats() {
        assert!(TokenStats::compute(&[]).is_none());
    }

    #[test]
    fn percentiles_ordered() {
        let counts: Vec<usize> = (1..=100).collect();
        let s = TokenStats::compute(&counts).unwrap();
        assert!(s.min <= s.p25 && s.p25 <= s.p50 && s.p50 <= s.p75 && s.p75 <= s.max);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn token_count_monotone_under_concat(a in "[a-zA-Z0-9 ?.,]{0,60}", b in "[a-zA-Z0-9 ?.,]{0,60}") {
                let joined = format!("{a} {b}");
                prop_assert!(count_tokens(&joined) >= count_tokens(&a));
                prop_assert!(count_tokens(&joined) >= count_tokens(&b));
            }
        }
    }
}

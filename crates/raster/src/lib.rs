//! Raster image substrate for the ChipVQA reproduction.
//!
//! The original ChipVQA benchmark pairs every question with a bitmap image
//! (schematics, diagrams, layouts, Bode plots, …) captured from textbooks
//! and research material. Those images are not redistributable, so this
//! crate provides the substrate on which the reproduction *renders* every
//! visual procedurally: a grayscale [`Pixmap`], vector-ish drawing
//! primitives, a 5x7 bitmap [`font`], box-filter [`Pixmap::downsample`]-ing for the
//! paper's resolution study (§IV-B), and the [`metrics`] the simulated
//! visual encoders consume (ink coverage, legibility after downsampling).
//!
//! # Example
//!
//! ```
//! use chipvqa_raster::{Pixmap, Region};
//!
//! let mut img = Pixmap::new(256, 128);
//! img.draw_line(10, 10, 200, 10, 2, 0);
//! img.draw_text(10, 30, "VDD", 2, 0);
//! let small = img.downsample(8);
//! assert_eq!(small.width(), 32);
//! let region = Region::new(0, 0, 256, 128);
//! assert!(img.ink_fraction(region) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod font;
pub mod mark;
pub mod metrics;
pub mod pixmap;

pub use mark::{Annotated, Mark};
pub use metrics::{legibility_after_downsample, legibility_with_downsampled, Region};
pub use pixmap::Pixmap;

/// Shade value for fully black ink.
pub const BLACK: u8 = 0;
/// Shade value for the white paper background.
pub const WHITE: u8 = 255;
/// Mid-gray shade used for de-emphasised annotations.
pub const GRAY: u8 = 128;

/// Pixels strictly darker than this count as "ink" for the legibility and
/// coverage metrics. The threshold is calibrated so that a 2-pixel stroke
/// survives 8x box-filter downsampling (2/8 coverage -> shade 191 < 208)
/// but not 16x (2/16 coverage -> shade 223 >= 208), which is exactly the
/// cliff the paper observes between its 8x and 16x resolution studies.
pub const INK_THRESHOLD: u8 = 208;

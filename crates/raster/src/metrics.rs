//! Ink-coverage and legibility metrics consumed by simulated visual
//! encoders.
//!
//! Legibility is measured mechanically from pixels rather than asserted
//! from metadata: an image is downsampled with a box filter, then the
//! fraction of original ink that still registers as ink (darker than
//! [`crate::INK_THRESHOLD`]) is computed. Thin strokes average out into
//! light gray under aggressive downsampling and stop counting as ink —
//! exactly the mechanism by which real low-resolution inputs destroy
//! fine schematic detail.

use serde::{Deserialize, Serialize};

use crate::{Pixmap, INK_THRESHOLD};

/// An axis-aligned pixel region (used to localise visual facts on an
/// image).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    /// Left edge in pixels.
    pub x: usize,
    /// Top edge in pixels.
    pub y: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

impl Region {
    /// Creates a region from its top-left corner and size.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        Region { x, y, w, h }
    }

    /// The region covering a whole image.
    pub fn full(img: &Pixmap) -> Self {
        Region::new(0, 0, img.width(), img.height())
    }

    /// Scales the region down by an integer factor (for locating the same
    /// feature on a downsampled image).
    pub fn scaled_down(&self, factor: usize) -> Region {
        let f = factor.max(1);
        Region {
            x: self.x / f,
            y: self.y / f,
            w: (self.w / f).max(1),
            h: (self.h / f).max(1),
        }
    }

    /// Region area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

impl Pixmap {
    /// Fraction of pixels in `region` (clipped to the image) that count as
    /// ink. Returns `0.0` for regions entirely outside the image.
    pub fn ink_fraction(&self, region: Region) -> f64 {
        let x1 = region.x.min(self.width());
        let y1 = region.y.min(self.height());
        let x2 = (region.x + region.w).min(self.width());
        let y2 = (region.y + region.h).min(self.height());
        let area = (x2 - x1) * (y2 - y1);
        if area == 0 {
            return 0.0;
        }
        let mut ink = 0usize;
        for y in y1..y2 {
            let base = y * self.width();
            ink += self.pixels()[base + x1..base + x2]
                .iter()
                .filter(|&&p| p < INK_THRESHOLD)
                .count();
        }
        ink as f64 / area as f64
    }
}

/// Measures how much of the ink inside `region` survives downsampling the
/// image by `factor`.
///
/// The result is the ratio of ink *area* after downsampling (scaled back up
/// by `factor²`) to ink area before, clamped to `[0, 1]`. Regions with no
/// original ink report `1.0` (nothing to lose). A factor of `1` always
/// reports `1.0`.
///
/// # Example
///
/// ```
/// use chipvqa_raster::{legibility_after_downsample, Pixmap, Region};
///
/// let mut img = Pixmap::new(256, 256);
/// img.draw_line(0, 128, 255, 128, 2, 0);
/// let all = Region::full(&img);
/// let at8 = legibility_after_downsample(&img, all, 8);
/// let at16 = legibility_after_downsample(&img, all, 16);
/// assert!(at8 > at16, "8x keeps more detail than 16x");
/// ```
pub fn legibility_after_downsample(img: &Pixmap, region: Region, factor: usize) -> f64 {
    if factor <= 1 {
        return 1.0;
    }
    let original_ink = region_ink(img, region);
    if original_ink == 0 {
        return 1.0;
    }
    let small = img.downsample(factor);
    retained_fraction(&small, region, factor, original_ink)
}

/// [`legibility_after_downsample`] against a caller-supplied
/// `downsampled` image (which must be `img.downsample(factor)`). Lets
/// callers measuring many regions of the *same* image at the *same*
/// factor — the encoder's per-question key marks — downsample once
/// instead of once per region, with bit-identical results.
pub fn legibility_with_downsampled(
    img: &Pixmap,
    downsampled: &Pixmap,
    region: Region,
    factor: usize,
) -> f64 {
    if factor <= 1 {
        return 1.0;
    }
    let original_ink = region_ink(img, region);
    if original_ink == 0 {
        return 1.0;
    }
    retained_fraction(downsampled, region, factor, original_ink)
}

fn retained_fraction(small: &Pixmap, region: Region, factor: usize, original_ink: usize) -> f64 {
    let small_region = region.scaled_down(factor);
    let retained = region_ink(small, small_region) * factor * factor;
    (retained as f64 / original_ink as f64).min(1.0)
}

fn region_ink(img: &Pixmap, region: Region) -> usize {
    let x1 = region.x.min(img.width());
    let y1 = region.y.min(img.height());
    let x2 = (region.x + region.w).min(img.width());
    let y2 = (region.y + region.h).min(img.height());
    let mut ink = 0usize;
    for y in y1..y2 {
        let base = y * img.width();
        ink += img.pixels()[base + x1..base + x2]
            .iter()
            .filter(|&&p| p < INK_THRESHOLD)
            .count();
    }
    ink
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schematic_like() -> Pixmap {
        let mut img = Pixmap::new(512, 384);
        img.draw_rect(40, 40, 200, 120, 2, 0);
        img.draw_line(240, 100, 460, 100, 2, 0);
        img.draw_text(60, 60, "GAIN = 42", 3, 0);
        img.draw_circle(350, 250, 40, 2, 0);
        img
    }

    #[test]
    fn factor_one_is_lossless() {
        let img = schematic_like();
        assert_eq!(
            legibility_after_downsample(&img, Region::full(&img), 1),
            1.0
        );
    }

    #[test]
    fn empty_region_fully_legible() {
        let img = Pixmap::new(64, 64);
        assert_eq!(
            legibility_after_downsample(&img, Region::full(&img), 16),
            1.0
        );
    }

    #[test]
    fn eight_x_retains_sixteen_x_loses() {
        // This is the calibration the resolution study (R1) relies on:
        // 2-pixel strokes survive 8x but mostly vanish at 16x.
        let img = schematic_like();
        let all = Region::full(&img);
        let at8 = legibility_after_downsample(&img, all, 8);
        let at16 = legibility_after_downsample(&img, all, 16);
        assert!(at8 > 0.9, "8x legibility {at8}");
        assert!(
            at16 < at8 - 0.3,
            "16x ({at16}) should lose much more than 8x ({at8})"
        );
    }

    #[test]
    fn legibility_monotone_in_factor() {
        let img = schematic_like();
        let all = Region::full(&img);
        let mut last = 1.0;
        for factor in [1usize, 2, 4, 8, 16, 32] {
            let l = legibility_after_downsample(&img, all, factor);
            assert!(
                l <= last + 0.15,
                "legibility should not rise sharply: f={factor} l={l} last={last}"
            );
            last = l;
        }
    }

    #[test]
    fn ink_fraction_of_filled_region_is_one() {
        let mut img = Pixmap::new(32, 32);
        img.fill_rect(8, 8, 8, 8, 0);
        assert!((img.ink_fraction(Region::new(8, 8, 8, 8)) - 1.0).abs() < 1e-9);
        assert_eq!(img.ink_fraction(Region::new(0, 0, 4, 4)), 0.0);
    }

    #[test]
    fn out_of_bounds_region_is_zero() {
        let img = Pixmap::new(16, 16);
        assert_eq!(img.ink_fraction(Region::new(100, 100, 10, 10)), 0.0);
    }

    #[test]
    fn region_scaling() {
        let r = Region::new(64, 32, 80, 40);
        let s = r.scaled_down(8);
        assert_eq!(s, Region::new(8, 4, 10, 5));
        assert_eq!(Region::new(2, 2, 3, 3).scaled_down(8).area(), 1);
    }
}

//! Labelled regions on a rendered image.
//!
//! Substrate renderers return a [`Pixmap`] together with [`Mark`]s locating
//! the semantically load-bearing features of the drawing (a gate symbol, an
//! annotated routing point, a device label). The simulated visual encoders
//! use the marks to decide *which pixels* a perceived fact depends on, so
//! perception quality is tied to the actual local legibility of the image.

use serde::{Deserialize, Serialize};

use crate::{Pixmap, Region};

/// A labelled region of interest on a rendered visual.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mark {
    /// Human-readable description of the feature ("NAND gate G3",
    /// "pin (4, 7)", "gm label").
    pub label: String,
    /// Where the feature sits on the image.
    pub region: Region,
}

impl Mark {
    /// Creates a mark.
    pub fn new(label: impl Into<String>, region: Region) -> Self {
        Mark {
            label: label.into(),
            region,
        }
    }
}

/// A rendered visual: the image plus the marks a perceiver would need to
/// extract to "understand" it.
///
/// # Example
///
/// ```
/// use chipvqa_raster::{Annotated, Pixmap, Region};
///
/// let mut img = Pixmap::new(64, 64);
/// img.draw_rect(8, 8, 20, 12, 2, 0);
/// let mut vis = Annotated::new(img);
/// vis.mark("input register", Region::new(8, 8, 20, 12));
/// assert_eq!(vis.marks.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotated {
    /// The rendered pixels.
    pub image: Pixmap,
    /// Labelled features of interest.
    pub marks: Vec<Mark>,
}

impl Default for Annotated {
    /// A blank 1x1 placeholder (used where an image is regenerated rather
    /// than serialized).
    fn default() -> Self {
        Annotated::new(Pixmap::new(1, 1))
    }
}

impl Annotated {
    /// Wraps an image with no marks yet.
    pub fn new(image: Pixmap) -> Self {
        Annotated {
            image,
            marks: Vec::new(),
        }
    }

    /// Adds a labelled region.
    pub fn mark(&mut self, label: impl Into<String>, region: Region) {
        self.marks.push(Mark::new(label, region));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_accumulate() {
        let mut a = Annotated::new(Pixmap::new(32, 32));
        a.mark("x", Region::new(0, 0, 8, 8));
        a.mark("y", Region::new(8, 8, 8, 8));
        assert_eq!(a.marks[1].label, "y");
    }
}

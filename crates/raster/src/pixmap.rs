//! Grayscale pixel buffer with drawing primitives.

use serde::{Deserialize, Serialize};

use crate::font;
use crate::{INK_THRESHOLD, WHITE};

/// An 8-bit grayscale raster image.
///
/// The coordinate origin is the top-left corner; `x` grows to the right and
/// `y` grows downward. The background is white (`255`) and ink is drawn in
/// darker shades (typically `0`). All drawing primitives silently clip to
/// the image bounds, so callers never need to pre-clip geometry.
///
/// # Example
///
/// ```
/// use chipvqa_raster::Pixmap;
///
/// let mut img = Pixmap::new(64, 64);
/// img.draw_rect(8, 8, 48, 48, 2, 0);
/// img.draw_circle(32, 32, 12, 2, 0);
/// assert_eq!(img.get(8, 8), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pixmap {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Pixmap {
    /// Creates a white image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "pixmap dimensions must be nonzero");
        Pixmap {
            width,
            height,
            data: vec![WHITE; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read-only view of the raw pixel data, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Returns the shade at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, x: i64, y: i64) -> Option<u8> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            None
        } else {
            Some(self.data[y as usize * self.width + x as usize])
        }
    }

    /// Sets the shade at `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, shade: u8) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.data[y as usize * self.width + x as usize] = shade;
        }
    }

    /// Fills the whole image with one shade.
    pub fn fill(&mut self, shade: u8) {
        self.data.fill(shade);
    }

    /// Fills the axis-aligned rectangle with top-left `(x, y)` and the given
    /// width/height.
    pub fn fill_rect(&mut self, x: i64, y: i64, w: i64, h: i64, shade: u8) {
        // Clip once, then fill whole row slices instead of testing bounds
        // per pixel — this primitive underlies lines, text, and stamps,
        // so it is the hottest routine in the renderer.
        let x0 = x.max(0);
        let y0 = y.max(0);
        let x1 = x.saturating_add(w.max(0)).min(self.width as i64);
        let y1 = y.saturating_add(h.max(0)).min(self.height as i64);
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        let (x0, x1) = (x0 as usize, x1 as usize);
        for yy in y0 as usize..y1 as usize {
            let base = yy * self.width;
            self.data[base + x0..base + x1].fill(shade);
        }
    }

    /// Draws a straight line between `(x0, y0)` and `(x1, y1)` with the given
    /// stroke width (in pixels) using Bresenham stepping.
    pub fn draw_line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, stroke: i64, shade: u8) {
        // Axis-aligned lines (the vast majority in schematic renders) are
        // exactly the union of their per-step stamps, which collapses to a
        // single clipped rectangle fill.
        let s = stroke.max(1);
        let half = (s - 1) / 2;
        if y0 == y1 {
            let left = x0.min(x1);
            self.fill_rect(left - half, y0 - half, (x1 - x0).abs() + s, s, shade);
            return;
        }
        if x0 == x1 {
            let top = y0.min(y1);
            self.fill_rect(x0 - half, top - half, s, (y1 - y0).abs() + s, shade);
            return;
        }
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        let (mut x, mut y) = (x0, y0);
        loop {
            self.stamp(x, y, stroke, shade);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Draws a dashed line (alternating `dash_on` drawn pixels with
    /// `dash_off` skipped pixels along the Bresenham walk).
    #[allow(clippy::too_many_arguments)] // mirrors draw_line's endpoint/stroke signature
    pub fn draw_dashed_line(
        &mut self,
        x0: i64,
        y0: i64,
        x1: i64,
        y1: i64,
        stroke: i64,
        shade: u8,
        dash_on: u32,
        dash_off: u32,
    ) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        let (mut x, mut y) = (x0, y0);
        let period = (dash_on + dash_off).max(1);
        let mut step = 0u32;
        loop {
            if step % period < dash_on {
                self.stamp(x, y, stroke, shade);
            }
            step += 1;
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Draws the outline of an axis-aligned rectangle.
    pub fn draw_rect(&mut self, x: i64, y: i64, w: i64, h: i64, stroke: i64, shade: u8) {
        self.draw_line(x, y, x + w - 1, y, stroke, shade);
        self.draw_line(x, y + h - 1, x + w - 1, y + h - 1, stroke, shade);
        self.draw_line(x, y, x, y + h - 1, stroke, shade);
        self.draw_line(x + w - 1, y, x + w - 1, y + h - 1, stroke, shade);
    }

    /// Draws a circle outline centred at `(cx, cy)` using the midpoint
    /// algorithm.
    pub fn draw_circle(&mut self, cx: i64, cy: i64, r: i64, stroke: i64, shade: u8) {
        let mut x = r;
        let mut y = 0i64;
        let mut err = 1 - r;
        while x >= y {
            for &(px, py) in &[
                (cx + x, cy + y),
                (cx - x, cy + y),
                (cx + x, cy - y),
                (cx - x, cy - y),
                (cx + y, cy + x),
                (cx - y, cy + x),
                (cx + y, cy - x),
                (cx - y, cy - x),
            ] {
                self.stamp(px, py, stroke, shade);
            }
            y += 1;
            if err < 0 {
                err += 2 * y + 1;
            } else {
                x -= 1;
                err += 2 * (y - x) + 1;
            }
        }
    }

    /// Fills a disc centred at `(cx, cy)`.
    pub fn fill_circle(&mut self, cx: i64, cy: i64, r: i64, shade: u8) {
        // One clipped span per scanline: the row's extent is the largest
        // xx with xx² + yy² ≤ r² (float sqrt as a seed, corrected to the
        // exact integer bound so the pixel set matches the per-pixel
        // membership test).
        for yy in -r..=r {
            let limit = r * r - yy * yy;
            let mut xx = (limit as f64).sqrt() as i64;
            while (xx + 1) * (xx + 1) <= limit {
                xx += 1;
            }
            while xx > 0 && xx * xx > limit {
                xx -= 1;
            }
            self.fill_rect(cx - xx, cy + yy, 2 * xx + 1, 1, shade);
        }
    }

    /// Draws connected line segments through the given points.
    pub fn draw_polyline(&mut self, points: &[(i64, i64)], stroke: i64, shade: u8) {
        for pair in points.windows(2) {
            self.draw_line(pair[0].0, pair[0].1, pair[1].0, pair[1].1, stroke, shade);
        }
    }

    /// Draws a line terminated by a small solid arrow head at `(x1, y1)`.
    pub fn draw_arrow(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, stroke: i64, shade: u8) {
        self.draw_line(x0, y0, x1, y1, stroke, shade);
        let (dx, dy) = ((x1 - x0) as f64, (y1 - y0) as f64);
        let len = (dx * dx + dy * dy).sqrt();
        if len < 1.0 {
            return;
        }
        let (ux, uy) = (dx / len, dy / len);
        let size = 6.0_f64.min(len / 2.0);
        // Two barbs at +-150 degrees from the shaft direction.
        for angle in [2.6, -2.6_f64] {
            let (s, c) = angle.sin_cos();
            let bx = x1 + ((ux * c - uy * s) * size).round() as i64;
            let by = y1 + ((ux * s + uy * c) * size).round() as i64;
            self.draw_line(x1, y1, bx, by, stroke, shade);
        }
    }

    /// Renders `text` with its top-left corner at `(x, y)` using the built-in
    /// 5x7 font scaled by `scale`. Returns the width of the rendered text in
    /// pixels. Characters outside the font map render as blanks.
    pub fn draw_text(&mut self, x: i64, y: i64, text: &str, scale: i64, shade: u8) -> i64 {
        let scale = scale.max(1);
        let mut cursor = x;
        for ch in text.chars() {
            let glyph = font::glyph(ch);
            for (col, bits) in glyph.iter().enumerate() {
                for row in 0..7 {
                    if bits >> row & 1 == 1 {
                        self.fill_rect(
                            cursor + col as i64 * scale,
                            y + row * scale,
                            scale,
                            scale,
                            shade,
                        );
                    }
                }
            }
            cursor += font::ADVANCE * scale;
        }
        cursor - x
    }

    /// Width in pixels that [`Pixmap::draw_text`] would occupy.
    pub fn text_width(text: &str, scale: i64) -> i64 {
        text.chars().count() as i64 * font::ADVANCE * scale.max(1)
    }

    /// Downsamples the image by an integer factor using a box filter (the
    /// mean of each `factor x factor` block). Ragged edges are averaged over
    /// the in-bounds pixels. This models the resolution degradation of the
    /// paper's §IV-B study.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> Pixmap {
        assert!(factor > 0, "downsample factor must be nonzero");
        if factor == 1 {
            return self.clone();
        }
        let nw = self.width.div_ceil(factor);
        let nh = self.height.div_ceil(factor);
        let mut out = Pixmap::new(nw, nh);
        self.box_filter(factor, nw, nh, &mut out.data);
        out
    }

    /// [`Pixmap::downsample`] into a caller-owned scratch image, avoiding
    /// the per-call allocation on hot encoder paths. `out` is resized (and
    /// its previous contents discarded) to the downsampled dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample_into(&self, factor: usize, out: &mut Pixmap) {
        assert!(factor > 0, "downsample factor must be nonzero");
        let nw = self.width.div_ceil(factor);
        let nh = self.height.div_ceil(factor);
        out.width = nw;
        out.height = nh;
        out.data.clear();
        out.data.resize(nw * nh, WHITE);
        if factor == 1 {
            out.data.copy_from_slice(&self.data);
        } else {
            self.box_filter(factor, nw, nh, &mut out.data);
        }
    }

    /// Box filter core shared by [`Pixmap::downsample`] and
    /// [`Pixmap::downsample_into`]: accumulates each output row band by
    /// walking input rows once and summing `factor`-wide chunks, instead
    /// of re-deriving block bounds per output pixel. Integer sums are
    /// order-independent, so the result is bit-identical to the naive
    /// per-block mean.
    fn box_filter(&self, factor: usize, nw: usize, nh: usize, out: &mut [u8]) {
        let mut sums = vec![0u64; nw];
        for by in 0..nh {
            sums.fill(0);
            let y_start = by * factor;
            let y_end = ((by + 1) * factor).min(self.height);
            for yy in y_start..y_end {
                let row = &self.data[yy * self.width..(yy + 1) * self.width];
                for (sum, chunk) in sums.iter_mut().zip(row.chunks(factor)) {
                    *sum += chunk.iter().map(|&p| u64::from(p)).sum::<u64>();
                }
            }
            let rows = (y_end - y_start) as u64;
            for (bx, o) in out[by * nw..(by + 1) * nw].iter_mut().enumerate() {
                let cols = (((bx + 1) * factor).min(self.width) - bx * factor) as u64;
                *o = (sums[bx] / (rows * cols).max(1)) as u8;
            }
        }
    }

    /// Counts pixels darker than [`INK_THRESHOLD`] over the whole image.
    pub fn ink_pixels(&self) -> usize {
        self.data.iter().filter(|&&p| p < INK_THRESHOLD).count()
    }

    /// Renders the image as ASCII art (one character per `cell x cell`
    /// block), handy for terminal exploration of generated visuals.
    pub fn to_ascii(&self, cell: usize) -> String {
        let mut s = String::new();
        self.to_ascii_into(cell, &mut s);
        s
    }

    /// [`Pixmap::to_ascii`] into a caller-owned string (cleared first),
    /// avoiding the per-call allocation when rendering many frames.
    pub fn to_ascii_into(&self, cell: usize, s: &mut String) {
        let cell = cell.max(1);
        let shades = [b'#', b'+', b'.', b' '];
        let nw = self.width.div_ceil(cell);
        let nh = self.height.div_ceil(cell);
        s.clear();
        s.reserve(nh * (nw + 1));
        let mut sums = vec![0u64; nw];
        for by in 0..nh {
            sums.fill(0);
            let y_start = by * cell;
            let y_end = ((by + 1) * cell).min(self.height);
            for yy in y_start..y_end {
                let row = &self.data[yy * self.width..(yy + 1) * self.width];
                for (sum, chunk) in sums.iter_mut().zip(row.chunks(cell)) {
                    *sum += chunk.iter().map(|&p| u64::from(p)).sum::<u64>();
                }
            }
            let rows = (y_end - y_start) as u64;
            for (bx, &sum) in sums.iter().enumerate() {
                let cols = (((bx + 1) * cell).min(self.width) - bx * cell) as u64;
                let avg = (sum / (rows * cols).max(1)) as usize;
                s.push(shades[avg * shades.len() / 256] as char);
            }
            s.push('\n');
        }
    }

    /// Writes the image as a binary PGM (P5) stream. A mutable reference
    /// to any `Write` implementor can be passed (e.g. `&mut file`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_pgm<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "P5\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.data)
    }

    /// The image as an in-memory PGM (P5) byte vector.
    pub fn to_pgm_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 32);
        self.write_pgm(&mut out)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Stamps a `stroke x stroke` square centred on `(x, y)`.
    fn stamp(&mut self, x: i64, y: i64, stroke: i64, shade: u8) {
        let s = stroke.max(1);
        let half = (s - 1) / 2;
        self.fill_rect(x - half, y - half, s, s, shade);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_white() {
        let img = Pixmap::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.pixels().iter().all(|&p| p == WHITE));
        assert_eq!(img.ink_pixels(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimensions_panic() {
        let _ = Pixmap::new(0, 5);
    }

    #[test]
    fn set_get_roundtrip_and_clipping() {
        let mut img = Pixmap::new(8, 8);
        img.set(3, 4, 7);
        assert_eq!(img.get(3, 4), Some(7));
        assert_eq!(img.get(-1, 0), None);
        assert_eq!(img.get(8, 0), None);
        img.set(-5, -5, 0); // must not panic
        img.set(100, 100, 0);
    }

    #[test]
    fn horizontal_line_covers_expected_pixels() {
        let mut img = Pixmap::new(16, 16);
        img.draw_line(2, 5, 10, 5, 1, 0);
        for x in 2..=10 {
            assert_eq!(img.get(x, 5), Some(0), "x={x}");
        }
        assert_eq!(img.get(1, 5), Some(WHITE));
        assert_eq!(img.get(11, 5), Some(WHITE));
    }

    #[test]
    fn diagonal_line_endpoints() {
        let mut img = Pixmap::new(32, 32);
        img.draw_line(0, 0, 31, 31, 1, 0);
        assert_eq!(img.get(0, 0), Some(0));
        assert_eq!(img.get(31, 31), Some(0));
        assert_eq!(img.get(16, 16), Some(0));
    }

    #[test]
    fn stroke_width_thickens_line() {
        let mut thin = Pixmap::new(32, 32);
        let mut thick = Pixmap::new(32, 32);
        thin.draw_line(0, 16, 31, 16, 1, 0);
        thick.draw_line(0, 16, 31, 16, 3, 0);
        assert!(thick.ink_pixels() > 2 * thin.ink_pixels());
    }

    #[test]
    fn rect_outline_has_corners() {
        let mut img = Pixmap::new(32, 32);
        img.draw_rect(4, 4, 10, 8, 1, 0);
        assert_eq!(img.get(4, 4), Some(0));
        assert_eq!(img.get(13, 11), Some(0));
        assert_eq!(img.get(8, 8), Some(WHITE)); // interior untouched
    }

    #[test]
    fn circle_is_roughly_round() {
        let mut img = Pixmap::new(64, 64);
        img.draw_circle(32, 32, 10, 1, 0);
        assert_eq!(img.get(42, 32), Some(0));
        assert_eq!(img.get(22, 32), Some(0));
        assert_eq!(img.get(32, 42), Some(0));
        assert_eq!(img.get(32, 32), Some(WHITE));
    }

    #[test]
    fn fill_circle_contains_center() {
        let mut img = Pixmap::new(32, 32);
        img.fill_circle(16, 16, 5, 0);
        assert_eq!(img.get(16, 16), Some(0));
        assert_eq!(img.get(16 + 4, 16), Some(0));
        assert_eq!(img.get(16 + 8, 16), Some(WHITE));
    }

    #[test]
    fn arrow_draws_head() {
        let mut img = Pixmap::new(64, 64);
        img.draw_arrow(4, 32, 60, 32, 1, 0);
        // barbs extend above and below the shaft near the tip
        let above = (50..60).any(|x| img.get(x, 29) == Some(0));
        let below = (50..60).any(|x| img.get(x, 35) == Some(0));
        assert!(above && below);
    }

    #[test]
    fn text_renders_ink_and_reports_width() {
        let mut img = Pixmap::new(128, 32);
        let w = img.draw_text(2, 2, "VDD", 2, 0);
        assert_eq!(w, Pixmap::text_width("VDD", 2));
        assert!(img.ink_pixels() > 20);
    }

    #[test]
    fn downsample_dimensions_round_up() {
        let img = Pixmap::new(100, 50);
        let d = img.downsample(8);
        assert_eq!(d.width(), 13);
        assert_eq!(d.height(), 7);
    }

    #[test]
    fn downsample_of_uniform_is_uniform() {
        let mut img = Pixmap::new(64, 64);
        img.fill(42);
        let d = img.downsample(4);
        assert!(d.pixels().iter().all(|&p| p == 42));
    }

    #[test]
    fn downsample_averages_strokes_to_gray() {
        let mut img = Pixmap::new(64, 64);
        img.draw_line(0, 32, 63, 32, 2, 0); // 2px stroke
        let d = img.downsample(16);
        // A 2/16 duty stroke averages to roughly 255 * 14/16 = 223.
        let row = d.pixels()[2 * d.width()..3 * d.width()].to_vec();
        assert!(row.iter().all(|&p| p > 200), "{row:?}");
    }

    #[test]
    fn dashed_line_has_gaps() {
        let mut img = Pixmap::new(64, 8);
        img.draw_dashed_line(0, 4, 63, 4, 1, 0, 4, 4);
        let inked: Vec<bool> = (0..64).map(|x| img.get(x, 4) == Some(0)).collect();
        assert!(inked.iter().any(|&b| b));
        assert!(inked.iter().any(|&b| !b));
    }

    #[test]
    fn ascii_render_shape() {
        let mut img = Pixmap::new(16, 8);
        img.fill_rect(0, 0, 16, 8, 0);
        let art = img.to_ascii(4);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any sequence of drawing ops with arbitrary (even wildly
            /// out-of-range) coordinates must not panic, and downsampling
            /// afterwards keeps dimensions consistent.
            #[test]
            fn drawing_is_panic_free(
                ops in proptest::collection::vec(
                    (-64i64..200, -64i64..200, -64i64..200, -64i64..200, 0u8..6),
                    0..24,
                ),
                factor in 1usize..20,
            ) {
                let mut img = Pixmap::new(96, 64);
                for (a, b, c, d, op) in ops {
                    match op {
                        0 => img.draw_line(a, b, c, d, 2, 0),
                        1 => img.draw_rect(a, b, c.max(1), d.max(1), 1, 0),
                        2 => img.draw_circle(a, b, c.rem_euclid(40), 1, 0),
                        3 => img.fill_circle(a, b, c.rem_euclid(20), 0),
                        4 => img.draw_arrow(a, b, c, d, 1, 0),
                        _ => {
                            let _ = img.draw_text(a, b, "X9", 2, 0);
                        }
                    }
                }
                let small = img.downsample(factor);
                prop_assert_eq!(small.width(), img.width().div_ceil(factor));
                prop_assert_eq!(small.height(), img.height().div_ceil(factor));
            }
        }
    }

    #[test]
    fn pgm_export_shape() {
        let mut img = Pixmap::new(6, 4);
        img.set(0, 0, 0);
        let bytes = img.to_pgm_bytes();
        let header = b"P5\n6 4\n255\n";
        assert!(bytes.starts_with(header));
        assert_eq!(bytes.len(), header.len() + 24);
        assert_eq!(bytes[header.len()], 0, "first pixel black");
        assert_eq!(*bytes.last().unwrap(), WHITE);
    }

    #[test]
    fn serde_roundtrip() {
        let mut img = Pixmap::new(8, 8);
        img.draw_rect(1, 1, 6, 6, 1, 0);
        let json = serde_json::to_string(&img).expect("serialize");
        let back: Pixmap = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(img, back);
    }
}

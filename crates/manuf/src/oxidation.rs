//! Thermal oxidation: the Deal–Grove linear-parabolic growth model.

use serde::{Deserialize, Serialize};

/// Deal–Grove coefficients for one ambient/temperature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DealGrove {
    /// Linear rate constant B/A in µm/hr.
    pub linear_um_hr: f64,
    /// Parabolic rate constant B in µm²/hr.
    pub parabolic_um2_hr: f64,
}

impl DealGrove {
    /// Creates a coefficient set.
    ///
    /// # Panics
    ///
    /// Panics unless both constants are positive.
    pub fn new(linear_um_hr: f64, parabolic_um2_hr: f64) -> Self {
        assert!(linear_um_hr > 0.0 && parabolic_um2_hr > 0.0);
        DealGrove {
            linear_um_hr,
            parabolic_um2_hr,
        }
    }

    /// Representative wet-oxidation constants at 1100 °C.
    pub fn wet_1100c() -> Self {
        DealGrove::new(4.64, 0.51)
    }

    /// Representative dry-oxidation constants at 1100 °C.
    pub fn dry_1100c() -> Self {
        DealGrove::new(0.30, 0.027)
    }

    /// Oxide thickness (µm) after `hours`, starting from `x0_um` of
    /// existing oxide: solves `x² + A x = B (t + τ)`.
    pub fn thickness_um(&self, hours: f64, x0_um: f64) -> f64 {
        let a = self.parabolic_um2_hr / self.linear_um_hr; // the "A" term
        let b = self.parabolic_um2_hr;
        let tau = (x0_um * x0_um + a * x0_um) / b;
        let t = hours + tau;
        (-a + (a * a + 4.0 * b * t).sqrt()) / 2.0
    }

    /// Time (hours) to grow to `x_um` from bare silicon.
    pub fn time_to_thickness_hr(&self, x_um: f64) -> f64 {
        let a = self.parabolic_um2_hr / self.linear_um_hr;
        (x_um * x_um + a * x_um) / self.parabolic_um2_hr
    }

    /// Silicon consumed growing `x_um` of oxide (≈ 0.44 × thickness).
    pub fn silicon_consumed_um(x_um: f64) -> f64 {
        0.44 * x_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_monotone_and_sublinear_at_long_times() {
        let dg = DealGrove::wet_1100c();
        let x1 = dg.thickness_um(1.0, 0.0);
        let x4 = dg.thickness_um(4.0, 0.0);
        let x16 = dg.thickness_um(16.0, 0.0);
        assert!(x1 < x4 && x4 < x16);
        // parabolic regime: quadrupling time doubles thickness
        assert!(x16 / x4 < 2.3, "{}", x16 / x4);
    }

    #[test]
    fn time_thickness_roundtrip() {
        let dg = DealGrove::dry_1100c();
        for x in [0.05, 0.1, 0.3] {
            let t = dg.time_to_thickness_hr(x);
            let back = dg.thickness_um(t, 0.0);
            assert!((back - x).abs() < 1e-9, "{back} vs {x}");
        }
    }

    #[test]
    fn existing_oxide_slows_growth() {
        let dg = DealGrove::wet_1100c();
        let fresh = dg.thickness_um(1.0, 0.0);
        let grown_on = dg.thickness_um(1.0, 0.5) - 0.5;
        assert!(grown_on < fresh);
    }

    #[test]
    fn wet_grows_faster_than_dry() {
        let wet = DealGrove::wet_1100c().thickness_um(2.0, 0.0);
        let dry = DealGrove::dry_1100c().thickness_um(2.0, 0.0);
        assert!(wet > 3.0 * dry);
    }

    #[test]
    fn silicon_consumption_ratio() {
        assert!((DealGrove::silicon_consumed_um(1.0) - 0.44).abs() < 1e-12);
    }
}

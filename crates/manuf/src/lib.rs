//! Semiconductor-manufacturing substrate for the ChipVQA reproduction.
//!
//! ChipVQA's Manufacturing section spans lithography, etching, doping,
//! oxidation, wafer defects and device structures. The paper's worked
//! example — *"how long should this wafer sit in 5:1 BOE to record a 10%
//! over-etch?"* — is a process-physics computation; this crate implements
//! the models those questions (and their golden answers) come from:
//!
//! - [`etch`]: wet/dry etch of layered stacks with rates, selectivity,
//!   isotropic undercut and over-etch timing;
//! - [`litho`]: Rayleigh resolution/depth-of-focus and the RET taxonomy
//!   (OPC, PSM, OAI, SRAF) the paper's sample question shows;
//! - [`diffusion`]: Gaussian and erfc dopant profiles with junction-depth
//!   solves;
//! - [`implant`]: range/straggle implant profiles;
//! - [`oxidation`]: Deal–Grove linear-parabolic oxide growth;
//! - [`yield_model`]: Poisson/Murphy/negative-binomial die yield and
//!   gross-dies-per-wafer;
//! - [`render`]: cross-section stack drawings, mask/pattern figures and
//!   profile curves.
//!
//! # Example
//!
//! ```
//! use chipvqa_manuf::etch::{EtchProcess, Material};
//!
//! // 5:1 BOE etches 500 nm of SiO2 at 100 nm/min; a 10% over-etch takes
//! // 5.0 * 1.1 = 5.5 minutes.
//! let boe = EtchProcess::wet("5:1 BOE", Material::SiO2, 100.0);
//! let t = boe.time_for_overetch(500.0, 0.10);
//! assert!((t - 5.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diffusion;
pub mod etch;
pub mod implant;
pub mod litho;
pub mod oxidation;
pub mod render;
pub mod yield_model;

pub use etch::EtchProcess;
pub use litho::Lithography;

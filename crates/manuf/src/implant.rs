//! Ion implantation: Gaussian range/straggle profiles.

use serde::{Deserialize, Serialize};

/// An implant step: projected range and straggle (both in nm) with a
/// dose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Implant {
    /// Projected range Rp in nm.
    pub range_nm: f64,
    /// Straggle ΔRp in nm.
    pub straggle_nm: f64,
    /// Dose in atoms/cm².
    pub dose_cm2: f64,
}

impl Implant {
    /// Creates an implant description.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive.
    pub fn new(range_nm: f64, straggle_nm: f64, dose_cm2: f64) -> Self {
        assert!(range_nm > 0.0 && straggle_nm > 0.0 && dose_cm2 > 0.0);
        Implant {
            range_nm,
            straggle_nm,
            dose_cm2,
        }
    }

    /// Peak concentration in atoms/cm³:
    /// `Np = dose / (√(2π) ΔRp)` with ΔRp converted to cm.
    pub fn peak_concentration_cm3(&self) -> f64 {
        let straggle_cm = self.straggle_nm * 1e-7;
        self.dose_cm2 / ((2.0 * std::f64::consts::PI).sqrt() * straggle_cm)
    }

    /// Concentration at depth `x_nm`:
    /// `N(x) = Np · exp(−(x−Rp)²/(2ΔRp²))`.
    pub fn concentration_cm3(&self, x_nm: f64) -> f64 {
        let z = (x_nm - self.range_nm) / self.straggle_nm;
        self.peak_concentration_cm3() * (-0.5 * z * z).exp()
    }

    /// Depths where the profile crosses `level` atoms/cm³ (the two
    /// junctions of a buried profile); `None` if the peak is below the
    /// level.
    pub fn junctions_nm(&self, level_cm3: f64) -> Option<(f64, f64)> {
        let peak = self.peak_concentration_cm3();
        if level_cm3 >= peak {
            return None;
        }
        let half_width = self.straggle_nm * (2.0 * (peak / level_cm3).ln()).sqrt();
        Some((self.range_nm - half_width, self.range_nm + half_width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp() -> Implant {
        Implant::new(100.0, 20.0, 1e15)
    }

    #[test]
    fn peak_is_at_projected_range() {
        let i = imp();
        let peak = i.concentration_cm3(100.0);
        assert!((peak / i.peak_concentration_cm3() - 1.0).abs() < 1e-12);
        assert!(i.concentration_cm3(60.0) < peak);
        assert!(i.concentration_cm3(140.0) < peak);
    }

    #[test]
    fn profile_symmetric_about_range() {
        let i = imp();
        for d in [5.0, 15.0, 33.0] {
            let lo = i.concentration_cm3(100.0 - d);
            let hi = i.concentration_cm3(100.0 + d);
            assert!((lo / hi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn junction_pair_brackets_range() {
        let i = imp();
        let level = i.peak_concentration_cm3() / 100.0;
        let (xa, xb) = i.junctions_nm(level).unwrap();
        assert!(xa < 100.0 && 100.0 < xb);
        // profile at the junctions equals the level
        assert!((i.concentration_cm3(xb) / level - 1.0).abs() < 1e-9);
        assert!((i.concentration_cm3(xa) / level - 1.0).abs() < 1e-9);
    }

    #[test]
    fn level_above_peak_has_no_junction() {
        let i = imp();
        assert!(i.junctions_nm(i.peak_concentration_cm3() * 2.0).is_none());
    }

    #[test]
    fn higher_dose_raises_peak_linearly() {
        let a = Implant::new(100.0, 20.0, 1e15).peak_concentration_cm3();
        let b = Implant::new(100.0, 20.0, 2e15).peak_concentration_cm3();
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}

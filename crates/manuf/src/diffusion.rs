//! Dopant diffusion: Gaussian (limited-source) and complementary-error-
//! function (constant-source) profiles with junction-depth solves.

use serde::{Deserialize, Serialize};

/// Complementary error function via the Abramowitz–Stegun 7.1.26
/// rational approximation (|error| < 1.5e-7 — ample for process
/// questions).
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    1.0 - sign * erf
}

/// A diffusion step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Diffusion {
    /// Diffusivity in cm²/s at the drive temperature.
    pub diffusivity_cm2_s: f64,
    /// Drive time in seconds.
    pub time_s: f64,
}

impl Diffusion {
    /// Creates a step.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(diffusivity_cm2_s: f64, time_s: f64) -> Self {
        assert!(diffusivity_cm2_s > 0.0 && time_s > 0.0);
        Diffusion {
            diffusivity_cm2_s,
            time_s,
        }
    }

    /// Characteristic diffusion length `2√(Dt)` in cm.
    pub fn diffusion_length_cm(&self) -> f64 {
        2.0 * (self.diffusivity_cm2_s * self.time_s).sqrt()
    }

    /// Limited-source (Gaussian) profile from a dose `q` (atoms/cm²):
    /// `C(x) = q/√(πDt) · exp(−x²/4Dt)` with `x` in cm.
    pub fn gaussian_profile(&self, dose_cm2: f64, x_cm: f64) -> f64 {
        let dt = self.diffusivity_cm2_s * self.time_s;
        dose_cm2 / (std::f64::consts::PI * dt).sqrt() * (-x_cm * x_cm / (4.0 * dt)).exp()
    }

    /// Constant-source (erfc) profile from surface concentration `cs`:
    /// `C(x) = cs · erfc(x / 2√(Dt))`.
    pub fn erfc_profile(&self, surface_cm3: f64, x_cm: f64) -> f64 {
        surface_cm3 * erfc(x_cm / self.diffusion_length_cm())
    }

    /// Junction depth where a Gaussian profile crosses the background
    /// concentration: `xj = 2√(Dt · ln(Cs/Cb))` with `Cs` the surface
    /// concentration. `None` when the surface never exceeds background.
    pub fn gaussian_junction_depth_cm(&self, dose_cm2: f64, background_cm3: f64) -> Option<f64> {
        let dt = self.diffusivity_cm2_s * self.time_s;
        let surface = dose_cm2 / (std::f64::consts::PI * dt).sqrt();
        if surface <= background_cm3 {
            return None;
        }
        Some(2.0 * (dt * (surface / background_cm3).ln()).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004678).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
    }

    #[test]
    fn gaussian_peak_at_surface() {
        let d = Diffusion::new(1e-13, 3600.0);
        let dose = 1e15;
        let at0 = d.gaussian_profile(dose, 0.0);
        let deeper = d.gaussian_profile(dose, 1e-4);
        assert!(at0 > deeper);
        assert!(deeper > 0.0);
    }

    #[test]
    fn erfc_profile_monotone_decreasing() {
        let d = Diffusion::new(1e-13, 1800.0);
        let cs = 1e20;
        let mut last = f64::INFINITY;
        for i in 0..20 {
            let c = d.erfc_profile(cs, i as f64 * 1e-5);
            assert!(c <= last);
            last = c;
        }
    }

    #[test]
    fn junction_depth_on_profile() {
        let d = Diffusion::new(1e-13, 3600.0);
        let dose = 1e15;
        let bg = 1e16;
        let xj = d.gaussian_junction_depth_cm(dose, bg).unwrap();
        // profile at xj equals background
        let c = d.gaussian_profile(dose, xj);
        assert!((c / bg - 1.0).abs() < 1e-9, "C(xj) = {c}");
    }

    #[test]
    fn no_junction_when_background_too_high() {
        let d = Diffusion::new(1e-13, 3600.0);
        assert!(d.gaussian_junction_depth_cm(1e10, 1e20).is_none());
    }

    #[test]
    fn longer_drive_deepens_junction() {
        let short = Diffusion::new(1e-13, 600.0);
        let long = Diffusion::new(1e-13, 6000.0);
        let xs = short.gaussian_junction_depth_cm(1e15, 1e16).unwrap();
        let xl = long.gaussian_junction_depth_cm(1e15, 1e16).unwrap();
        assert!(xl > xs);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn erfc_bounded_and_monotone(a in -3.0f64..3.0, b in -3.0f64..3.0) {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                prop_assert!(erfc(lo) >= erfc(hi) - 1e-9);
                prop_assert!((0.0..=2.0).contains(&erfc(a)));
            }
        }
    }
}

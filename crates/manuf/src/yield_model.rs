//! Die yield models (Poisson, Murphy, negative binomial) and
//! gross-dies-per-wafer geometry.

use serde::{Deserialize, Serialize};

/// Defect-limited yield models for die area `a` (cm²) and defect density
/// `d0` (defects/cm²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum YieldModel {
    /// `Y = exp(−A·D0)`.
    Poisson,
    /// `Y = ((1 − e^{−A·D0}) / (A·D0))²`.
    Murphy,
    /// `Y = (1 + A·D0/α)^{−α}` with clustering factor α.
    NegativeBinomial {
        /// Clustering parameter (smaller = more clustered defects =
        /// higher yield at the same D0).
        alpha: f64,
    },
}

impl YieldModel {
    /// Predicted die yield in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on negative area or defect density.
    pub fn die_yield(&self, area_cm2: f64, d0_per_cm2: f64) -> f64 {
        assert!(area_cm2 >= 0.0 && d0_per_cm2 >= 0.0, "negative inputs");
        let ad = area_cm2 * d0_per_cm2;
        match *self {
            YieldModel::Poisson => (-ad).exp(),
            YieldModel::Murphy => {
                if ad == 0.0 {
                    1.0
                } else {
                    let f = (1.0 - (-ad).exp()) / ad;
                    f * f
                }
            }
            YieldModel::NegativeBinomial { alpha } => (1.0 + ad / alpha).powf(-alpha),
        }
    }
}

/// Gross dies per wafer for square-ish dies: the classic
/// `π·r²/A − π·d/√(2A)` edge-corrected estimate.
///
/// # Panics
///
/// Panics on non-positive dimensions.
pub fn gross_dies_per_wafer(wafer_diameter_mm: f64, die_area_mm2: f64) -> u64 {
    assert!(wafer_diameter_mm > 0.0 && die_area_mm2 > 0.0);
    let d = wafer_diameter_mm;
    let a = die_area_mm2;
    let estimate =
        std::f64::consts::PI * d * d / (4.0 * a) - std::f64::consts::PI * d / (2.0 * a).sqrt();
    estimate.max(0.0).floor() as u64
}

/// Good dies per wafer under a yield model.
pub fn good_dies_per_wafer(
    wafer_diameter_mm: f64,
    die_area_mm2: f64,
    model: YieldModel,
    d0_per_cm2: f64,
) -> f64 {
    let gross = gross_dies_per_wafer(wafer_diameter_mm, die_area_mm2) as f64;
    gross * model.die_yield(die_area_mm2 / 100.0, d0_per_cm2)
}

/// A simulated wafer: per-die pass/fail under a spatial defect process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaferMap {
    /// Die pass/fail flags (true = good), row-major over the grid that
    /// fits the wafer.
    pub dies: Vec<bool>,
}

impl WaferMap {
    /// Number of dies on the wafer.
    pub fn gross(&self) -> usize {
        self.dies.len()
    }

    /// Number of passing dies.
    pub fn good(&self) -> usize {
        self.dies.iter().filter(|&&d| d).count()
    }

    /// Measured yield.
    pub fn measured_yield(&self) -> f64 {
        if self.dies.is_empty() {
            return 0.0;
        }
        self.good() as f64 / self.gross() as f64
    }
}

/// Monte-Carlo wafer simulation: scatters Poisson-distributed point
/// defects over the wafer disc and kills every die containing one. The
/// measured yield converges to the Poisson model's prediction — a
/// cross-check the tests exploit.
///
/// # Panics
///
/// Panics on non-positive dimensions or negative defect density.
pub fn simulate_wafer<R: rand::Rng>(
    wafer_diameter_mm: f64,
    die_area_mm2: f64,
    d0_per_cm2: f64,
    rng: &mut R,
) -> WaferMap {
    assert!(wafer_diameter_mm > 0.0 && die_area_mm2 > 0.0, "bad dims");
    assert!(d0_per_cm2 >= 0.0, "negative defect density");
    let r = wafer_diameter_mm / 2.0;
    let die = die_area_mm2.sqrt();
    // enumerate die sites fully inside the disc
    let mut sites: Vec<(f64, f64)> = Vec::new();
    let mut y = -r;
    while y + die <= r {
        let mut x = -r;
        while x + die <= r {
            let corners = [(x, y), (x + die, y), (x, y + die), (x + die, y + die)];
            if corners
                .iter()
                .all(|&(cx, cy)| (cx * cx + cy * cy).sqrt() <= r)
            {
                sites.push((x, y));
            }
            x += die;
        }
        y += die;
    }
    let mut dies = vec![true; sites.len()];
    // Poisson defect count over the whole wafer area (sampled as a
    // binomial-ish loop with the exact expected count for simplicity:
    // draw N ~ Poisson(lambda) via Knuth for moderate lambda).
    let wafer_area_cm2 = std::f64::consts::PI * r * r / 100.0;
    let lambda = d0_per_cm2 * wafer_area_cm2;
    let defects = {
        // Knuth's algorithm; lambda here is at most a few hundred
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                break k;
            }
            k += 1;
            if k > 1_000_000 {
                break k; // guard for absurd densities
            }
        }
    };
    for _ in 0..defects {
        // rejection-sample a point on the disc
        let (px, py) = loop {
            let px = rng.gen_range(-r..r);
            let py = rng.gen_range(-r..r);
            if (px * px + py * py).sqrt() <= r {
                break (px, py);
            }
        };
        for (i, &(sx, sy)) in sites.iter().enumerate() {
            if px >= sx && px < sx + die && py >= sy && py < sy + die {
                dies[i] = false;
                break;
            }
        }
    }
    WaferMap { dies }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_reference_point() {
        // A·D0 = 1 -> e^-1
        let y = YieldModel::Poisson.die_yield(1.0, 1.0);
        assert!((y - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn murphy_above_poisson() {
        for ad in [0.5, 1.0, 2.0, 4.0] {
            let p = YieldModel::Poisson.die_yield(ad, 1.0);
            let m = YieldModel::Murphy.die_yield(ad, 1.0);
            assert!(m > p, "ad={ad}: murphy {m} vs poisson {p}");
        }
    }

    #[test]
    fn clustering_raises_yield() {
        let tight = YieldModel::NegativeBinomial { alpha: 10.0 }.die_yield(2.0, 1.0);
        let clustered = YieldModel::NegativeBinomial { alpha: 0.5 }.die_yield(2.0, 1.0);
        assert!(clustered > tight);
    }

    #[test]
    fn zero_defects_is_perfect_yield() {
        for m in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 2.0 },
        ] {
            assert!((m.die_yield(1.0, 0.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dies_per_wafer_sane() {
        // 300mm wafer, 100 mm² die: about 600 gross dies
        let g = gross_dies_per_wafer(300.0, 100.0);
        assert!((550..=680).contains(&g), "{g}");
        // bigger dies, fewer of them
        assert!(gross_dies_per_wafer(300.0, 400.0) < g / 3);
    }

    #[test]
    fn good_dies_scale_with_yield() {
        let good = good_dies_per_wafer(300.0, 100.0, YieldModel::Poisson, 0.1);
        let gross = gross_dies_per_wafer(300.0, 100.0) as f64;
        assert!(good < gross);
        assert!(good > gross * 0.8, "1 cm² at 0.1/cm² ~ 90% yield");
    }

    #[test]
    fn monte_carlo_matches_poisson_model() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (d, a, d0) = (300.0, 100.0, 0.2);
        // average several wafers to tame the noise
        let mut measured = 0.0;
        let runs = 30;
        for _ in 0..runs {
            measured += simulate_wafer(d, a, d0, &mut rng).measured_yield();
        }
        measured /= f64::from(runs);
        let predicted = YieldModel::Poisson.die_yield(a / 100.0, d0);
        assert!(
            (measured - predicted).abs() < 0.05,
            "MC {measured:.3} vs Poisson {predicted:.3}"
        );
    }

    #[test]
    fn zero_density_wafer_is_perfect() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let map = simulate_wafer(200.0, 64.0, 0.0, &mut rng);
        assert!(map.gross() > 100);
        assert_eq!(map.good(), map.gross());
        assert_eq!(map.measured_yield(), 1.0);
    }

    #[test]
    fn simulated_gross_near_formula() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let map = simulate_wafer(300.0, 100.0, 0.1, &mut rng);
        let formula = gross_dies_per_wafer(300.0, 100.0);
        let ratio = map.gross() as f64 / formula as f64;
        assert!(
            (0.7..=1.2).contains(&ratio),
            "MC {} vs formula {formula}",
            map.gross()
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn yields_bounded_and_monotone_in_d0(
                area in 0.1f64..5.0,
                d0a in 0.0f64..3.0,
                d0b in 0.0f64..3.0,
            ) {
                let (lo, hi) = if d0a < d0b { (d0a, d0b) } else { (d0b, d0a) };
                for m in [
                    YieldModel::Poisson,
                    YieldModel::Murphy,
                    YieldModel::NegativeBinomial { alpha: 2.0 },
                ] {
                    let ylo = m.die_yield(area, lo);
                    let yhi = m.die_yield(area, hi);
                    prop_assert!((0.0..=1.0).contains(&ylo));
                    prop_assert!(yhi <= ylo + 1e-12);
                }
            }
        }
    }
}

//! Procedural drawings of manufacturing visuals: layered cross-sections
//! (the etch question's figure), RET mask patterns and dopant-profile
//! curves.

use chipvqa_raster::{Annotated, Pixmap, Region, BLACK, GRAY};

use crate::etch::Layer;
use crate::litho::Ret;

const STROKE: i64 = 2;
const TEXT: i64 = 2;

/// Renders a patterned film stack in cross-section: substrate at the
/// bottom, films stacked above, a patterned resist opening on top (the
/// figure style of the paper's BOE over-etch example). Film thicknesses
/// are annotated in nm.
pub fn render_stack_cross_section(stack: &[Layer], opening_label: &str) -> Annotated {
    let mut img = Pixmap::new(460, 320);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let (x0, x1) = (50i64, 410i64);
    let bottom = 280i64;
    let total: f64 = stack.iter().map(|l| l.thickness_nm).sum::<f64>().max(1.0);
    let scale = 170.0 / total;

    // substrate block
    img.fill_rect(x0, bottom, x1 - x0, 24, GRAY);
    img.draw_text(x0 + 8, bottom + 6, "Si substrate", TEXT, BLACK);
    marks.push((
        "silicon substrate".to_string(),
        Region::new(x0 as usize, bottom as usize, (x1 - x0) as usize, 24),
    ));

    // films bottom-up (stack[last] touches substrate)
    let mut y = bottom;
    for (i, layer) in stack.iter().enumerate().rev() {
        let h = ((layer.thickness_nm * scale) as i64).max(10);
        y -= h;
        img.draw_rect(x0, y, x1 - x0, h, STROKE, BLACK);
        let label = format!("{} {}nm", layer.material, layer.thickness_nm);
        img.draw_text(x0 + 8, y + h / 2 - 6, &label, TEXT, BLACK);
        marks.push((
            format!("film {i}: {label}"),
            Region::new(x0 as usize, y as usize, (x1 - x0) as usize, h as usize),
        ));
    }
    // patterned resist with an opening in the middle
    let ry = y - 26;
    let gap0 = (x0 + x1) / 2 - 50;
    let gap1 = (x0 + x1) / 2 + 50;
    img.fill_rect(x0, ry, gap0 - x0, 22, BLACK);
    img.fill_rect(gap1, ry, x1 - gap1, 22, BLACK);
    img.draw_text(x0 + 4, ry - 18, "resist", TEXT, BLACK);
    img.draw_arrow(
        (gap0 + gap1) / 2,
        ry - 24,
        (gap0 + gap1) / 2,
        ry + 30,
        STROKE,
        BLACK,
    );
    img.draw_text(gap1 + 8, ry - 2, opening_label, TEXT, BLACK);
    marks.push((
        format!("patterned resist opening: {opening_label}"),
        Region::new(
            gap0 as usize,
            (ry - 26).max(0) as usize,
            (gap1 - gap0) as usize,
            60,
        ),
    ));
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders the visual signature of a resolution-enhancement technique
/// (the figure of the paper's sample question "what is the lithography
/// resolution enhancement technique depicted?").
pub fn render_ret_figure(ret: Ret) -> Annotated {
    let mut img = Pixmap::new(420, 320);
    let mut marks: Vec<(String, Region)> = Vec::new();
    match ret {
        Ret::Opc => {
            // an L-shaped polygon with serifs and a hammerhead
            img.draw_polyline(
                &[
                    (120, 80),
                    (260, 80),
                    (260, 120),
                    (160, 120),
                    (160, 240),
                    (120, 240),
                    (120, 80),
                ],
                STROKE,
                BLACK,
            );
            // serifs at corners
            for (x, y) in [(114, 74), (254, 74), (114, 234), (154, 234)] {
                img.draw_rect(x, y, 14, 14, STROKE, BLACK);
            }
            img.draw_rect(250, 108, 24, 24, STROKE, BLACK); // hammerhead
            marks.push((
                "mask polygon decorated with corner serifs and hammerhead".to_string(),
                Region::new(100, 60, 200, 200),
            ));
        }
        Ret::Sraf => {
            img.fill_rect(190, 60, 24, 200, BLACK); // main feature
            img.fill_rect(150, 60, 6, 200, BLACK); // scatter bars
            img.fill_rect(250, 60, 6, 200, BLACK);
            marks.push((
                "isolated line flanked by thin sub-resolution scatter bars".to_string(),
                Region::new(140, 50, 130, 220),
            ));
        }
        Ret::Psm => {
            img.draw_rect(90, 80, 110, 160, STROKE, BLACK);
            img.draw_text(110, 140, "0 deg", TEXT, BLACK);
            img.fill_rect(210, 80, 110, 160, GRAY);
            img.draw_text(230, 140, "180 deg", TEXT, BLACK);
            marks.push((
                "alternating 0/180-degree phase regions".to_string(),
                Region::new(80, 70, 260, 180),
            ));
        }
        Ret::Oai => {
            // annular pupil: two concentric circles, poles shaded
            img.draw_circle(210, 160, 100, STROKE, BLACK);
            img.draw_circle(210, 160, 55, STROKE, BLACK);
            for (dx, dy) in [(-78, 0), (78, 0), (0, -78), (0, 78)] {
                img.fill_circle(210 + dx, 160 + dy, 16, BLACK);
            }
            marks.push((
                "quadrupole off-axis illumination pupil".to_string(),
                Region::new(100, 50, 220, 220),
            ));
        }
        Ret::MultiPatterning => {
            for i in 0..6i64 {
                let x = 80 + i * 45;
                if i % 2 == 0 {
                    img.fill_rect(x, 70, 16, 180, BLACK);
                } else {
                    img.draw_rect(x, 70, 16, 180, STROKE, BLACK);
                    img.draw_dashed_line(x + 8, 70, x + 8, 250, 1, GRAY, 4, 4);
                }
            }
            marks.push((
                "dense lines decomposed into two alternating exposures".to_string(),
                Region::new(70, 60, 300, 200),
            ));
        }
    }
    img.draw_text(20, 290, "mask pattern", TEXT, GRAY);
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders a dopant concentration-vs-depth curve (log-y sketch) with the
/// junction depth marked.
pub fn render_profile_curve(samples: &[(f64, f64)], junction_nm: Option<f64>) -> Annotated {
    let mut img = Pixmap::new(440, 300);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let (ox, oy) = (60i64, 20i64);
    let (pw, ph) = (340i64, 220i64);
    img.draw_line(ox, oy, ox, oy + ph, STROKE, BLACK);
    img.draw_line(ox, oy + ph, ox + pw, oy + ph, STROKE, BLACK);
    img.draw_text(4, oy, "log C", TEXT, BLACK);
    img.draw_text(ox + pw - 60, oy + ph + 10, "depth nm", TEXT, BLACK);
    if samples.len() >= 2 {
        let xmax = samples
            .iter()
            .map(|&(x, _)| x)
            .fold(0.0, f64::max)
            .max(1e-9);
        let (cmin, cmax) = samples
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(_, c)| {
                (lo.min(c.max(1.0)), hi.max(c))
            });
        let ly = |c: f64| -> i64 {
            let t = (cmax.ln() - c.max(1.0).ln()) / (cmax.ln() - cmin.ln()).max(1e-9);
            oy + (t.clamp(0.0, 1.0) * ph as f64) as i64
        };
        let pts: Vec<(i64, i64)> = samples
            .iter()
            .map(|&(x, c)| (ox + (x / xmax * pw as f64) as i64, ly(c)))
            .collect();
        img.draw_polyline(&pts, STROKE, BLACK);
        if let Some(xj) = junction_nm {
            let x = ox + (xj / xmax * pw as f64) as i64;
            img.draw_dashed_line(x, oy, x, oy + ph, 1, GRAY, 4, 4);
            img.draw_text(x + 4, oy + ph - 20, "xj", TEXT, BLACK);
            marks.push((
                format!("junction depth marker near {xj:.0} nm"),
                Region::new((x - 6).max(0) as usize, oy as usize, 40, ph as usize),
            ));
        }
        marks.push((
            "dopant profile curve".to_string(),
            Region::new(ox as usize, oy as usize, pw as usize, ph as usize),
        ));
    }
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etch::Material;

    #[test]
    fn cross_section_marks_every_film() {
        let stack = [
            Layer {
                material: Material::SiO2,
                thickness_nm: 500.0,
            },
            Layer {
                material: Material::Si3N4,
                thickness_nm: 100.0,
            },
        ];
        let vis = render_stack_cross_section(&stack, "etch window");
        assert!(vis.marks.iter().any(|m| m.label.contains("SiO2 500nm")));
        assert!(vis.marks.iter().any(|m| m.label.contains("Si3N4 100nm")));
        assert!(vis.marks.iter().any(|m| m.label.contains("etch window")));
        assert!(vis.image.ink_pixels() > 400);
    }

    #[test]
    fn each_ret_has_distinct_signature_mark() {
        for ret in [
            Ret::Opc,
            Ret::Psm,
            Ret::Oai,
            Ret::Sraf,
            Ret::MultiPatterning,
        ] {
            let vis = render_ret_figure(ret);
            assert_eq!(vis.marks.len(), 1, "{ret}");
            assert!(vis.image.ink_pixels() > 150, "{ret}");
        }
    }

    #[test]
    fn profile_curve_marks_junction() {
        let d = crate::diffusion::Diffusion::new(1e-13, 3600.0);
        let samples: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let x_nm = i as f64 * 20.0;
                (x_nm, d.gaussian_profile(1e15, x_nm * 1e-7))
            })
            .collect();
        let vis = render_profile_curve(&samples, Some(400.0));
        assert!(vis.marks.iter().any(|m| m.label.contains("junction")));
    }

    #[test]
    fn empty_profile_is_blank_axes() {
        let vis = render_profile_curve(&[], None);
        assert!(vis.marks.is_empty());
        assert!(vis.image.ink_pixels() > 50, "axes still drawn");
    }
}

//! Optical lithography: Rayleigh resolution and depth of focus, plus the
//! resolution-enhancement-technique (RET) taxonomy behind the paper's
//! sample Manufacturing question ("what is the lithography resolution
//! enhancement technique depicted in the figure?").

use std::fmt;

use serde::{Deserialize, Serialize};

/// An exposure tool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lithography {
    /// Exposure wavelength in nm (193 for ArF, 13.5 for EUV…).
    pub wavelength_nm: f64,
    /// Numerical aperture of the projection optics.
    pub na: f64,
    /// Process factor k₁ (≈0.25 theoretical limit for single exposure).
    pub k1: f64,
    /// Process factor k₂ for depth of focus.
    pub k2: f64,
}

impl Lithography {
    /// Creates a tool configuration.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive and `na < 2`.
    pub fn new(wavelength_nm: f64, na: f64, k1: f64, k2: f64) -> Self {
        assert!(wavelength_nm > 0.0 && na > 0.0 && k1 > 0.0 && k2 > 0.0);
        assert!(na < 2.0, "NA beyond immersion limits");
        Lithography {
            wavelength_nm,
            na,
            k1,
            k2,
        }
    }

    /// The ArF immersion workhorse: 193 nm, NA 1.35.
    pub fn arf_immersion() -> Self {
        Lithography::new(193.0, 1.35, 0.30, 0.50)
    }

    /// An EUV configuration: 13.5 nm, NA 0.33.
    pub fn euv() -> Self {
        Lithography::new(13.5, 0.33, 0.40, 0.50)
    }

    /// Rayleigh minimum half-pitch: `R = k1 λ / NA` (nm).
    pub fn resolution_nm(&self) -> f64 {
        self.k1 * self.wavelength_nm / self.na
    }

    /// Rayleigh depth of focus: `DOF = k2 λ / NA²` (nm).
    pub fn depth_of_focus_nm(&self) -> f64 {
        self.k2 * self.wavelength_nm / (self.na * self.na)
    }

    /// Whether a feature half-pitch is printable in a single exposure.
    pub fn printable(&self, half_pitch_nm: f64) -> bool {
        half_pitch_nm >= self.resolution_nm()
    }
}

/// Resolution enhancement techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ret {
    /// Optical proximity correction: mask-shape pre-distortion (serifs,
    /// hammerheads, line biasing).
    Opc,
    /// Phase-shift mask: alternating 180° phase regions sharpen edges.
    Psm,
    /// Off-axis illumination: oblique source poles favour dense pitches.
    Oai,
    /// Sub-resolution assist features: scatter bars around isolated
    /// lines.
    Sraf,
    /// Multiple patterning: decomposing one layer into several exposures.
    MultiPatterning,
}

impl Ret {
    /// One-line description of the visual signature (used as a question
    /// gold).
    pub fn signature(&self) -> &'static str {
        match self {
            Ret::Opc => "mask polygons decorated with serifs and hammerheads",
            Ret::Psm => "alternating-phase mask regions with 180-degree shifters",
            Ret::Oai => "annular or quadrupole source pupil instead of a disk",
            Ret::Sraf => "thin scatter bars beside isolated main features",
            Ret::MultiPatterning => "one layer decomposed into multiple colored exposures",
        }
    }

    /// Canonical short name.
    pub fn name(&self) -> &'static str {
        match self {
            Ret::Opc => "OPC",
            Ret::Psm => "PSM",
            Ret::Oai => "OAI",
            Ret::Sraf => "SRAF",
            Ret::MultiPatterning => "multi-patterning",
        }
    }

    /// Effective k₁ improvement factor (rough literature midpoints — the
    /// generated questions only use the ordering, not the exact values).
    pub fn k1_factor(&self) -> f64 {
        match self {
            Ret::Opc => 0.9,
            Ret::Sraf => 0.85,
            Ret::Oai => 0.8,
            Ret::Psm => 0.7,
            Ret::MultiPatterning => 0.5,
        }
    }
}

impl fmt::Display for Ret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Mask-error enhancement factor: the wafer CD change per mask CD change
/// at a given pitch, modelled as diverging near the resolution limit.
pub fn meef(tool: &Lithography, half_pitch_nm: f64) -> f64 {
    let r = tool.resolution_nm();
    if half_pitch_nm <= r {
        return f64::INFINITY;
    }
    1.0 + (r / (half_pitch_nm - r)).min(20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arf_resolution_ballpark() {
        let t = Lithography::arf_immersion();
        // 0.30 * 193 / 1.35 ≈ 42.9 nm half-pitch
        assert!((t.resolution_nm() - 42.9).abs() < 0.1);
        assert!(t.printable(45.0));
        assert!(!t.printable(30.0));
    }

    #[test]
    fn euv_resolves_finer_pitch() {
        assert!(Lithography::euv().resolution_nm() < Lithography::arf_immersion().resolution_nm());
    }

    #[test]
    fn dof_shrinks_with_na_squared() {
        let lo = Lithography::new(193.0, 0.6, 0.4, 0.5);
        let hi = Lithography::new(193.0, 1.2, 0.4, 0.5);
        assert!((lo.depth_of_focus_nm() / hi.depth_of_focus_nm() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ret_k1_ordering() {
        // multi-patterning is the strongest k1 lever, OPC the mildest
        assert!(Ret::MultiPatterning.k1_factor() < Ret::Psm.k1_factor());
        assert!(Ret::Psm.k1_factor() < Ret::Opc.k1_factor());
        for ret in [
            Ret::Opc,
            Ret::Psm,
            Ret::Oai,
            Ret::Sraf,
            Ret::MultiPatterning,
        ] {
            assert!(!ret.signature().is_empty());
            assert!(!ret.name().is_empty());
        }
    }

    #[test]
    fn meef_diverges_near_limit() {
        let t = Lithography::arf_immersion();
        let far = meef(&t, 100.0);
        let near = meef(&t, 45.0);
        assert!(near > far);
        assert!(meef(&t, 40.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "NA")]
    fn absurd_na_rejected() {
        let _ = Lithography::new(193.0, 2.5, 0.3, 0.5);
    }
}

//! Etch-process models: wet (isotropic) and dry (RIE, anisotropic with
//! selectivity), layered-stack etching and over-etch timing — the physics
//! behind the paper's Buffered-HF worked example.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Materials in a simple Si/SiO₂/photoresist process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Crystalline silicon.
    Si,
    /// Silicon dioxide.
    SiO2,
    /// Silicon nitride.
    Si3N4,
    /// Photoresist.
    Resist,
    /// Aluminium metallisation.
    Al,
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Material::Si => "Si",
            Material::SiO2 => "SiO2",
            Material::Si3N4 => "Si3N4",
            Material::Resist => "resist",
            Material::Al => "Al",
        })
    }
}

/// Directionality of an etch chemistry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EtchKind {
    /// Wet/isotropic: etches laterally as fast as vertically (undercut).
    Isotropic,
    /// Dry/RIE: vertical with an anisotropy factor in `[0, 1]`
    /// (1 = perfectly vertical).
    Anisotropic {
        /// Fraction of lateral etch suppressed.
        anisotropy: f64,
    },
}

/// An etch chemistry: target material, vertical rate and selectivity to
/// other materials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtchProcess {
    /// Chemistry name ("5:1 BOE", "CHF3 RIE"…).
    pub name: String,
    /// Directionality.
    pub kind: EtchKind,
    /// Material it is tuned to etch.
    pub target: Material,
    /// Vertical etch rate of the target, nm/min.
    pub rate_nm_min: f64,
    /// `(material, selectivity)` pairs: target rate / material rate.
    pub selectivity: Vec<(Material, f64)>,
}

impl EtchProcess {
    /// A wet (isotropic) chemistry.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive.
    pub fn wet(name: impl Into<String>, target: Material, rate_nm_min: f64) -> Self {
        assert!(rate_nm_min > 0.0, "etch rate must be positive");
        EtchProcess {
            name: name.into(),
            kind: EtchKind::Isotropic,
            target,
            rate_nm_min,
            selectivity: Vec::new(),
        }
    }

    /// A dry (RIE) chemistry with the given anisotropy.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and anisotropy in `[0, 1]`.
    pub fn rie(
        name: impl Into<String>,
        target: Material,
        rate_nm_min: f64,
        anisotropy: f64,
    ) -> Self {
        assert!(rate_nm_min > 0.0, "etch rate must be positive");
        assert!((0.0..=1.0).contains(&anisotropy), "anisotropy in [0,1]");
        EtchProcess {
            name: name.into(),
            kind: EtchKind::Anisotropic { anisotropy },
            target,
            rate_nm_min,
            selectivity: Vec::new(),
        }
    }

    /// Declares a selectivity (target-rate : material-rate ratio).
    ///
    /// # Panics
    ///
    /// Panics unless the ratio is positive.
    pub fn with_selectivity(mut self, material: Material, ratio: f64) -> Self {
        assert!(ratio > 0.0, "selectivity must be positive");
        self.selectivity.push((material, ratio));
        self
    }

    /// Etch rate of `material` under this chemistry (0 if unlisted and
    /// not the target: perfectly selective by default).
    pub fn rate_of(&self, material: Material) -> f64 {
        if material == self.target {
            return self.rate_nm_min;
        }
        self.selectivity
            .iter()
            .find(|&&(m, _)| m == material)
            .map_or(0.0, |&(_, ratio)| self.rate_nm_min / ratio)
    }

    /// Time (minutes) to just clear `thickness_nm` of the target.
    pub fn time_to_clear(&self, thickness_nm: f64) -> f64 {
        thickness_nm / self.rate_nm_min
    }

    /// Time (minutes) to clear `thickness_nm` with a fractional
    /// over-etch: the paper's 10% over-etch example is
    /// `time_for_overetch(d, 0.10) = 1.1 · d / rate`.
    pub fn time_for_overetch(&self, thickness_nm: f64, overetch: f64) -> f64 {
        self.time_to_clear(thickness_nm) * (1.0 + overetch)
    }

    /// Lateral undercut (nm) accrued while etching for `minutes`.
    pub fn undercut_nm(&self, minutes: f64) -> f64 {
        let lateral_fraction = match self.kind {
            EtchKind::Isotropic => 1.0,
            EtchKind::Anisotropic { anisotropy } => 1.0 - anisotropy,
        };
        self.rate_nm_min * minutes * lateral_fraction
    }

    /// Depth removed from `material` after etching for `minutes`.
    pub fn depth_removed(&self, material: Material, minutes: f64) -> f64 {
        self.rate_of(material) * minutes
    }
}

/// A film in a layered stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Film material.
    pub material: Material,
    /// Film thickness in nm.
    pub thickness_nm: f64,
}

/// Etches a stack top-down for `minutes`, returning the remaining stack.
/// Each film is consumed at the chemistry's rate for that material; time
/// left over flows into the next film.
pub fn etch_stack(stack: &[Layer], process: &EtchProcess, minutes: f64) -> Vec<Layer> {
    let mut remaining = Vec::new();
    let mut time_left = minutes;
    let mut idx = 0;
    while idx < stack.len() {
        let layer = stack[idx];
        let rate = process.rate_of(layer.material);
        if rate <= 0.0 || time_left <= 0.0 {
            remaining.extend_from_slice(&stack[idx..]);
            break;
        }
        let time_needed = layer.thickness_nm / rate;
        if time_needed > time_left {
            remaining.push(Layer {
                material: layer.material,
                thickness_nm: layer.thickness_nm - rate * time_left,
            });
            remaining.extend_from_slice(&stack[idx + 1..]);
            break;
        }
        time_left -= time_needed;
        idx += 1;
    }
    remaining
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boe() -> EtchProcess {
        EtchProcess::wet("5:1 BOE", Material::SiO2, 100.0)
    }

    fn rie() -> EtchProcess {
        EtchProcess::rie("CHF3 RIE", Material::SiO2, 200.0, 0.95)
            .with_selectivity(Material::Si, 15.0)
    }

    #[test]
    fn paper_boe_overetch_example() {
        // 500 nm SiO2, 100 nm/min, 10% over-etch -> 5.5 minutes.
        assert!((boe().time_for_overetch(500.0, 0.10) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn selectivity_divides_rate() {
        let p = rie();
        assert!((p.rate_of(Material::SiO2) - 200.0).abs() < 1e-12);
        assert!((p.rate_of(Material::Si) - 200.0 / 15.0).abs() < 1e-12);
        assert_eq!(p.rate_of(Material::Al), 0.0, "unlisted = not etched");
    }

    #[test]
    fn isotropic_undercut_equals_depth() {
        let p = boe();
        assert!((p.undercut_nm(2.0) - 200.0).abs() < 1e-12);
        // RIE at 0.95 anisotropy barely undercuts
        assert!((rie().undercut_nm(2.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn stack_etch_consumes_films_in_order() {
        let stack = [
            Layer {
                material: Material::SiO2,
                thickness_nm: 200.0,
            },
            Layer {
                material: Material::Si,
                thickness_nm: 1000.0,
            },
        ];
        // RIE for 1.5 min: 200 nm SiO2 gone in 1 min, then 0.5 min into Si
        // at 200/15 nm/min ≈ 6.67 nm.
        let rem = etch_stack(&stack, &rie(), 1.5);
        assert_eq!(rem.len(), 1);
        assert_eq!(rem[0].material, Material::Si);
        assert!((rem[0].thickness_nm - (1000.0 - 0.5 * 200.0 / 15.0)).abs() < 1e-9);
    }

    #[test]
    fn stack_etch_stops_at_nonetched_film() {
        let stack = [
            Layer {
                material: Material::SiO2,
                thickness_nm: 100.0,
            },
            Layer {
                material: Material::Al,
                thickness_nm: 50.0,
            },
        ];
        let rem = etch_stack(&stack, &boe(), 100.0);
        assert_eq!(rem.len(), 1);
        assert_eq!(rem[0].material, Material::Al);
        assert!(
            (rem[0].thickness_nm - 50.0).abs() < 1e-12,
            "BOE stops on Al"
        );
    }

    #[test]
    fn partial_film_left_behind() {
        let stack = [Layer {
            material: Material::SiO2,
            thickness_nm: 300.0,
        }];
        let rem = etch_stack(&stack, &boe(), 2.0);
        assert!((rem[0].thickness_nm - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = EtchProcess::wet("bad", Material::Si, 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn etched_thickness_never_negative(
                thickness in 1.0f64..2000.0,
                minutes in 0.0f64..60.0,
            ) {
                let stack = [Layer { material: Material::SiO2, thickness_nm: thickness }];
                let rem = etch_stack(&stack, &boe(), minutes);
                for l in rem {
                    prop_assert!(l.thickness_nm >= 0.0);
                    prop_assert!(l.thickness_nm <= thickness);
                }
            }

            #[test]
            fn overetch_time_monotone(over in 0.0f64..1.0) {
                let base = boe().time_to_clear(500.0);
                prop_assert!(boe().time_for_overetch(500.0, over) >= base);
            }
        }
    }
}

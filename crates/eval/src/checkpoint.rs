//! Checkpoint/resume for long grid evaluations.
//!
//! A [`Checkpoint`] records the identity of a grid run — model
//! fingerprints, a benchmark content hash, the evaluation options — plus
//! every completed shard's outcomes. A killed run can be resumed from
//! the serialized checkpoint: already-completed shards are skipped, the
//! remainder is executed by the [`ParallelExecutor`], and the merged
//! reports are identical to an uninterrupted run (merging is positional,
//! so it does not matter in which order, or in which process, shards
//! completed).
//!
//! Identity is checked on resume: a checkpoint taken with different
//! models, a different benchmark revision, or different options is
//! rejected with a [`CheckpointError`] instead of silently blending
//! incompatible partial results.
//!
//! Supervised (chaos) runs additionally record **quarantined shards** —
//! shards whose worker caught a panic. Their (degraded) outcomes still
//! enter the merged report, but the quarantine list survives in the
//! checkpoint so a driver can call
//! [`Checkpoint::requeue_quarantined`] after fixing the environment and
//! resume: only the poisoned shards re-run.
//!
//! The multi-process analogue lives in [`crate::fleet`]: a fleet
//! worker that panics inside a shard commits a *quarantine* record to
//! the lease directory, and any later worker heals it — re-claims the
//! shard and re-runs it unsupervised — with the same semantics as a
//! `requeue_quarantined` + resume cycle (`tests/fleet_chaos.rs`
//! proves the two paths produce identical reports).

use std::fmt;

use chipvqa_core::spec::DatasetSpec;
use chipvqa_core::ChipVqa;
use chipvqa_models::VlmPipeline;
use chipvqa_telemetry::{kv, Telemetry};
use serde::{Deserialize, Serialize};

use crate::cache::prompt_hash;
use crate::executor::internal::{merge_from_pairs, run_selected, shard_keys, ShardKey};
use crate::executor::ParallelExecutor;
use crate::harness::{EvalOptions, EvalReport, QuestionOutcome};
use crate::judge::Judge;
use crate::supervisor::EvalError;

/// Outcomes of one completed shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// Which shard.
    pub key: ShardKey,
    /// Its question outcomes, in question order.
    pub outcomes: Vec<QuestionOutcome>,
}

/// Resumable state of one grid evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Fingerprints of the grid's models, in grid order.
    pub model_fingerprints: Vec<u64>,
    /// Content hash of the benchmark (ids + prompts).
    pub bench_hash: u64,
    /// The evaluation options of the run.
    pub options: EvalOptions,
    /// Completed shards, in completion order.
    pub completed: Vec<ShardResult>,
    /// Shards whose worker caught a panic (their outcomes are recorded,
    /// degraded). Candidates for [`Checkpoint::requeue_quarantined`].
    pub quarantined: Vec<ShardKey>,
    /// Fingerprint of the [`DatasetSpec`] the bench was built from, when
    /// the run evaluates a scaled collection (see
    /// [`Checkpoint::for_spec`]). `None` for canonical collections — and
    /// for checkpoints serialized before the scale engine existed.
    #[serde(default)]
    pub spec_fingerprint: Option<u64>,
    /// Eviction generation of the persistent
    /// [`AnswerStore`](crate::store::AnswerStore) this run warms from
    /// (see [`Checkpoint::bind_store_generation`]). A checkpoint whose
    /// stamped generation predates an eviction belongs to a cache epoch
    /// whose answers may be gone — [`Checkpoint::validate_store`]
    /// rejects the pair instead of silently re-inferring part of a
    /// "resumed" run. `None` when the run had no store (or predates the
    /// store tier).
    #[serde(default)]
    pub store_generation: Option<u64>,
}

/// Why a checkpoint cannot drive a resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint's models differ from the grid being resumed.
    ModelMismatch,
    /// The benchmark content changed since the checkpoint was taken.
    BenchMismatch,
    /// The evaluation options changed.
    OptionsMismatch,
    /// A recorded shard is not part of the canonical plan (corruption).
    UnknownShard(ShardKey),
    /// The checkpoint was taken against a different [`DatasetSpec`] (or
    /// against none).
    SpecMismatch,
    /// The checkpoint's cache epoch predates the store's current
    /// eviction generation: answers it assumes cached may have been
    /// evicted since.
    StoreGenerationMismatch {
        /// The generation stamped on the checkpoint (`None`: the
        /// checkpoint was never bound to a store).
        stamped: Option<u64>,
        /// The store's current generation.
        current: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::ModelMismatch => {
                write!(f, "checkpoint was taken with a different model grid")
            }
            CheckpointError::BenchMismatch => {
                write!(
                    f,
                    "checkpoint was taken against a different benchmark revision"
                )
            }
            CheckpointError::OptionsMismatch => {
                write!(f, "checkpoint was taken with different evaluation options")
            }
            CheckpointError::UnknownShard(k) => write!(
                f,
                "checkpoint contains a shard outside the plan: model {} questions {}..{}",
                k.model_idx, k.q_start, k.q_end
            ),
            CheckpointError::SpecMismatch => {
                write!(f, "checkpoint was taken against a different dataset spec")
            }
            CheckpointError::StoreGenerationMismatch { stamped, current } => match stamped {
                Some(stamped) => write!(
                    f,
                    "checkpoint cache epoch (store generation {stamped}) predates the \
                     store's current generation {current}: cached answers it assumes \
                     present may have been evicted"
                ),
                None => write!(
                    f,
                    "checkpoint is not bound to an answer store but the resume uses one \
                     at generation {current}"
                ),
            },
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Content hash of a benchmark: question count, ids and full prompts.
pub fn bench_hash(bench: &ChipVqa) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&(bench.len() as u64).to_le_bytes());
    for q in bench.iter() {
        eat(q.id.as_bytes());
        eat(&prompt_hash(q).to_le_bytes());
    }
    h
}

impl Checkpoint {
    /// A fresh checkpoint (no completed shards) for a grid run.
    pub fn new(pipes: &[VlmPipeline], bench: &ChipVqa, options: EvalOptions) -> Self {
        Checkpoint {
            model_fingerprints: pipes.iter().map(VlmPipeline::fingerprint).collect(),
            bench_hash: bench_hash(bench),
            options,
            completed: Vec::new(),
            quarantined: Vec::new(),
            spec_fingerprint: None,
            store_generation: None,
        }
    }

    /// A fresh checkpoint for a grid run over a scaled collection,
    /// binding the checkpoint to the [`DatasetSpec`]'s fingerprint as
    /// well as the bench content. `bench` should be `spec.build()` (or
    /// an equivalent materialization).
    pub fn for_spec(
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        spec: &DatasetSpec,
    ) -> Self {
        Checkpoint {
            spec_fingerprint: Some(spec.fingerprint()),
            ..Checkpoint::new(pipes, bench, options)
        }
    }

    /// Stamps the current eviction generation of `store` onto the
    /// checkpoint, binding it to the store's cache epoch. Call after
    /// taking (or updating) a checkpoint during a store-backed run; a
    /// later [`validate_store`](Checkpoint::validate_store) then
    /// detects eviction in between.
    pub fn bind_store_generation(&mut self, store: &crate::store::AnswerStore) {
        self.store_generation = Some(store.generation());
    }

    /// Whether this checkpoint's cache epoch is still current for
    /// `store`. Fails with
    /// [`StoreGenerationMismatch`](CheckpointError::StoreGenerationMismatch)
    /// when the store has evicted since the checkpoint was stamped (or
    /// the checkpoint was never stamped at all).
    pub fn validate_store(&self, store: &crate::store::AnswerStore) -> Result<(), CheckpointError> {
        let current = store.generation();
        if self.store_generation != Some(current) {
            return Err(CheckpointError::StoreGenerationMismatch {
                stamped: self.store_generation,
                current,
            });
        }
        Ok(())
    }

    /// [`validate_for_spec`](Checkpoint::validate_for_spec) plus
    /// [`validate_store`](Checkpoint::validate_store) — the full check
    /// for resuming a spec-bound, store-backed run.
    pub fn validate_for_spec_with_store(
        &self,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        spec: &DatasetSpec,
        store: &crate::store::AnswerStore,
    ) -> Result<(), CheckpointError> {
        self.validate_store(store)?;
        self.validate_for_spec(pipes, bench, options, spec)
    }

    /// [`validate`](Checkpoint::validate), additionally requiring the
    /// checkpoint to be bound to exactly `spec`.
    pub fn validate_for_spec(
        &self,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        spec: &DatasetSpec,
    ) -> Result<(), CheckpointError> {
        if self.spec_fingerprint != Some(spec.fingerprint()) {
            return Err(CheckpointError::SpecMismatch);
        }
        self.validate(pipes, bench, options)
    }

    /// Whether this checkpoint belongs to exactly this run.
    pub fn validate(
        &self,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
    ) -> Result<(), CheckpointError> {
        let fingerprints: Vec<u64> = pipes.iter().map(VlmPipeline::fingerprint).collect();
        if self.model_fingerprints != fingerprints {
            return Err(CheckpointError::ModelMismatch);
        }
        if self.bench_hash != bench_hash(bench) {
            return Err(CheckpointError::BenchMismatch);
        }
        if self.options != options {
            return Err(CheckpointError::OptionsMismatch);
        }
        let plan = shard_keys(pipes.len(), bench.len());
        for done in &self.completed {
            if !plan.contains(&done.key) {
                return Err(CheckpointError::UnknownShard(done.key));
            }
        }
        for key in &self.quarantined {
            if !plan.contains(key) {
                return Err(CheckpointError::UnknownShard(*key));
            }
        }
        Ok(())
    }

    /// Drops every quarantined shard's recorded outcomes so the next
    /// resume re-executes them (after the driver fixed whatever crashed
    /// the workers). Returns how many shards were requeued.
    pub fn requeue_quarantined(&mut self) -> usize {
        self.requeue_quarantined_with(&Telemetry::disabled())
    }

    /// [`requeue_quarantined`](Checkpoint::requeue_quarantined),
    /// additionally emitting a `checkpoint.requeue` event carrying the
    /// requeued-shard count and bumping the `checkpoint.requeued`
    /// counter.
    pub fn requeue_quarantined_with(&mut self, tele: &Telemetry) -> usize {
        let quarantined = std::mem::take(&mut self.quarantined);
        let before = self.completed.len();
        self.completed.retain(|d| !quarantined.contains(&d.key));
        let requeued = before - self.completed.len();
        if tele.enabled() {
            tele.counter("checkpoint.requeued", requeued as u64);
            tele.event("checkpoint.requeue", vec![kv("shards", requeued)]);
        }
        requeued
    }

    /// Shards currently quarantined.
    pub fn quarantined_shards(&self) -> usize {
        self.quarantined.len()
    }

    /// Number of completed shards.
    pub fn completed_shards(&self) -> usize {
        self.completed.len()
    }

    /// Shards a resume still has to execute — what a driver (the
    /// resident service's progress reporting, a fleet coordinator)
    /// shows as remaining work.
    pub fn pending_shards(&self, bench: &ChipVqa) -> usize {
        self.total_shards(bench)
            .saturating_sub(self.completed.len())
    }

    /// Total shards a full run of this grid needs.
    pub fn total_shards(&self, bench: &ChipVqa) -> usize {
        shard_keys(self.model_fingerprints.len(), bench.len()).len()
    }

    /// Serialises to JSON (what a driver would write to disk).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores from JSON.
    pub fn from_json(json: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl ParallelExecutor {
    /// Runs (part of) a grid evaluation, recording progress in
    /// `checkpoint`.
    ///
    /// At most `max_shards` *new* shards are executed when the budget is
    /// given — the hook that lets a driver bound work per invocation (or
    /// a test kill a run mid-flight). Returns `Ok(Some(reports))` once
    /// every shard of the grid is in the checkpoint, `Ok(None)` when work
    /// remains, and an error when the checkpoint does not match the run.
    pub fn evaluate_grid_resumable(
        &self,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        judge: &dyn Judge,
        checkpoint: &mut Checkpoint,
        max_shards: Option<usize>,
    ) -> Result<Option<Vec<EvalReport>>, CheckpointError> {
        checkpoint.validate(pipes, bench, options)?;

        let plan = shard_keys(pipes.len(), bench.len());
        let pending: Vec<ShardKey> = plan
            .iter()
            .filter(|k| !checkpoint.completed.iter().any(|d| d.key == **k))
            .copied()
            .collect();
        let budget = max_shards.unwrap_or(pending.len()).min(pending.len());
        let batch = &pending[..budget];

        if !batch.is_empty() {
            let results = run_selected(self, pipes, bench, options, judge, batch);
            for (key, outcomes) in batch.iter().zip(results) {
                // a caught worker panic quarantines the shard: results are
                // recorded (degraded) but flagged for retry-on-resume
                if outcomes
                    .iter()
                    .any(|o| o.error == Some(EvalError::WorkerPanic))
                    && !checkpoint.quarantined.contains(key)
                {
                    checkpoint.quarantined.push(*key);
                    let tele = self.telemetry();
                    if tele.enabled() {
                        tele.counter("checkpoint.quarantined", 1);
                        tele.event(
                            "checkpoint.quarantine",
                            vec![
                                kv("model_idx", key.model_idx),
                                kv("q_start", key.q_start),
                                kv("q_end", key.q_end),
                            ],
                        );
                    }
                }
                checkpoint.completed.push(ShardResult {
                    key: *key,
                    outcomes,
                });
            }
        }

        if checkpoint.completed.len() == plan.len() {
            let pairs: Vec<(ShardKey, Vec<QuestionOutcome>)> = checkpoint
                .completed
                .iter()
                .map(|d| (d.key, d.outcomes.clone()))
                .collect();
            Ok(Some(self.finalize(merge_from_pairs(pipes, bench, &pairs))))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::evaluate;
    use crate::judge::RuleJudge;
    use chipvqa_models::ModelZoo;

    fn pipes() -> Vec<VlmPipeline> {
        [ModelZoo::gpt4o(), ModelZoo::llava_7b()]
            .into_iter()
            .map(VlmPipeline::new)
            .collect()
    }

    #[test]
    fn resume_after_kill_matches_uninterrupted() {
        let bench = ChipVqa::standard();
        let pipes = pipes();
        let exec = ParallelExecutor::new(4);
        let options = EvalOptions::default();

        // uninterrupted reference
        let full = exec
            .evaluate_grid_resumable(
                &pipes,
                &bench,
                options,
                &RuleJudge::new(),
                &mut Checkpoint::new(&pipes, &bench, options),
                None,
            )
            .expect("valid")
            .expect("complete");

        // "killed" run: 3 shards, then serialize, drop, restore, finish
        let mut ckpt = Checkpoint::new(&pipes, &bench, options);
        let first = exec
            .evaluate_grid_resumable(
                &pipes,
                &bench,
                options,
                &RuleJudge::new(),
                &mut ckpt,
                Some(3),
            )
            .expect("valid");
        assert!(first.is_none(), "run is incomplete after 3 shards");
        assert_eq!(ckpt.completed_shards(), 3);
        assert_eq!(ckpt.pending_shards(&bench), ckpt.total_shards(&bench) - 3);

        let json = ckpt.to_json().expect("serializes");
        let mut restored = Checkpoint::from_json(&json).expect("parses");
        assert_eq!(restored, ckpt);

        let resumed = exec
            .evaluate_grid_resumable(
                &pipes,
                &bench,
                options,
                &RuleJudge::new(),
                &mut restored,
                None,
            )
            .expect("valid")
            .expect("complete after resume");
        assert_eq!(resumed, full, "resumed run is bit-identical");

        // and both match plain sequential evaluation
        for (pipe, report) in pipes.iter().zip(&resumed) {
            assert_eq!(&evaluate(pipe, &bench, options), report);
        }
    }

    #[test]
    fn zero_budget_does_no_work() {
        let bench = ChipVqa::standard();
        let pipes = pipes();
        let exec = ParallelExecutor::new(2);
        let mut ckpt = Checkpoint::new(&pipes, &bench, EvalOptions::default());
        let out = exec
            .evaluate_grid_resumable(
                &pipes,
                &bench,
                EvalOptions::default(),
                &RuleJudge::new(),
                &mut ckpt,
                Some(0),
            )
            .expect("valid");
        assert!(out.is_none());
        assert_eq!(ckpt.completed_shards(), 0);
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let bench = ChipVqa::standard();
        let pipes = pipes();
        let exec = ParallelExecutor::new(2);
        let options = EvalOptions::default();
        let ckpt = Checkpoint::new(&pipes, &bench, options);

        // different models
        let other: Vec<VlmPipeline> = [ModelZoo::fuyu_8b(), ModelZoo::llava_7b()]
            .into_iter()
            .map(VlmPipeline::new)
            .collect();
        assert_eq!(
            ckpt.validate(&other, &bench, options),
            Err(CheckpointError::ModelMismatch)
        );

        // different benchmark content
        let other_bench = ChipVqa::with_seed(bench.seed() + 1);
        assert_eq!(
            ckpt.validate(&pipes, &other_bench, options),
            Err(CheckpointError::BenchMismatch)
        );

        // different options
        let other_options = EvalOptions {
            attempts: 3,
            ..options
        };
        assert_eq!(
            ckpt.validate(&pipes, &bench, other_options),
            Err(CheckpointError::OptionsMismatch)
        );

        // and the executor surfaces the error
        let mut bad = Checkpoint::new(&other, &bench, options);
        let err = exec
            .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut bad, None)
            .unwrap_err();
        assert_eq!(err, CheckpointError::ModelMismatch);
    }

    #[test]
    fn spec_bound_checkpoints_reject_foreign_specs() {
        use chipvqa_core::spec::DatasetSpec;
        let spec = DatasetSpec::default();
        let bench = spec.build();
        let pipes = pipes();
        let options = EvalOptions::default();
        let ckpt = Checkpoint::for_spec(&pipes, &bench, options, &spec);
        assert_eq!(ckpt.spec_fingerprint, Some(spec.fingerprint()));
        assert_eq!(
            ckpt.validate_for_spec(&pipes, &bench, options, &spec),
            Ok(())
        );

        // a different spec is refused even though the bench bytes match
        let other = spec.clone().with_mc_sa_ratio(0.5);
        assert_eq!(
            ckpt.validate_for_spec(&pipes, &bench, options, &other),
            Err(CheckpointError::SpecMismatch)
        );
        // an unbound checkpoint is refused for spec-bound resumes
        let unbound = Checkpoint::new(&pipes, &bench, options);
        assert_eq!(
            unbound.validate_for_spec(&pipes, &bench, options, &spec),
            Err(CheckpointError::SpecMismatch)
        );
        // legacy JSON (no spec field) deserializes as unbound
        let legacy: Checkpoint = serde_json::from_str(
            &ckpt
                .to_json()
                .expect("serializes")
                .replace(&format!(",\"spec_fingerprint\":{}", spec.fingerprint()), ""),
        )
        .expect("legacy json parses");
        assert_eq!(legacy.spec_fingerprint, None);
        // plain validate still accepts either
        assert_eq!(ckpt.validate(&pipes, &bench, options), Ok(()));
    }

    #[test]
    fn stale_store_generation_is_rejected() {
        use crate::cache::{CacheKey, CachedAnswer};
        use crate::store::{AnswerStore, StoreConfig};
        use chipvqa_models::backbone::AnswerPath;

        let dir = std::env::temp_dir().join(format!(
            "chipvqa-ckpt-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = ChipVqa::standard();
        let pipes = pipes();
        let options = EvalOptions::default();

        // tiny budget so inserts can force an eviction later
        let store = AnswerStore::open_with(
            &dir,
            StoreConfig {
                segment_max_bytes: 256,
                max_bytes: 768,
                ..StoreConfig::default()
            },
        )
        .expect("store opens");

        let mut ckpt = Checkpoint::new(&pipes, &bench, options);
        assert_eq!(
            ckpt.validate_store(&store),
            Err(CheckpointError::StoreGenerationMismatch {
                stamped: None,
                current: 0
            }),
            "an unbound checkpoint is refused for store-backed resumes"
        );
        ckpt.bind_store_generation(&store);
        assert_eq!(ckpt.validate_store(&store), Ok(()));

        // overflow the store so LRU eviction bumps the generation …
        for (i, q) in bench.iter().take(60).enumerate() {
            store.insert(
                CacheKey::new(7, q, 1, 0),
                CachedAnswer {
                    text: format!("a{i}"),
                    path: AnswerPath::Solved,
                    solve_probability: 0.5,
                },
            );
        }
        assert!(store.generation() > 0, "eviction must have happened");

        // … and the stamped checkpoint's cache epoch is now stale
        let err = ckpt.validate_store(&store).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::StoreGenerationMismatch {
                stamped: Some(0),
                ..
            }
        ));
        // re-binding heals it
        ckpt.bind_store_generation(&store);
        assert_eq!(ckpt.validate_store(&store), Ok(()));
        // the stamp survives serialization
        let restored = Checkpoint::from_json(&ckpt.to_json().expect("serializes")).expect("parses");
        assert_eq!(restored.store_generation, ckpt.store_generation);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_hash_tracks_content() {
        let a = ChipVqa::standard();
        let b = ChipVqa::standard();
        assert_eq!(bench_hash(&a), bench_hash(&b));
        assert_ne!(bench_hash(&a), bench_hash(&a.challenge()));
        assert_ne!(
            bench_hash(&a),
            bench_hash(&ChipVqa::with_seed(a.seed() + 1))
        );
    }
}

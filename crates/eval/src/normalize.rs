//! Answer normalisation: the text wrangling a judge performs before
//! comparing a model response to the golden answer.

/// Lowercases, trims, strips leading articles and surrounding
/// punctuation, and collapses whitespace.
pub fn normalize_text(s: &str) -> String {
    let lowered = s.trim().to_lowercase();
    let stripped: String = lowered
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '.' || c == '-' || c == '+' || c == '\'' {
                c
            } else {
                ' '
            }
        })
        .collect();
    let mut words: Vec<&str> = stripped.split_whitespace().collect();
    while let Some(first) = words.first() {
        if ["a", "an", "the"].contains(first) {
            words.remove(0);
        } else {
            break;
        }
    }
    words.join(" ")
}

/// Extracts an MC option letter from typical response shapes:
/// `(b)`, `b)`, `B.`, `answer: b`, `The answer is (B) …`.
pub fn extract_choice_letter(s: &str) -> Option<char> {
    let lower = s.trim().to_lowercase();
    // parenthesised letter anywhere
    let bytes = lower.as_bytes();
    for i in 0..bytes.len().saturating_sub(2) {
        if bytes[i] == b'(' && bytes[i + 2] == b')' && (b'a'..=b'd').contains(&bytes[i + 1]) {
            return Some(bytes[i + 1] as char);
        }
    }
    // leading "b)", "b.", "b:" or a lone letter
    let first = lower.split_whitespace().next()?;
    let head: Vec<char> = first.chars().collect();
    if head.len() <= 2
        && ('a'..='d').contains(&head[0])
        && (head.len() == 1 || matches!(head[1], ')' | '.' | ':'))
    {
        return Some(head[0]);
    }
    // "answer is b" / "answer: b"
    if let Some(pos) = lower.find("answer") {
        let tail = &lower[pos..];
        for token in tail.split_whitespace().skip(1).take(3) {
            let t: Vec<char> = token.chars().collect();
            if t.len() <= 2 && ('a'..='d').contains(&t[0]) {
                return Some(t[0]);
            }
        }
    }
    None
}

/// Parses the first number in a response, handling sign, decimals,
/// scientific notation and `0x` hexadecimal.
pub fn extract_number(s: &str) -> Option<f64> {
    let lower = s.trim().to_lowercase();
    for raw in lower.split(|c: char| c.is_whitespace() || c == '=' || c == ',') {
        let token = raw.trim_matches(|c: char| {
            !(c.is_ascii_hexdigit() || c == '.' || c == '-' || c == '+' || c == 'x' || c == 'e')
        });
        if token.is_empty() {
            continue;
        }
        if let Some(hex) = token.strip_prefix("0x") {
            if let Ok(v) = u64::from_str_radix(hex, 16) {
                return Some(v as f64);
            }
        }
        if token
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')
        {
            if let Ok(v) = token.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_normalisation() {
        assert_eq!(normalize_text("  The Half-Adder! "), "half-adder");
        assert_eq!(
            normalize_text("A  2-to-1   Multiplexer"),
            "2-to-1 multiplexer"
        );
        assert_eq!(normalize_text("S'Q + SR'"), "s'q + sr'");
    }

    #[test]
    fn letters_from_common_shapes() {
        assert_eq!(extract_choice_letter("(b) Q = S'Q + S"), Some('b'));
        assert_eq!(extract_choice_letter("B."), Some('b'));
        assert_eq!(extract_choice_letter("c) because..."), Some('c'));
        assert_eq!(extract_choice_letter("The answer is (D)"), Some('d'));
        assert_eq!(extract_choice_letter("answer: a"), Some('a'));
        assert_eq!(extract_choice_letter("I think it's probably fine"), None);
        assert_eq!(extract_choice_letter("42"), None);
    }

    #[test]
    fn numbers_from_common_shapes() {
        assert_eq!(extract_number("5.5 minutes"), Some(5.5));
        assert_eq!(extract_number("-3.25"), Some(-3.25));
        assert_eq!(extract_number("approximately 1e6 rad/s"), Some(1e6));
        assert_eq!(extract_number("0x8000123"), Some(f64::from(0x8000123u32)));
        assert_eq!(extract_number("no number here"), None);
        assert_eq!(extract_number("the result = 42 volts"), Some(42.0));
    }

    #[test]
    fn hex_and_decimal_disambiguation() {
        assert_eq!(extract_number("0x10"), Some(16.0));
        assert_eq!(extract_number("10"), Some(10.0));
    }
}

//! Crash-tolerant multi-process fleet execution.
//!
//! A *fleet* is N independent worker processes cooperating on one grid
//! evaluation through a shared directory — no coordinator, no network,
//! no shared memory. Each worker claims shards through an atomically
//! created **lease** file, evaluates them, and commits the outcomes as
//! per-shard **done** records; a final [`merge`] folds the records into
//! the canonical `Vec<EvalReport>`. The shared
//! [`AnswerStore`](crate::store::AnswerStore) (opened with
//! [`open_shared`](crate::store::AnswerStore::open_shared)) is the
//! common answer plane, so work one worker already inferred is a disk
//! hit for every other.
//!
//! # Directory layout
//!
//! ```text
//! fleet/
//!   manifest.json            run identity (models, bench, options,
//!                            spec fingerprint, store generation)
//!   leases/shard-0007.lease  in-flight claim: pid + start token +
//!                            nonce + heartbeat
//!   done/shard-0007.json     committed ShardRecord (exactly one, ever)
//!   quarantine/shard-0007.json  panic-degraded outcomes awaiting heal
//! ```
//!
//! # The lease protocol
//!
//! Every file-level claim uses *write-tmp-then-`hard_link`*: the link
//! either creates the target with full content or fails
//! `AlreadyExists` — there is no window where another process observes
//! a partial file, and when two workers race, exactly one wins. A
//! worker proves it still owns a lease by reading back its own unique
//! nonce.
//!
//! A lease is judged **stale** — and stolen — when its holder is dead
//! (`/proc` pid gone), recycled (pid alive but the kernel start token
//! differs from the stamp), unparsable, or *stalled* (the heartbeat
//! counter, bumped by a background thread of the owner, has not moved
//! for [`FleetConfig::stall_timeout`]). Stealing a live-but-slow
//! worker's lease is safe: evaluation is deterministic per shard, so
//! the two workers race to commit byte-identical records and the
//! `hard_link` commit lets exactly the first one win
//! (**at-least-once evaluation, exactly-once commit**).
//!
//! # Healing
//!
//! A shard whose supervised evaluation caught a worker panic is
//! committed to `quarantine/` instead of `done/` and stays claimable.
//! The next worker to claim it (possibly the same process, possibly a
//! thief healing a dead worker's wreckage) re-runs it *calm* — on
//! [`ParallelExecutor::unsupervised`], the same executor minus the
//! fault plan — and commits the clean outcomes to `done/`, exactly the
//! semantics of
//! [`Checkpoint::requeue_quarantined`](crate::checkpoint::Checkpoint::requeue_quarantined).
//!
//! # Determinism contract
//!
//! For any worker count, any lease-steal interleaving, and any kill
//! schedule, the merged report is byte-identical to a single-process
//! run of the same grid (`tests/fleet_chaos.rs` enforces this with
//! seeded `kill -9` schedules). [`merge`] refuses — with a structured
//! [`FleetError`] — manifests whose spec fingerprint or store
//! generation disagree with the caller's, incomplete fleets, and shard
//! records from a different manifest.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chipvqa_core::ChipVqa;
use chipvqa_models::VlmPipeline;
use chipvqa_telemetry::{kv, Telemetry};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{bench_hash, ShardResult};
use crate::executor::internal::{merge_from_pairs, run_selected, shard_keys};
use crate::executor::ParallelExecutor;
use crate::harness::{EvalOptions, EvalReport};
use crate::judge::Judge;
use crate::store::{fnv1a64, holder_dead, own_start_token, pid_alive};
use crate::supervisor::EvalError;

pub use crate::executor::internal::ShardKey;

/// On-disk fleet format version, stamped in `manifest.json`.
pub const FLEET_FORMAT_VERSION: u32 = 1;

/// The canonical shard plan of a job: every worker and the merge walk
/// exactly this list, in exactly this order. Exposed so chaos tests can
/// fabricate the wreckage (leases, quarantine records) of dead workers.
pub fn shard_plan(job: &FleetJob<'_>) -> Vec<ShardKey> {
    shard_keys(job.pipes.len(), job.bench.len())
}

/// Tuning knobs of a fleet worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// How often the owner's background thread bumps the lease
    /// heartbeat.
    pub heartbeat_interval: Duration,
    /// How long an *unchanged* heartbeat must be observed before a live
    /// holder is judged stalled and its lease stolen. Must comfortably
    /// exceed `heartbeat_interval` in production; tests set it to zero
    /// to force steals.
    pub stall_timeout: Duration,
    /// Sleep between scan passes when every remaining shard is leased
    /// by a live worker.
    pub idle_backoff: Duration,
    /// Pause between claiming a lease and evaluating it — a test hook
    /// that widens the window in which a `kill -9` lands on a held
    /// lease. Zero (the default) in production.
    pub post_claim_delay: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            heartbeat_interval: Duration::from_millis(100),
            stall_timeout: Duration::from_secs(30),
            idle_backoff: Duration::from_millis(25),
            post_claim_delay: Duration::ZERO,
        }
    }
}

/// The identity of one fleet run, as the caller knows it. Workers and
/// [`merge`] both derive the on-disk [`FleetManifest`] from this; a
/// worker whose job disagrees with the directory's manifest is refused
/// before it can pollute the run.
#[derive(Debug, Clone, Copy)]
pub struct FleetJob<'a> {
    /// The model grid, in canonical order.
    pub pipes: &'a [VlmPipeline],
    /// The benchmark every worker must evaluate.
    pub bench: &'a ChipVqa,
    /// Evaluation options.
    pub options: EvalOptions,
    /// Fingerprint of the [`DatasetSpec`](chipvqa_core::spec::DatasetSpec)
    /// the bench was built from (`None` for canonical collections).
    pub spec_fingerprint: Option<u64>,
    /// Eviction generation of the shared answer store (`None` when the
    /// fleet runs without one).
    pub store_generation: Option<u64>,
}

impl FleetJob<'_> {
    /// The manifest this job stamps (and validates against).
    pub fn manifest(&self) -> FleetManifest {
        FleetManifest {
            format_version: FLEET_FORMAT_VERSION,
            model_fingerprints: self.pipes.iter().map(VlmPipeline::fingerprint).collect(),
            bench_hash: bench_hash(self.bench),
            options: self.options,
            spec_fingerprint: self.spec_fingerprint,
            store_generation: self.store_generation,
            models: self.pipes.len(),
            questions: self.bench.len(),
        }
    }
}

/// Durable identity of a fleet run: the first worker creates it
/// atomically, every later worker and the merge validate against it
/// field by field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest {
    /// On-disk fleet format version.
    pub format_version: u32,
    /// Fingerprints of the grid's models, in grid order.
    pub model_fingerprints: Vec<u64>,
    /// Content hash of the benchmark (ids + prompts).
    pub bench_hash: u64,
    /// The evaluation options of the run.
    pub options: EvalOptions,
    /// Spec fingerprint the bench was built from, if any.
    pub spec_fingerprint: Option<u64>,
    /// Store generation the fleet warms from, if any.
    pub store_generation: Option<u64>,
    /// Model count (shard-plan shape).
    pub models: usize,
    /// Question count (shard-plan shape).
    pub questions: usize,
}

impl FleetManifest {
    /// Content fingerprint of the manifest — stamped on every lease and
    /// shard record, so [`merge`] can refuse records from a different
    /// run that leaked into the directory.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(
            serde_json::to_string(self)
                .expect("manifest serializes")
                .as_bytes(),
        )
    }
}

/// One in-flight shard claim. Public so chaos tests can fabricate the
/// wreckage of dead workers; production code never constructs these by
/// hand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Index of the shard in the canonical plan.
    pub shard_index: usize,
    /// The claimed shard.
    pub shard: ShardKey,
    /// Owner pid.
    pub pid: u32,
    /// Owner's kernel start token (guards against pid reuse; 0 when the
    /// platform offers none).
    pub start_token: u64,
    /// Process-unique claim nonce — ownership is proven by reading this
    /// back, never by pid alone.
    pub nonce: u64,
    /// Liveness counter, bumped by the owner's heartbeat thread.
    pub heartbeat: u64,
    /// Fingerprint of the manifest this claim belongs to.
    pub manifest_fingerprint: u64,
    /// Whether this claim re-runs a quarantined shard calm.
    pub healing: bool,
}

/// One committed shard: the done/quarantine file payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Fingerprint of the manifest the shard was evaluated under.
    pub manifest_fingerprint: u64,
    /// Whether the outcomes are panic-degraded (quarantine files only;
    /// [`merge`] refuses a done record with this set).
    pub quarantined: bool,
    /// Pid of the committing worker (forensics only).
    pub worker_pid: u32,
    /// The shard and its outcomes.
    pub result: ShardResult,
}

/// What one worker did, for logging and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetOutcome {
    /// Shards this worker evaluated and committed to `done/`.
    pub shards_evaluated: usize,
    /// Of those, shards that were quarantined re-runs (healed).
    pub shards_healed: usize,
    /// Shards whose supervised run caught a panic and went to
    /// `quarantine/` instead.
    pub shards_quarantined: usize,
    /// Stale leases this worker removed and successfully re-claimed.
    pub leases_stolen: usize,
    /// Stale leases this worker removed but lost the re-claim race for.
    pub steals_lost: usize,
    /// Commits that found the target record already present (another
    /// worker finished the same shard first — benign by determinism).
    pub duplicate_commits: usize,
}

/// Why a fleet operation was refused.
#[derive(Debug)]
pub enum FleetError {
    /// Filesystem failure underneath the protocol.
    Io(io::Error),
    /// `manifest.json` does not exist — no fleet ever ran here.
    ManifestMissing,
    /// The directory's manifest disagrees with the caller's job on the
    /// named field.
    ManifestMismatch {
        /// Which manifest field disagreed.
        field: &'static str,
    },
    /// The directory's manifest was stamped with a different dataset
    /// spec than the caller is merging — the reports would describe a
    /// different collection.
    SpecFingerprintMismatch {
        /// Fingerprint stamped in the manifest.
        stamped: Option<u64>,
        /// Fingerprint of the caller's spec.
        expected: Option<u64>,
    },
    /// The directory's manifest was stamped against a different answer
    /// store generation: answers the fleet assumed cached may since
    /// have been evicted.
    StoreGenerationMismatch {
        /// Generation stamped in the manifest.
        stamped: Option<u64>,
        /// The store's current generation.
        current: Option<u64>,
    },
    /// Not every shard has a committed done record yet.
    Incomplete {
        /// Shards committed.
        done: usize,
        /// Shards in the plan.
        total: usize,
    },
    /// A done record carries a foreign manifest fingerprint, a
    /// mismatched shard key, or a quarantined flag — it does not belong
    /// to this run's `done/` set.
    ForeignShard {
        /// Index of the offending shard.
        shard_index: usize,
    },
    /// A protocol file exists but does not parse.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet i/o failure: {e}"),
            FleetError::ManifestMissing => {
                write!(f, "fleet directory has no manifest.json: no fleet ran here")
            }
            FleetError::ManifestMismatch { field } => write!(
                f,
                "fleet manifest disagrees with this job on `{field}`: the directory \
                 belongs to a different run"
            ),
            FleetError::SpecFingerprintMismatch { stamped, expected } => write!(
                f,
                "fleet manifest spec fingerprint {stamped:?} does not match the \
                 spec being merged ({expected:?}): refusing to fold shards from a \
                 different collection"
            ),
            FleetError::StoreGenerationMismatch { stamped, current } => write!(
                f,
                "fleet manifest store generation {stamped:?} does not match the \
                 store's current generation {current:?}: the fleet's cache epoch \
                 is stale"
            ),
            FleetError::Incomplete { done, total } => write!(
                f,
                "fleet is incomplete: {done}/{total} shards committed — run more \
                 workers to completion before merging"
            ),
            FleetError::ForeignShard { shard_index } => write!(
                f,
                "done record for shard {shard_index} does not belong to this \
                 run's manifest"
            ),
            FleetError::Corrupt { path, detail } => {
                write!(f, "fleet file {} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FleetError {
    fn from(e: io::Error) -> Self {
        FleetError::Io(e)
    }
}

/// Path of shard `idx`'s lease file.
pub fn lease_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join("leases").join(format!("shard-{idx:04}.lease"))
}

/// Path of shard `idx`'s committed done record.
pub fn done_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join("done").join(format!("shard-{idx:04}.json"))
}

/// Path of shard `idx`'s quarantine record.
pub fn quarantine_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join("quarantine").join(format!("shard-{idx:04}.json"))
}

/// A process-unique claim nonce: pid × start token × a process-local
/// counter, mixed through FNV. Two workers can never mint the same one.
fn fresh_nonce() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(&std::process::id().to_le_bytes());
    bytes.extend_from_slice(&own_start_token().to_le_bytes());
    bytes.extend_from_slice(&c.to_le_bytes());
    fnv1a64(&bytes)
}

/// Atomic full-content create: write a unique tmp file, `hard_link` it
/// to `path` (which either creates the target whole or fails
/// `AlreadyExists`), remove the tmp. Returns whether *we* created the
/// target — the entire exactly-once story rests on this primitive.
fn atomic_create(path: &Path, bytes: &[u8]) -> io::Result<bool> {
    let tmp = path.with_extension(format!("tmp-{}-{}", std::process::id(), fresh_nonce()));
    fs::write(&tmp, bytes)?;
    let linked = fs::hard_link(&tmp, path);
    let _ = fs::remove_file(&tmp);
    match linked {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    }
}

/// What reading a lease file yielded.
enum LeaseRead {
    Missing,
    Corrupt,
    Held(Lease),
}

fn read_lease(path: &Path) -> io::Result<LeaseRead> {
    match fs::read_to_string(path) {
        Ok(json) => Ok(match serde_json::from_str(&json) {
            Ok(lease) => LeaseRead::Held(lease),
            Err(_) => LeaseRead::Corrupt,
        }),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LeaseRead::Missing),
        Err(e) => Err(e),
    }
}

/// Creates `manifest.json` atomically, or validates the one a faster
/// worker already created.
fn ensure_manifest(dir: &Path, expected: &FleetManifest) -> Result<FleetManifest, FleetError> {
    let path = dir.join("manifest.json");
    let bytes = serde_json::to_string(expected).expect("manifest serializes");
    if atomic_create(&path, bytes.as_bytes())? {
        return Ok(expected.clone());
    }
    let found = read_manifest(dir)?;
    validate_manifest(expected, &found)?;
    Ok(found)
}

/// Reads and parses `manifest.json`.
fn read_manifest(dir: &Path) -> Result<FleetManifest, FleetError> {
    let path = dir.join("manifest.json");
    let json = match fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(FleetError::ManifestMissing),
        Err(e) => return Err(e.into()),
    };
    serde_json::from_str(&json).map_err(|e| FleetError::Corrupt {
        path,
        detail: e.to_string(),
    })
}

/// Field-by-field manifest validation; spec fingerprint and store
/// generation get their own structured refusals because they are the
/// mismatches operators actually hit (wrong `--scale`, evicted store).
fn validate_manifest(expected: &FleetManifest, found: &FleetManifest) -> Result<(), FleetError> {
    if found.format_version != expected.format_version {
        return Err(FleetError::ManifestMismatch {
            field: "format_version",
        });
    }
    if found.spec_fingerprint != expected.spec_fingerprint {
        return Err(FleetError::SpecFingerprintMismatch {
            stamped: found.spec_fingerprint,
            expected: expected.spec_fingerprint,
        });
    }
    if found.store_generation != expected.store_generation {
        return Err(FleetError::StoreGenerationMismatch {
            stamped: found.store_generation,
            current: expected.store_generation,
        });
    }
    if found.model_fingerprints != expected.model_fingerprints {
        return Err(FleetError::ManifestMismatch {
            field: "model_fingerprints",
        });
    }
    if found.bench_hash != expected.bench_hash {
        return Err(FleetError::ManifestMismatch {
            field: "bench_hash",
        });
    }
    if found.options != expected.options {
        return Err(FleetError::ManifestMismatch { field: "options" });
    }
    if (found.models, found.questions) != (expected.models, expected.questions) {
        return Err(FleetError::ManifestMismatch {
            field: "grid_shape",
        });
    }
    Ok(())
}

/// Why a lease was judged stale.
fn staleness(
    lease: &Lease,
    idx: usize,
    observed: &mut HashMap<usize, (u64, Instant)>,
    stall_timeout: Duration,
) -> Option<&'static str> {
    if holder_dead(lease.pid, Some(lease.start_token)) {
        return Some(if pid_alive(lease.pid) {
            "pid-reuse"
        } else {
            "dead-pid"
        });
    }
    match observed.get(&idx) {
        Some(&(heartbeat, since)) if heartbeat == lease.heartbeat => {
            if since.elapsed() >= stall_timeout {
                observed.remove(&idx);
                return Some("stalled");
            }
        }
        _ => {
            observed.insert(idx, (lease.heartbeat, Instant::now()));
        }
    }
    None
}

/// A held lease: keeps the heartbeat thread alive, releases the lease
/// file on drop (only if the nonce is still ours — a stolen lease is
/// left to its thief).
struct LeaseGuard {
    path: PathBuf,
    nonce: u64,
    stop: Arc<AtomicBool>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl LeaseGuard {
    fn start(path: PathBuf, lease: Lease, interval: Duration, telemetry: Telemetry) -> LeaseGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_path = path.clone();
        let nonce = lease.nonce;
        let heartbeat = std::thread::spawn(move || {
            let mut lease = lease;
            let tick = Duration::from_millis(5).min(interval.max(Duration::from_millis(1)));
            let mut since_bump = Duration::ZERO;
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since_bump += tick;
                if since_bump < interval {
                    continue;
                }
                since_bump = Duration::ZERO;
                lease.heartbeat += 1;
                // tmp + rename: the bump is atomic. If a thief claimed
                // the lease after judging us stalled, this recreates it
                // with our content — benign: both sides evaluate
                // deterministically and the done commit is first-wins.
                let tmp = thread_path.with_extension(format!("hb-{nonce}"));
                let ok = serde_json::to_string(&lease)
                    .map_err(io::Error::other)
                    .and_then(|json| fs::write(&tmp, json))
                    .and_then(|()| fs::rename(&tmp, &thread_path));
                if ok.is_ok() {
                    telemetry.counter("fleet.lease.heartbeat", 1);
                }
            }
        });
        LeaseGuard {
            path,
            nonce,
            stop,
            heartbeat: Some(heartbeat),
        }
    }

    /// Whether the lease file still carries our nonce.
    fn still_ours(&self) -> bool {
        matches!(
            read_lease(&self.path),
            Ok(LeaseRead::Held(lease)) if lease.nonce == self.nonce
        )
    }
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        if self.still_ours() {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Runs one fleet worker to completion: scans the shard plan, claims
/// (or steals) leases, evaluates, commits, and loops until every shard
/// of the plan has a done record. Returns what this worker contributed.
///
/// The worker evaluates with `exec` as given (supervised, if a fault
/// plan is attached) for first-pass shards, and with
/// [`exec.unsupervised()`](ParallelExecutor::unsupervised) when healing
/// a quarantined shard. If `exec` carries a cache backed by the shared
/// answer store, the store is flushed before returning.
pub fn run_worker(
    dir: &Path,
    exec: &ParallelExecutor,
    job: &FleetJob<'_>,
    judge: &dyn Judge,
    config: &FleetConfig,
) -> Result<FleetOutcome, FleetError> {
    for sub in ["leases", "done", "quarantine"] {
        fs::create_dir_all(dir.join(sub))?;
    }
    let manifest = ensure_manifest(dir, &job.manifest())?;
    let manifest_fp = manifest.fingerprint();
    let keys = shard_keys(job.pipes.len(), job.bench.len());
    let tele = exec.telemetry();
    if tele.enabled() {
        tele.event(
            "fleet.worker.start",
            vec![
                kv("pid", std::process::id()),
                kv("shards", keys.len()),
                kv("manifest", manifest_fp),
            ],
        );
    }
    let calm = exec.unsupervised();
    let mut observed: HashMap<usize, (u64, Instant)> = HashMap::new();
    let mut outcome = FleetOutcome::default();

    loop {
        let mut remaining = 0usize;
        let mut progressed = false;
        for (idx, key) in keys.iter().enumerate() {
            if done_path(dir, idx).exists() {
                continue;
            }
            remaining += 1;
            let healing = quarantine_path(dir, idx).exists();
            let Some(guard) = try_claim(
                dir,
                idx,
                key,
                manifest_fp,
                healing,
                &mut observed,
                config,
                tele,
                &mut outcome,
            )?
            else {
                continue;
            };
            progressed = true;
            observed.remove(&idx);
            if config.post_claim_delay > Duration::ZERO {
                std::thread::sleep(config.post_claim_delay);
            }
            let runner = if healing { &calm } else { exec };
            let outcomes = run_selected(runner, job.pipes, job.bench, job.options, judge, &[*key])
                .pop()
                .expect("one shard requested");
            let panicked = outcomes
                .iter()
                .any(|o| o.error == Some(EvalError::WorkerPanic));
            let record = ShardRecord {
                manifest_fingerprint: manifest_fp,
                quarantined: panicked,
                worker_pid: std::process::id(),
                result: ShardResult {
                    key: *key,
                    outcomes,
                },
            };
            let bytes = serde_json::to_string(&record).expect("record serializes");
            if panicked {
                // quarantine commit: first-wins, the shard stays
                // claimable (healable) because done/ has no record
                let fresh = atomic_create(&quarantine_path(dir, idx), bytes.as_bytes())?;
                outcome.shards_quarantined += 1;
                tele.counter("fleet.shard.quarantined", 1);
                if tele.enabled() {
                    tele.event(
                        "fleet.shard.quarantined",
                        vec![kv("shard", idx), kv("first", fresh)],
                    );
                }
            } else if atomic_create(&done_path(dir, idx), bytes.as_bytes())? {
                outcome.shards_evaluated += 1;
                tele.counter("fleet.shard.done", 1);
                if healing {
                    outcome.shards_healed += 1;
                    tele.counter("fleet.shard.healed", 1);
                }
                if tele.enabled() {
                    tele.event(
                        "fleet.shard.done",
                        vec![kv("shard", idx), kv("healed", healing)],
                    );
                }
            } else {
                // another worker (a thief that judged us stalled, or a
                // racer on a healed shard) committed first — identical
                // bytes by determinism, so losing is benign
                outcome.duplicate_commits += 1;
                tele.counter("fleet.shard.duplicate", 1);
            }
            drop(guard);
        }
        if remaining == 0 {
            break;
        }
        if !progressed {
            std::thread::sleep(config.idle_backoff);
        }
    }

    if let Some(cache) = exec.cache() {
        cache.flush_store()?;
    }
    if tele.enabled() {
        tele.event(
            "fleet.worker.finish",
            vec![
                kv("pid", std::process::id()),
                kv("evaluated", outcome.shards_evaluated),
                kv("healed", outcome.shards_healed),
                kv("stolen", outcome.leases_stolen),
            ],
        );
    }
    Ok(outcome)
}

/// One claim attempt for shard `idx`. Judges an existing lease, steals
/// it if stale, and races the atomic create. `Ok(None)` means the shard
/// is legitimately busy (or we lost the race) — move on.
#[allow(clippy::too_many_arguments)]
fn try_claim(
    dir: &Path,
    idx: usize,
    key: &ShardKey,
    manifest_fp: u64,
    healing: bool,
    observed: &mut HashMap<usize, (u64, Instant)>,
    config: &FleetConfig,
    tele: &Telemetry,
    outcome: &mut FleetOutcome,
) -> Result<Option<LeaseGuard>, FleetError> {
    let path = lease_path(dir, idx);
    let mut stole: Option<(&'static str, u32)> = None;
    match read_lease(&path)? {
        LeaseRead::Missing => {}
        LeaseRead::Corrupt => {
            let _ = fs::remove_file(&path);
            stole = Some(("corrupt", 0));
        }
        LeaseRead::Held(existing) => {
            match staleness(&existing, idx, observed, config.stall_timeout) {
                None => {
                    tele.counter("fleet.lease.busy", 1);
                    return Ok(None);
                }
                Some(reason) => {
                    // remove-then-claim: a rival thief may win the
                    // re-claim below, which is counted as a lost steal
                    let _ = fs::remove_file(&path);
                    stole = Some((reason, existing.pid));
                }
            }
        }
    }

    let lease = Lease {
        shard_index: idx,
        shard: *key,
        pid: std::process::id(),
        start_token: own_start_token(),
        nonce: fresh_nonce(),
        heartbeat: 0,
        manifest_fingerprint: manifest_fp,
        healing,
    };
    let bytes = serde_json::to_string(&lease).expect("lease serializes");
    if !atomic_create(&path, bytes.as_bytes())? {
        if stole.is_some() {
            outcome.steals_lost += 1;
            tele.counter("fleet.lease.steal_lost", 1);
        } else {
            tele.counter("fleet.lease.busy", 1);
        }
        return Ok(None);
    }
    // ownership is proven by nonce read-back, never assumed from the
    // create: paranoia against an unexpected interleaving is cheap here
    match read_lease(&path)? {
        LeaseRead::Held(readback) if readback.nonce == lease.nonce => {}
        _ => {
            tele.counter("fleet.lease.steal_lost", 1);
            return Ok(None);
        }
    }
    if let Some((reason, victim)) = stole {
        outcome.leases_stolen += 1;
        tele.counter("fleet.lease.steal", 1);
        if tele.enabled() {
            tele.event(
                "fleet.lease.steal",
                vec![
                    kv("shard", idx),
                    kv("reason", reason),
                    kv("victim_pid", victim),
                ],
            );
        }
    }
    tele.counter("fleet.lease.claim", 1);
    if tele.enabled() {
        tele.event(
            "fleet.lease.claim",
            vec![kv("shard", idx), kv("healing", healing)],
        );
    }
    Ok(Some(LeaseGuard::start(
        path,
        lease,
        config.heartbeat_interval,
        tele.clone(),
    )))
}

/// Folds a completed fleet directory into the canonical reports — the
/// deterministic merge. Refuses (structured, never silently wrong):
/// a missing or foreign manifest ([`FleetError::ManifestMismatch`],
/// [`FleetError::SpecFingerprintMismatch`],
/// [`FleetError::StoreGenerationMismatch`]), an incomplete fleet
/// ([`FleetError::Incomplete`]), and done records that do not belong to
/// this manifest ([`FleetError::ForeignShard`]).
pub fn merge(
    dir: &Path,
    job: &FleetJob<'_>,
    telemetry: &Telemetry,
) -> Result<Vec<EvalReport>, FleetError> {
    let manifest = read_manifest(dir)?;
    validate_manifest(&job.manifest(), &manifest)?;
    let manifest_fp = manifest.fingerprint();
    let keys = shard_keys(job.pipes.len(), job.bench.len());
    let mut pairs = Vec::with_capacity(keys.len());
    let mut missing = 0usize;
    for (idx, key) in keys.iter().enumerate() {
        let path = done_path(dir, idx);
        let json = match fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                missing += 1;
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        let record: ShardRecord = serde_json::from_str(&json).map_err(|e| FleetError::Corrupt {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        if record.manifest_fingerprint != manifest_fp
            || record.quarantined
            || record.result.key != *key
        {
            return Err(FleetError::ForeignShard { shard_index: idx });
        }
        pairs.push((record.result.key, record.result.outcomes));
    }
    if missing > 0 {
        return Err(FleetError::Incomplete {
            done: keys.len() - missing,
            total: keys.len(),
        });
    }
    let reports = merge_from_pairs(job.pipes, job.bench, &pairs);
    telemetry.counter("fleet.merge.done", 1);
    if telemetry.enabled() {
        telemetry.event(
            "fleet.merge.done",
            vec![kv("shards", keys.len()), kv("models", reports.len())],
        );
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::judge::RuleJudge;
    use crate::supervisor::Supervisor;
    use chipvqa_models::ModelZoo;

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "chipvqa-fleet-unit-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_job<'a>(pipes: &'a [VlmPipeline], bench: &'a ChipVqa) -> FleetJob<'a> {
        FleetJob {
            pipes,
            bench,
            options: EvalOptions::default(),
            spec_fingerprint: None,
            store_generation: None,
        }
    }

    fn quick_config() -> FleetConfig {
        FleetConfig {
            heartbeat_interval: Duration::from_millis(20),
            stall_timeout: Duration::from_secs(30),
            idle_backoff: Duration::from_millis(5),
            post_claim_delay: Duration::ZERO,
        }
    }

    #[test]
    fn single_worker_fleet_matches_direct_grid_evaluation() {
        let dir = tmp_dir("single");
        let bench = ChipVqa::standard();
        let pipes = vec![
            VlmPipeline::new(ModelZoo::gpt4o()),
            VlmPipeline::new(ModelZoo::fuyu_8b()),
        ];
        let job = small_job(&pipes, &bench);
        let exec = ParallelExecutor::new(2);
        let outcome =
            run_worker(&dir, &exec, &job, &RuleJudge::new(), &quick_config()).expect("runs");
        assert_eq!(outcome.shards_quarantined, 0);
        assert_eq!(outcome.leases_stolen, 0);
        let merged = merge(&dir, &job, &Telemetry::disabled()).expect("merges");
        let reference =
            exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new());
        assert_eq!(merged.len(), reference.len());
        for (m, r) in merged.iter().zip(&reference) {
            assert_eq!(m.model, r.model);
            assert_eq!(m.outcomes, r.outcomes, "fleet merge is byte-identical");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_faults_quarantine_then_heal_to_the_clean_report() {
        let dir = tmp_dir("heal");
        let bench = ChipVqa::standard();
        let pipes = vec![VlmPipeline::new(ModelZoo::gpt4o())];
        let job = small_job(&pipes, &bench);
        let plan = FaultPlan {
            panic_rate: 0.25,
            seed: 7,
            ..FaultPlan::none()
        };
        let exec = ParallelExecutor::new(2).with_supervisor(Supervisor::new(plan));
        let outcome =
            run_worker(&dir, &exec, &job, &RuleJudge::new(), &quick_config()).expect("runs");
        assert!(
            outcome.shards_quarantined > 0,
            "a 25% panic rate must quarantine at least one shard"
        );
        assert_eq!(
            outcome.shards_healed, outcome.shards_quarantined,
            "the same worker heals its own quarantine on later passes"
        );
        let merged = merge(&dir, &job, &Telemetry::disabled()).expect("merges");
        let clean = ParallelExecutor::new(2).evaluate_grid(
            &pipes,
            &bench,
            EvalOptions::default(),
            &RuleJudge::new(),
        );
        assert_eq!(
            merged[0].outcomes, clean[0].outcomes,
            "healed fleet converges to the calm single-process report"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_pid_lease_is_stolen_and_fabricated_quarantine_healed() {
        let dir = tmp_dir("steal");
        let bench = ChipVqa::standard();
        let pipes = vec![VlmPipeline::new(ModelZoo::gpt4o())];
        let job = small_job(&pipes, &bench);
        let manifest = job.manifest();
        let manifest_fp = manifest.fingerprint();
        for sub in ["leases", "done", "quarantine"] {
            fs::create_dir_all(dir.join(sub)).expect("mkdir");
        }
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_string(&manifest).expect("serializes"),
        )
        .expect("writes manifest");
        // the wreckage of a kill -9'd worker: a lease held by a dead
        // pid, over a shard it had quarantined before dying
        let keys = shard_keys(1, bench.len());
        let dead = Lease {
            shard_index: 0,
            shard: keys[0],
            pid: u32::MAX - 2, // far beyond any real pid on the box
            start_token: 12345,
            nonce: 999,
            heartbeat: 3,
            manifest_fingerprint: manifest_fp,
            healing: false,
        };
        fs::write(
            lease_path(&dir, 0),
            serde_json::to_string(&dead).expect("serializes"),
        )
        .expect("plants lease");
        let degraded = ShardRecord {
            manifest_fingerprint: manifest_fp,
            quarantined: true,
            worker_pid: dead.pid,
            result: ShardResult {
                key: keys[0],
                outcomes: Vec::new(), // never read on the heal path
            },
        };
        fs::write(
            quarantine_path(&dir, 0),
            serde_json::to_string(&degraded).expect("serializes"),
        )
        .expect("plants quarantine");

        let exec = ParallelExecutor::new(2);
        let outcome =
            run_worker(&dir, &exec, &job, &RuleJudge::new(), &quick_config()).expect("runs");
        assert!(outcome.leases_stolen >= 1, "the dead pid's lease is stolen");
        assert!(
            outcome.shards_healed >= 1,
            "the dead worker's quarantined shard is healed"
        );
        let merged = merge(&dir, &job, &Telemetry::disabled()).expect("merges");
        let reference =
            exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new());
        assert_eq!(merged[0].outcomes, reference[0].outcomes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_refuses_mismatched_identity_and_incomplete_fleets() {
        let dir = tmp_dir("refuse");
        let bench = ChipVqa::standard();
        let pipes = vec![VlmPipeline::new(ModelZoo::gpt4o())];
        let job = FleetJob {
            spec_fingerprint: Some(0xAAAA),
            store_generation: Some(3),
            ..small_job(&pipes, &bench)
        };
        // no manifest yet
        assert!(matches!(
            merge(&dir, &job, &Telemetry::disabled()),
            Err(FleetError::ManifestMissing)
        ));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_string(&job.manifest()).expect("serializes"),
        )
        .expect("writes");
        // wrong spec fingerprint (e.g. merge invoked with wrong --scale)
        let wrong_spec = FleetJob {
            spec_fingerprint: Some(0xBBBB),
            ..job
        };
        assert!(matches!(
            merge(&dir, &wrong_spec, &Telemetry::disabled()),
            Err(FleetError::SpecFingerprintMismatch {
                stamped: Some(0xAAAA),
                expected: Some(0xBBBB),
            })
        ));
        // wrong store generation (the store evicted since the fleet ran)
        let wrong_gen = FleetJob {
            store_generation: Some(4),
            ..job
        };
        assert!(matches!(
            merge(&dir, &wrong_gen, &Telemetry::disabled()),
            Err(FleetError::StoreGenerationMismatch {
                stamped: Some(3),
                current: Some(4),
            })
        ));
        // identity matches but nothing committed yet
        match merge(&dir, &job, &Telemetry::disabled()) {
            Err(FleetError::Incomplete { done: 0, total }) => {
                assert_eq!(total, shard_keys(1, bench.len()).len());
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
        // a worker whose job disagrees is refused up front, too
        let exec = ParallelExecutor::new(1);
        assert!(matches!(
            run_worker(&dir, &exec, &wrong_spec, &RuleJudge::new(), &quick_config()),
            Err(FleetError::SpecFingerprintMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_fingerprint_pins_every_identity_field() {
        let bench = ChipVqa::standard();
        let pipes = vec![VlmPipeline::new(ModelZoo::gpt4o())];
        let base = small_job(&pipes, &bench).manifest();
        let fp = base.fingerprint();
        let mut other = base.clone();
        other.spec_fingerprint = Some(1);
        assert_ne!(fp, other.fingerprint());
        let mut other = base.clone();
        other.store_generation = Some(1);
        assert_ne!(fp, other.fingerprint());
        let mut other = base.clone();
        other.bench_hash ^= 1;
        assert_ne!(fp, other.fingerprint());
        assert_eq!(fp, base.clone().fingerprint(), "stable for equal content");
    }
}

//! Deterministic fault injection for chaos-testing the harness.
//!
//! A production-scale evaluation run sees transient infrastructure
//! failures — inference deadlines blown, responses truncated or garbled
//! in transport, rate-limit bursts, transient 5xx-style errors, crashed
//! workers. [`FaultPlan`] describes a reproducible storm of such faults:
//! every draw is a pure function of `(plan seed, model fingerprint,
//! question id, call site, attempt, recovery attempt)`, so the *same*
//! faults hit the *same* calls no matter how many workers the
//! [`ParallelExecutor`](crate::executor::ParallelExecutor) runs, in
//! which order shards are stolen, or whether the run was resumed from a
//! checkpoint. That key choice is what lets the chaos suite assert
//! byte-identical reports across 1/2/8 workers under any plan.
//!
//! [`FaultInjector`] turns a plan into decisions at the two supervised
//! call sites (model inference and judge verdicts); the recovery
//! machinery lives in [`supervisor`](crate::supervisor).

use serde::{Deserialize, Serialize};

/// Marker appended to a response that was cut off in transport.
pub const TRUNCATION_MARKER: &str = "…[truncated]";

/// Replacement character sprinkled through a garbled response.
pub const GARBLE_CHAR: char = '\u{FFFD}';

/// Whether `text` carries fault-corruption markers. The
/// [`AnswerCache`](crate::cache::AnswerCache) uses this to assert its
/// only-clean-answers invariant.
pub fn is_corrupted_text(text: &str) -> bool {
    text.contains(TRUNCATION_MARKER) || text.contains(GARBLE_CHAR)
}

/// The kinds of infrastructure fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The call exceeded its deadline and was cancelled.
    Timeout,
    /// The response arrived cut off mid-answer.
    Truncated,
    /// The response arrived with bytes mangled in transport.
    Garbled,
    /// The provider shed load; the call was rejected. Rate-limit draws
    /// arrive in bursts: one draw also poisons the next one or two
    /// recovery attempts of the same call.
    RateLimited,
    /// A transient error (connection reset, 5xx) — retryable.
    Transient,
    /// The worker thread evaluating the question crashes.
    WorkerPanic,
}

impl FaultKind {
    /// Stable short label (used in failure-accounting tables).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::Truncated => "truncated",
            FaultKind::Garbled => "garbled",
            FaultKind::RateLimited => "rate-limited",
            FaultKind::Transient => "transient",
            FaultKind::WorkerPanic => "worker-panic",
        }
    }
}

/// Which supervised call a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallSite {
    /// `VlmPipeline::infer` / `infer_with` — the model answering.
    Inference,
    /// `Judge::verdict` — the (possibly remote LLM) judge scoring.
    Judge,
}

impl CallSite {
    /// Stable short label (used in telemetry events).
    pub fn label(self) -> &'static str {
        match self {
            CallSite::Inference => "inference",
            CallSite::Judge => "judge",
        }
    }
}

/// A seeded, reproducible storm of infrastructure faults.
///
/// Rates are independent per-call probabilities in `[0, 1]`; their sum
/// must not exceed 1 (one call suffers at most one fault per recovery
/// attempt). The all-zero plan ([`FaultPlan::none`]) injects nothing and
/// is guaranteed to reproduce a fault-free run byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Probability a call blows its deadline.
    pub timeout_rate: f64,
    /// Probability a response arrives truncated.
    pub truncate_rate: f64,
    /// Probability a response arrives garbled.
    pub garble_rate: f64,
    /// Probability a call is rate-limited (bursty; see
    /// [`FaultKind::RateLimited`]).
    pub rate_limit_rate: f64,
    /// Probability of a transient retryable error.
    pub transient_rate: f64,
    /// Probability the worker evaluating the question panics.
    pub panic_rate: f64,
    /// Model fingerprints whose every inference call fails with a
    /// transient error — a persistently down backend, the scenario the
    /// circuit breaker exists for.
    pub broken_models: Vec<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The all-zero plan: no faults, byte-identical to unsupervised runs.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            timeout_rate: 0.0,
            truncate_rate: 0.0,
            garble_rate: 0.0,
            rate_limit_rate: 0.0,
            transient_rate: 0.0,
            panic_rate: 0.0,
            broken_models: Vec::new(),
        }
    }

    /// A uniform plan: every fault kind at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            timeout_rate: rate,
            truncate_rate: rate,
            garble_rate: rate,
            rate_limit_rate: rate,
            transient_rate: rate,
            panic_rate: rate,
            broken_models: Vec::new(),
        }
    }

    /// Marks a model fingerprint as persistently failing.
    pub fn with_broken_model(mut self, fingerprint: u64) -> Self {
        self.broken_models.push(fingerprint);
        self
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_zero(&self) -> bool {
        self.total_rate() == 0.0 && self.broken_models.is_empty()
    }

    fn total_rate(&self) -> f64 {
        self.timeout_rate
            + self.truncate_rate
            + self.garble_rate
            + self.rate_limit_rate
            + self.transient_rate
            + self.panic_rate
    }

    /// Panics unless every rate is a probability and the per-call fault
    /// mass does not exceed 1.
    pub fn validate(&self) {
        for (name, r) in [
            ("timeout_rate", self.timeout_rate),
            ("truncate_rate", self.truncate_rate),
            ("garble_rate", self.garble_rate),
            ("rate_limit_rate", self.rate_limit_rate),
            ("transient_rate", self.transient_rate),
            ("panic_rate", self.panic_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} out of [0, 1]: {r}");
        }
        assert!(
            self.total_rate() <= 1.0 + 1e-12,
            "fault rates sum to {} > 1",
            self.total_rate()
        );
    }
}

/// Call-site coordinates of one streamed question: which breaker
/// *window* its global index falls in, and the slot within that window.
///
/// Streamed supervised execution partitions the question sequence into
/// fixed windows of [`StreamCoord::WINDOW`] questions. Breaker state is
/// a pure function of the window's own prefix (it resets at every
/// window boundary), so the coordinates — not the arrival order —
/// fully locate a decision. Telemetry events on the streamed breaker
/// path are tagged with these coordinates, and the differential chaos
/// wall relies on them being identical however the spec was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCoord {
    /// Breaker window index (`global_index / WINDOW`).
    pub window: usize,
    /// Slot within the window (`global_index % WINDOW`).
    pub slot: usize,
}

impl StreamCoord {
    /// Questions per breaker window. Matches the executor's shard size
    /// so the default streamed shard grid and the breaker windows
    /// coincide, but the breaker math never assumes they do.
    pub const WINDOW: usize = 16;

    /// The coordinates of the question at `global_index`.
    pub fn of(global_index: usize) -> StreamCoord {
        StreamCoord {
            window: global_index / StreamCoord::WINDOW,
            slot: global_index % StreamCoord::WINDOW,
        }
    }

    /// The global question index these coordinates name.
    pub fn global_index(&self) -> usize {
        self.window * StreamCoord::WINDOW + self.slot
    }
}

/// Everything identifying one supervised call attempt — the draw key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallKey<'a> {
    /// Behavioural fingerprint of the model under evaluation.
    pub fingerprint: u64,
    /// Question id.
    pub question_id: &'a str,
    /// Which call is being made.
    pub site: CallSite,
    /// The pass@k / judge-vote attempt index.
    pub attempt: u64,
    /// The supervisor's recovery attempt (0 = first try).
    pub recovery: u64,
}

/// Payload of an injected worker crash. Distinct from ordinary panic
/// payloads so [`install_quiet_panic_hook`] can silence *only* injected
/// crashes while real bugs still print.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// Fingerprint of the model whose evaluation crashed.
    pub fingerprint: u64,
    /// The question being evaluated.
    pub question_id: String,
}

/// Installs (once per process) a panic hook that swallows the default
/// "thread panicked" stderr noise for [`InjectedPanic`] payloads and
/// delegates everything else to the previous hook. Chaos tests and
/// benches call this so thousands of injected crashes do not flood the
/// log; real panics keep their diagnostics.
pub fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Draws faults from a [`FaultPlan`]. Stateless: every decision is a
/// pure function of the plan and the [`CallKey`], which is what makes
/// injected chaos reproducible across worker counts and resumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector for `plan` (validated).
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultInjector { plan }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault (if any) injected into one call attempt.
    pub fn draw(&self, key: CallKey<'_>) -> Option<FaultKind> {
        if key.site == CallSite::Inference && self.plan.broken_models.contains(&key.fingerprint) {
            return Some(FaultKind::Transient);
        }
        if self.plan.total_rate() == 0.0 {
            return None;
        }
        // Rate-limit bursts: a RateLimited draw at recovery r also
        // rejects recovery attempts r+1 .. r+burst (burst in {1, 2}),
        // modelling a provider that stays saturated briefly.
        for earlier in key.recovery.saturating_sub(2)..key.recovery {
            let at = CallKey {
                recovery: earlier,
                ..key
            };
            if self.base_draw(at) == Some(FaultKind::RateLimited)
                && earlier + self.burst_len(at) >= key.recovery
            {
                return Some(FaultKind::RateLimited);
            }
        }
        self.base_draw(key)
    }

    /// Corrupts a clean response text according to the fault kind.
    /// Only [`FaultKind::Truncated`] and [`FaultKind::Garbled`] leave
    /// degraded evidence; other faults destroy the response entirely.
    pub fn corrupt(&self, kind: FaultKind, clean: &str, key: CallKey<'_>) -> Option<String> {
        match kind {
            FaultKind::Truncated => {
                let chars: Vec<char> = clean.chars().collect();
                let keep = chars.len() / 2;
                let mut s: String = chars[..keep].iter().collect();
                s.push_str(TRUNCATION_MARKER);
                Some(s)
            }
            FaultKind::Garbled => {
                let stride = 1 + (self.mix(key) % 3) as usize;
                Some(
                    clean
                        .chars()
                        .enumerate()
                        .map(|(i, c)| {
                            if i % (stride + 1) == stride {
                                GARBLE_CHAR
                            } else {
                                c
                            }
                        })
                        .collect(),
                )
            }
            _ => None,
        }
    }

    fn base_draw(&self, key: CallKey<'_>) -> Option<FaultKind> {
        let u = self.mix(key) as f64 / (u64::MAX as f64 + 1.0);
        let mut edge = 0.0;
        for (rate, kind) in [
            (self.plan.timeout_rate, FaultKind::Timeout),
            (self.plan.truncate_rate, FaultKind::Truncated),
            (self.plan.garble_rate, FaultKind::Garbled),
            (self.plan.rate_limit_rate, FaultKind::RateLimited),
            (self.plan.transient_rate, FaultKind::Transient),
            (self.plan.panic_rate, FaultKind::WorkerPanic),
        ] {
            edge += rate;
            if u < edge {
                return Some(kind);
            }
        }
        None
    }

    /// How many extra recovery attempts a rate-limit burst covers (1-2).
    fn burst_len(&self, key: CallKey<'_>) -> u64 {
        1 + (self.mix(key).rotate_left(17) % 2)
    }

    /// FNV-1a over the full call key (the repo's standard seeded-hash
    /// idiom, see `VlmPipeline::rng_for`).
    fn mix(&self, key: CallKey<'_>) -> u64 {
        let mut h = self.plan.seed ^ 0xcbf2_9ce4_8422_2325u64;
        let site = match key.site {
            CallSite::Inference => 0x1fu8,
            CallSite::Judge => 0x2eu8,
        };
        for b in key
            .fingerprint
            .to_le_bytes()
            .into_iter()
            .chain(key.question_id.bytes())
            .chain([site])
            .chain(key.attempt.to_le_bytes())
            .chain(key.recovery.to_le_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // final avalanche so low-entropy keys (attempt 0 vs 1) decorrelate
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(recovery: u64) -> CallKey<'static> {
        CallKey {
            fingerprint: 0xabcd,
            question_id: "digital-007",
            site: CallSite::Inference,
            attempt: 0,
            recovery,
        }
    }

    #[test]
    fn zero_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::none());
        for r in 0..64 {
            assert_eq!(inj.draw(key(r)), None);
        }
    }

    #[test]
    fn draws_are_deterministic_and_key_sensitive() {
        let inj = FaultInjector::new(FaultPlan::uniform(42, 0.08));
        let a = inj.draw(key(0));
        assert_eq!(a, inj.draw(key(0)), "same key, same draw");

        // across many keys the draw must vary (different questions /
        // attempts see independent faults)
        let mut kinds = std::collections::BTreeSet::new();
        for q in 0..200u32 {
            let id = format!("digital-{q:03}");
            let k = CallKey {
                fingerprint: 7,
                question_id: &id,
                site: CallSite::Inference,
                attempt: 0,
                recovery: 0,
            };
            kinds.insert(inj.draw(k).map(FaultKind::label));
        }
        assert!(kinds.len() >= 4, "variety across questions: {kinds:?}");
    }

    #[test]
    fn seed_changes_the_storm() {
        let a = FaultInjector::new(FaultPlan::uniform(1, 0.1));
        let b = FaultInjector::new(FaultPlan::uniform(2, 0.1));
        let differs = (0..100u64).any(|r| a.draw(key(r)) != b.draw(key(r)));
        assert!(differs);
    }

    #[test]
    fn empirical_rates_are_roughly_calibrated() {
        let inj = FaultInjector::new(FaultPlan::uniform(9, 0.05)); // 30% total
        let mut faulted = 0usize;
        let n = 2000u32;
        for q in 0..n {
            let id = format!("q-{q}");
            let k = CallKey {
                fingerprint: 3,
                question_id: &id,
                site: CallSite::Judge,
                attempt: 0,
                recovery: 0,
            };
            if inj.draw(k).is_some() {
                faulted += 1;
            }
        }
        let rate = faulted as f64 / n as f64;
        assert!((rate - 0.30).abs() < 0.04, "observed fault rate {rate}");
    }

    #[test]
    fn broken_model_always_faults_inference_only() {
        let inj = FaultInjector::new(FaultPlan::none().with_broken_model(0xdead));
        let k = CallKey {
            fingerprint: 0xdead,
            ..key(0)
        };
        assert_eq!(inj.draw(k), Some(FaultKind::Transient));
        let judge = CallKey {
            site: CallSite::Judge,
            ..k
        };
        assert_eq!(inj.draw(judge), None, "judge calls unaffected");
        assert_eq!(inj.draw(key(0)), None, "other models unaffected");
    }

    #[test]
    fn rate_limit_bursts_extend_forward() {
        // find a key whose base draw is RateLimited, then check the next
        // recovery attempt is also rejected (burst >= 1)
        let inj = FaultInjector::new(FaultPlan {
            rate_limit_rate: 0.5,
            ..FaultPlan::uniform(77, 0.0)
        });
        let mut checked = 0;
        for r in 0..200u64 {
            if inj.base_draw(key(r)) == Some(FaultKind::RateLimited) {
                assert_eq!(
                    inj.draw(key(r + 1)),
                    Some(FaultKind::RateLimited),
                    "burst covers at least the following attempt"
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "enough bursts exercised");
    }

    #[test]
    fn corruption_is_detectable() {
        let inj = FaultInjector::new(FaultPlan::uniform(5, 0.1));
        let clean = "The answer is (d) Q = S'Q + SR'";
        let truncated = inj
            .corrupt(FaultKind::Truncated, clean, key(0))
            .expect("leaves evidence");
        assert!(is_corrupted_text(&truncated));
        assert!(truncated.len() < clean.len() + TRUNCATION_MARKER.len() + 1);
        let garbled = inj
            .corrupt(FaultKind::Garbled, clean, key(0))
            .expect("leaves evidence");
        assert!(is_corrupted_text(&garbled));
        assert_eq!(garbled.chars().count(), clean.chars().count());
        assert!(!is_corrupted_text(clean));
        assert_eq!(inj.corrupt(FaultKind::Timeout, clean, key(0)), None);
    }

    #[test]
    fn plan_validation_rejects_bad_rates() {
        let r = std::panic::catch_unwind(|| FaultPlan::uniform(0, 0.3).validate());
        assert!(r.is_err(), "6 x 0.3 = 1.8 > 1 must be rejected");
        let r = std::panic::catch_unwind(|| {
            FaultPlan {
                timeout_rate: -0.1,
                ..FaultPlan::none()
            }
            .validate()
        });
        assert!(r.is_err());
    }

    #[test]
    fn stream_coords_roundtrip_the_global_index() {
        for global in [0usize, 1, 15, 16, 17, 141, 142, 1419, 14_200] {
            let c = StreamCoord::of(global);
            assert_eq!(c.global_index(), global);
            assert!(c.slot < StreamCoord::WINDOW);
            assert_eq!(c.window, global / StreamCoord::WINDOW);
        }
        // window boundaries are exactly multiples of WINDOW
        assert_eq!(StreamCoord::of(0), StreamCoord { window: 0, slot: 0 });
        assert_eq!(
            StreamCoord::of(StreamCoord::WINDOW),
            StreamCoord { window: 1, slot: 0 }
        );
    }

    #[test]
    fn plan_serde_roundtrip() {
        let plan = FaultPlan::uniform(123, 0.04).with_broken_model(99);
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, plan);
    }
}

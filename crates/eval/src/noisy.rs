//! A noisy judge: models the imperfection of the paper's GPT-4
//! auto-evaluation (an LLM judge occasionally flips an equivalence
//! verdict) and the hybrid manual-override mechanism (§IV: "for certain
//! questions ... we conduct manual checks by the annotators").

use std::collections::HashMap;

use chipvqa_core::question::Question;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::judge::{Judge, RuleJudge};

/// Wraps a base judge with a per-verdict flip probability — the
/// robustness model of an LLM auto-judge.
#[derive(Debug, Clone)]
pub struct NoisyJudge<J> {
    inner: J,
    flip_probability: f64,
    seed: u64,
}

impl<J: Judge> NoisyJudge<J> {
    /// Wraps `inner`, flipping each verdict with `flip_probability`
    /// (deterministically per (question, response), so evaluations stay
    /// reproducible).
    ///
    /// # Panics
    ///
    /// Panics unless the probability is in `[0, 1]`.
    pub fn new(inner: J, flip_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "probability out of range"
        );
        NoisyJudge {
            inner,
            flip_probability,
            seed,
        }
    }
}

impl<J: Judge> Judge for NoisyJudge<J> {
    fn is_correct(&self, question: &Question, response: &str) -> bool {
        self.verdict(question, response, 0)
    }

    /// Redraws the flip noise per judging attempt (attempt 0 keeps the
    /// historical hash, so single-shot evaluations are unchanged). This
    /// is the flakiness that the executor's retry-with-majority-vote
    /// averages out.
    fn verdict(&self, question: &Question, response: &str, judge_attempt: u64) -> bool {
        let verdict = self.inner.is_correct(question, response);
        if self.flip_probability == 0.0 {
            return verdict;
        }
        let mut h = self.seed ^ 0x51ed_2701;
        for b in question.id.bytes().chain(response.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if judge_attempt > 0 {
            for b in judge_attempt.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        let mut rng = StdRng::seed_from_u64(h);
        if rng.gen_bool(self.flip_probability) {
            !verdict
        } else {
            verdict
        }
    }
}

/// The paper's hybrid evaluation: an automatic judge plus explicit
/// per-question manual verdict overrides for the visually-entangled
/// cases an auto-judge cannot settle.
#[derive(Debug, Clone, Default)]
pub struct HybridJudge {
    auto: RuleJudge,
    overrides: HashMap<String, bool>,
}

impl HybridJudge {
    /// A hybrid judge with no overrides yet.
    pub fn new() -> Self {
        HybridJudge::default()
    }

    /// Records an annotator verdict for a question id, bypassing the
    /// auto judge for that question.
    pub fn override_verdict(&mut self, question_id: impl Into<String>, correct: bool) {
        self.overrides.insert(question_id.into(), correct);
    }

    /// Number of manual overrides registered.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

impl Judge for HybridJudge {
    fn is_correct(&self, question: &Question, response: &str) -> bool {
        match self.overrides.get(&question.id) {
            Some(&verdict) => verdict,
            None => self.auto.is_correct(question, response),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::ChipVqa;
    use chipvqa_models::{ModelZoo, VlmPipeline};

    use crate::harness::{evaluate_with_judge, EvalOptions};

    #[test]
    fn zero_noise_is_the_rule_judge() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let clean = evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &RuleJudge::new());
        let noisy = evaluate_with_judge(
            &pipe,
            &bench,
            EvalOptions::default(),
            &NoisyJudge::new(RuleJudge::new(), 0.0, 42),
        );
        assert_eq!(clean.overall(), noisy.overall());
    }

    #[test]
    fn table2_headline_robust_to_judge_noise() {
        // A 5% verdict-flip rate (a pessimistic LLM-judge error) moves
        // the GPT-4o headline by at most a few points — the paper's
        // conclusions survive an imperfect auto-judge.
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let clean =
            evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &RuleJudge::new()).overall();
        for seed in [1u64, 2, 3] {
            let noisy = evaluate_with_judge(
                &pipe,
                &bench,
                EvalOptions::default(),
                &NoisyJudge::new(RuleJudge::new(), 0.05, seed),
            )
            .overall();
            assert!(
                (noisy - clean).abs() < 0.08,
                "seed {seed}: noisy {noisy} vs clean {clean}"
            );
        }
    }

    #[test]
    fn full_noise_inverts_everything() {
        let bench = ChipVqa::standard();
        let j = NoisyJudge::new(RuleJudge::new(), 1.0, 0);
        let q = &bench.questions()[0];
        let base = RuleJudge::new().is_correct(q, &q.golden_text());
        assert!(base);
        assert!(!j.is_correct(q, &q.golden_text()));
    }

    #[test]
    fn hybrid_overrides_win() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        let mut j = HybridJudge::new();
        assert!(j.is_correct(q, &q.golden_text()), "auto path first");
        j.override_verdict(q.id.clone(), false);
        assert!(!j.is_correct(q, &q.golden_text()), "annotator overrules");
        assert_eq!(j.override_count(), 1);
        // other questions still use the auto judge
        let other = &bench.questions()[1];
        assert!(j.is_correct(other, &other.golden_text()));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = NoisyJudge::new(RuleJudge::new(), 1.5, 0);
    }
}

//! Supervised execution: deadlines, bounded retries, circuit breakers.
//!
//! [`Supervisor`] sits between the executor's per-question loop and the
//! fallible outside world ([`VlmPipeline::infer`] and [`Judge::verdict`]
//! calls, with faults injected by a [`FaultInjector`]). It enforces a
//! per-call deadline, retries transient failures with bounded, seeded,
//! jittered backoff (the same jitter stream as
//! [`RetryPolicy`](crate::executor::RetryPolicy)), and runs one
//! three-state [`CircuitBreaker`] per model so a persistently failing
//! backend is shed instead of burning the whole grid's time budget.
//!
//! Failures that exhaust recovery become a structured [`EvalError`]
//! recorded on the question's outcome — a degraded report says exactly
//! *what* it is missing and *why*, instead of being silently wrong.
//!
//! # Determinism
//!
//! Breaker decisions are *windowed*: the question sequence is cut into
//! fixed windows of [`BREAKER_WINDOW`] questions, the breaker state
//! resets at every window boundary, and within a window the trajectory
//! is replayed from each question's *first-attempt health* (a pure
//! function of the fault plan). A decision therefore depends only on
//! `(plan seed, model fingerprint, window index, the window's own
//! question ids)` — never on how much of the collection exists yet, so
//! the same trajectory falls out whether the bench was materialized
//! up-front (batch replays it into a [`BreakerSchedule`] workers
//! consult read-only) or generated lazily (the streaming producer
//! drives a [`WindowedBreaker`] incrementally). That is what lets
//! supervised streamed reports be byte-identical to supervised batch
//! reports at any worker count and any shard length.

use std::panic::panic_any;

use chipvqa_core::question::Question;
use chipvqa_core::ChipVqa;
use chipvqa_models::VlmPipeline;
use chipvqa_telemetry::{kv, Telemetry};
use serde::{Deserialize, Serialize};

use crate::cache::{AnswerCache, CachedAnswer};
use crate::executor::{seeded_jitter_ms, RetryPolicy};
use crate::fault::{CallKey, CallSite, FaultInjector, FaultKind, FaultPlan, InjectedPanic};
use crate::judge::Judge;

/// Terminal failure taxonomy: why a question has no trustworthy answer.
///
/// Every variant maps to a [`FaultKind`] that exhausted recovery, plus
/// [`EvalError::BreakerOpen`] for questions the circuit breaker shed
/// without attempting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalError {
    /// Every attempt exceeded the supervisor's deadline.
    Timeout {
        /// The deadline that was enforced, in milliseconds.
        deadline_ms: u64,
    },
    /// Every attempt returned a truncated response.
    Truncated,
    /// Every attempt returned a garbled response.
    Garbled,
    /// Every attempt was rejected by rate limiting.
    RateLimited,
    /// Every attempt hit a transient error.
    Transient,
    /// The worker evaluating the question crashed (caught and isolated).
    WorkerPanic,
    /// The model's circuit breaker was open; the question was never
    /// attempted.
    BreakerOpen,
}

impl EvalError {
    /// Stable short label for failure-accounting tables.
    pub fn label(&self) -> &'static str {
        match self {
            EvalError::Timeout { .. } => "timeout",
            EvalError::Truncated => "truncated",
            EvalError::Garbled => "garbled",
            EvalError::RateLimited => "rate-limited",
            EvalError::Transient => "transient",
            EvalError::WorkerPanic => "worker-panic",
            EvalError::BreakerOpen => "breaker-open",
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Timeout { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded on every attempt")
            }
            EvalError::Truncated => write!(f, "response truncated on every attempt"),
            EvalError::Garbled => write!(f, "response garbled on every attempt"),
            EvalError::RateLimited => write!(f, "rate-limited on every attempt"),
            EvalError::Transient => write!(f, "transient errors exhausted retries"),
            EvalError::WorkerPanic => write!(f, "worker panicked; question quarantined"),
            EvalError::BreakerOpen => write!(f, "skipped: model circuit breaker open"),
        }
    }
}

/// Bounded retry behaviour for one supervised call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries after the first attempt (so a call is made at most
    /// `max_retries + 1` times).
    pub max_retries: u64,
    /// Base backoff before retry `r`, growing as `base << (r - 1)` with
    /// seeded jitter (the [`RetryPolicy`] stream). Zero disables
    /// sleeping — right for simulated faults and tests.
    pub backoff_base_ms: u64,
    /// Seed for the backoff jitter.
    pub seed: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_base_ms: 0,
            seed: 0,
        }
    }
}

/// Circuit breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that open the breaker.
    pub failure_threshold: u32,
    /// Questions shed while open before a half-open probe is allowed.
    pub cooldown: u32,
    /// Consecutive successful probes that close the breaker again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: 8,
            probe_successes: 2,
        }
    }
}

impl BreakerConfig {
    /// Panics on degenerate configurations.
    pub fn validate(&self) {
        assert!(self.failure_threshold >= 1, "threshold must be >= 1");
        assert!(self.cooldown >= 1, "cooldown must be >= 1");
        assert!(self.probe_successes >= 1, "probe count must be >= 1");
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// Calls are shed without being attempted.
    Open,
    /// Trial calls probe whether the backend recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable short label (used in telemetry events).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-model three-state circuit breaker (closed → open → half-open).
///
/// Driven in *question order* — [`allow`](CircuitBreaker::allow) is asked
/// once per question, then exactly one of
/// [`record_success`](CircuitBreaker::record_success) /
/// [`record_failure`](CircuitBreaker::record_failure) reports how the
/// attempt went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    shed_while_open: u32,
    probe_streak: u32,
    trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            shed_while_open: 0,
            probe_streak: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has opened.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Whether the next call may proceed. While open, sheds `cooldown`
    /// calls, then transitions to half-open and lets a probe through.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.shed_while_open >= self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_streak = 0;
                    true
                } else {
                    self.shed_while_open += 1;
                    false
                }
            }
        }
    }

    /// Reports a successful (non-terminal-failure) attempt.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_streak += 1;
                if self.probe_streak >= self.config.probe_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            BreakerState::Open => unreachable!("open breaker allowed no call"),
        }
    }

    /// Reports a terminally failed attempt.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => unreachable!("open breaker allowed no call"),
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.shed_while_open = 0;
        self.probe_streak = 0;
        self.trips += 1;
    }
}

/// Questions per breaker window: the state-reset period of the
/// windowed breaker (see the module docs on determinism). Equal to
/// [`StreamCoord::WINDOW`](crate::fault::StreamCoord::WINDOW) — the
/// streamed call-site coordinate system names exactly these windows.
pub const BREAKER_WINDOW: usize = crate::fault::StreamCoord::WINDOW;

/// The streaming face of the windowed breaker: incremental per-window
/// replay, advanced one question at a time in global-index order by
/// [`Supervisor::admit`]. Holds O(1) state — exactly what a lazily
/// generated collection permits — while producing decisions identical
/// to the batch [`BreakerSchedule`] (which is itself computed by
/// driving one of these over the materialized bench).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedBreaker {
    zero: bool,
    breaker: CircuitBreaker,
    next_index: usize,
    trips: u32,
}

impl WindowedBreaker {
    /// Cumulative breaker trips across every window so far.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Breaker state after the most recent decision (resets at window
    /// boundaries).
    pub fn state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Global index of the next question to be decided.
    pub fn next_index(&self) -> usize {
        self.next_index
    }
}

/// Which telemetry namespace a windowed-breaker decision reports under:
/// `breaker.*` for the batch schedule replay, `stream.breaker.*` for
/// streamed intake. The decisions themselves are identical — only the
/// names differ, so traces say which path shed a question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerScope {
    /// Batch replay into a [`BreakerSchedule`] (`breaker.*`).
    Batch,
    /// Incremental streamed intake (`stream.breaker.*`).
    Stream,
}

impl BreakerScope {
    pub(crate) fn transition(self) -> &'static str {
        match self {
            BreakerScope::Batch => "breaker.transition",
            BreakerScope::Stream => "stream.breaker.transition",
        }
    }

    pub(crate) fn transitions(self) -> &'static str {
        match self {
            BreakerScope::Batch => "breaker.transitions",
            BreakerScope::Stream => "stream.breaker.transitions",
        }
    }

    pub(crate) fn trips(self) -> &'static str {
        match self {
            BreakerScope::Batch => "breaker.trips",
            BreakerScope::Stream => "stream.breaker.trips",
        }
    }
}

/// Precomputed breaker decisions for one model over one benchmark —
/// the windowed trajectory replayed over the materialized question
/// sequence, shared read-only by all workers (see the module docs on
/// determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerSchedule {
    attempts: Vec<bool>,
    trips: u32,
    final_state: BreakerState,
}

impl BreakerSchedule {
    /// Whether question `index` is attempted (false = shed by breaker).
    pub fn attempts_question(&self, index: usize) -> bool {
        self.attempts.get(index).copied().unwrap_or(true)
    }

    /// How many questions the breaker shed.
    pub fn shed_count(&self) -> usize {
        self.attempts.iter().filter(|&&a| !a).count()
    }

    /// How many times the breaker opened over the run.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Breaker state after the last question.
    pub fn final_state(&self) -> BreakerState {
        self.final_state
    }
}

/// Supervised-execution policy: fault injection (for chaos runs),
/// deadline, recovery retries and circuit breaking. Attach to a
/// [`ParallelExecutor`](crate::executor::ParallelExecutor) via
/// [`with_supervisor`](crate::executor::ParallelExecutor::with_supervisor).
#[derive(Debug, Clone, PartialEq)]
pub struct Supervisor {
    injector: FaultInjector,
    recovery: RecoveryPolicy,
    deadline_ms: u64,
    breaker: BreakerConfig,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::new(FaultPlan::none())
    }
}

impl Supervisor {
    /// A supervisor injecting `plan`, with default recovery (2 retries,
    /// no sleep), a 30 s deadline and default breaker tuning.
    pub fn new(plan: FaultPlan) -> Self {
        Supervisor {
            injector: FaultInjector::new(plan),
            recovery: RecoveryPolicy::default(),
            deadline_ms: 30_000,
            breaker: BreakerConfig::default(),
        }
    }

    /// Sets the retry policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the per-call deadline recorded on timeout failures.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Sets the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        breaker.validate();
        self.breaker = breaker;
        self
    }

    /// The fault plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        self.injector.plan()
    }

    /// The recovery policy.
    pub fn recovery(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The breaker tuning.
    pub fn breaker_config(&self) -> BreakerConfig {
        self.breaker
    }

    /// First-attempt health of one `(model, question)` cell: the terminal
    /// error the supervised first pass attempt would suffer, or `None`
    /// if it recovers. A pure function of the fault plan — no inference
    /// runs — which is what lets breaker trajectories be precomputed.
    pub fn question_health(&self, fingerprint: u64, question_id: &str) -> Option<EvalError> {
        for site in [CallSite::Inference, CallSite::Judge] {
            let mut last = None;
            for recovery in 0..=self.recovery.max_retries {
                let drawn = self.injector.draw(CallKey {
                    fingerprint,
                    question_id,
                    site,
                    attempt: 0,
                    recovery,
                });
                match drawn {
                    None => {
                        last = None;
                        break;
                    }
                    Some(FaultKind::WorkerPanic) => return Some(EvalError::WorkerPanic),
                    Some(kind) => last = Some(kind),
                }
            }
            if let Some(kind) = last {
                return Some(self.error_for(kind));
            }
        }
        None
    }

    /// Replays the windowed breaker over `bench` in question order for
    /// one model, producing the deterministic shed/attempt schedule
    /// workers obey.
    pub fn breaker_schedule(&self, fingerprint: u64, bench: &ChipVqa) -> BreakerSchedule {
        self.breaker_schedule_traced(fingerprint, bench, &Telemetry::disabled())
    }

    /// [`breaker_schedule`](Supervisor::breaker_schedule), additionally
    /// emitting one `breaker.transition` event per state change (with
    /// the question that drove it) and bumping the
    /// `breaker.transitions` / `breaker.trips` counters.
    pub fn breaker_schedule_traced(
        &self,
        fingerprint: u64,
        bench: &ChipVqa,
        tele: &Telemetry,
    ) -> BreakerSchedule {
        if self.plan().is_zero() {
            return BreakerSchedule {
                attempts: vec![true; bench.len()],
                trips: 0,
                final_state: BreakerState::Closed,
            };
        }
        let mut wb = self.stream_breaker();
        let attempts: Vec<bool> = bench
            .iter()
            .map(|q| self.admit_traced(&mut wb, fingerprint, &q.id, tele, BreakerScope::Batch))
            .collect();
        BreakerSchedule {
            attempts,
            trips: wb.trips(),
            final_state: wb.state(),
        }
    }

    /// A fresh [`WindowedBreaker`] positioned at global index 0 — the
    /// incremental twin of [`breaker_schedule`](Supervisor::breaker_schedule)
    /// for streamed intake, where the bench is never materialized.
    pub fn stream_breaker(&self) -> WindowedBreaker {
        self.stream_breaker_at(0)
    }

    /// A [`WindowedBreaker`] positioned at the start of breaker window
    /// `window` (global index `window × BREAKER_WINDOW`). Because state
    /// resets at every window boundary, decisions from here on are
    /// identical to a breaker that walked the whole prefix — the
    /// order-independence the streamed requeue path and the chaos wall
    /// rely on.
    pub fn stream_breaker_at(&self, window: usize) -> WindowedBreaker {
        WindowedBreaker {
            zero: self.plan().is_zero(),
            breaker: CircuitBreaker::new(self.breaker),
            next_index: window * BREAKER_WINDOW,
            trips: 0,
        }
    }

    /// Decides the question at `wb`'s next global index: `true` to
    /// attempt, `false` to shed. Must be called in global-index order
    /// (the stream producer's natural order). A zero plan admits
    /// everything without touching breaker state, so zero-plan
    /// supervised streaming stays byte- and trace-identical to
    /// unsupervised streaming.
    pub fn admit(&self, wb: &mut WindowedBreaker, fingerprint: u64, question_id: &str) -> bool {
        self.admit_traced(
            wb,
            fingerprint,
            question_id,
            &Telemetry::disabled(),
            BreakerScope::Stream,
        )
    }

    /// [`admit`](Supervisor::admit) with telemetry: state changes emit
    /// one `{scope}.transition` event and bump the
    /// `{scope}.transitions` / `{scope}.trips` counters, where the
    /// scope prefix is `breaker` (batch replay) or `stream.breaker`
    /// (streamed intake). Stream events additionally carry the
    /// [`StreamCoord`](crate::fault::StreamCoord) window.
    pub(crate) fn admit_traced(
        &self,
        wb: &mut WindowedBreaker,
        fingerprint: u64,
        question_id: &str,
        tele: &Telemetry,
        scope: BreakerScope,
    ) -> bool {
        let index = wb.next_index;
        wb.next_index += 1;
        if wb.zero {
            return true;
        }
        if index.is_multiple_of(BREAKER_WINDOW) {
            // window boundary: state resets, cumulative trips persist
            wb.breaker = CircuitBreaker::new(self.breaker);
        }
        let before = wb.breaker.state();
        let trips_before = wb.breaker.trips();
        let allowed = wb.breaker.allow();
        if allowed {
            match self.question_health(fingerprint, question_id) {
                None => wb.breaker.record_success(),
                Some(_) => wb.breaker.record_failure(),
            }
        }
        let after = wb.breaker.state();
        if tele.enabled() && after != before {
            tele.counter(scope.transitions(), 1);
            let mut kvs = vec![
                kv("model_fingerprint", fingerprint),
                kv("question", question_id),
                kv("from", before.label()),
                kv("to", after.label()),
            ];
            if scope == BreakerScope::Stream {
                kvs.push(kv("window", crate::fault::StreamCoord::of(index).window));
            }
            tele.event(scope.transition(), kvs);
        }
        if wb.breaker.trips() > trips_before {
            wb.trips += 1;
            tele.counter(scope.trips(), 1);
        }
        allowed
    }

    /// Supervised inference: the faultable, retried, cache-aware call.
    /// On success returns the *clean* answer (and only clean answers are
    /// ever inserted into the cache); on terminal failure returns the
    /// error plus any degraded response text (truncated/garbled evidence)
    /// for the report. The cached path is the only insertion route, so a
    /// cache backed by a persistent
    /// [`AnswerStore`](crate::store::AnswerStore) can never persist a
    /// faulted answer either — and the store independently re-checks
    /// the corruption markers in release builds as a second line of
    /// defence.
    ///
    /// An injected [`FaultKind::WorkerPanic`] genuinely panics — the
    /// executor isolates it with `catch_unwind`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn infer(
        &self,
        pipe: &VlmPipeline,
        question: &Question,
        downsample: usize,
        attempt: u64,
        cache: Option<&AnswerCache>,
        tele: &Telemetry,
        dataset_fp: u64,
    ) -> Result<CachedAnswer, (EvalError, Option<String>)> {
        let fingerprint = pipe.fingerprint();
        let mut last: Option<(FaultKind, Option<String>)> = None;
        for recovery in 0..=self.recovery.max_retries {
            if recovery > 0 {
                self.backoff(&question.id, recovery);
                tele.counter("supervisor.retry", 1);
            }
            let key = CallKey {
                fingerprint,
                question_id: &question.id,
                site: CallSite::Inference,
                attempt,
                recovery,
            };
            match self.injector.draw(key) {
                None => {
                    return Ok(crate::executor::infer_cached_for(
                        pipe, question, downsample, attempt, cache, tele, dataset_fp,
                    ));
                }
                Some(FaultKind::WorkerPanic) => {
                    self.note_fault(tele, FaultKind::WorkerPanic, key);
                    panic_any(InjectedPanic {
                        fingerprint,
                        question_id: question.id.clone(),
                    })
                }
                Some(kind) => {
                    self.note_fault(tele, kind, key);
                    // Truncation/garbling corrupt a response that did
                    // arrive; reproduce it (uncached!) so the degraded
                    // evidence is real.
                    let degraded = self.injector.corrupt(
                        kind,
                        &pipe.infer(question, downsample, attempt).text,
                        key,
                    );
                    last = Some((kind, degraded));
                }
            }
        }
        let (kind, degraded) = last.expect("at least one recovery attempt ran");
        Err((self.error_for(kind), degraded))
    }

    /// Records one injected fault: the `fault.injected` counter (plus
    /// `supervisor.deadline_overrun` for timeouts) and, when a sink is
    /// attached, a structured `fault.injected` event tagged with the
    /// plan seed and full call key.
    fn note_fault(&self, tele: &Telemetry, kind: FaultKind, key: CallKey<'_>) {
        if !tele.enabled() {
            return;
        }
        tele.counter("fault.injected", 1);
        if kind == FaultKind::Timeout {
            tele.counter("supervisor.deadline_overrun", 1);
        }
        tele.event(
            "fault.injected",
            vec![
                kv("kind", kind.label()),
                kv("site", key.site.label()),
                kv("question", key.question_id),
                kv("plan_seed", self.plan().seed),
                kv("model_fingerprint", key.fingerprint),
                kv("attempt", key.attempt),
                kv("recovery", key.recovery),
            ],
        );
    }

    /// One supervised judge verdict (one voting attempt).
    pub(crate) fn verdict(
        &self,
        judge: &dyn Judge,
        fingerprint: u64,
        question: &Question,
        response: &str,
        judge_attempt: u64,
        tele: &Telemetry,
    ) -> Result<bool, EvalError> {
        let mut last = None;
        for recovery in 0..=self.recovery.max_retries {
            if recovery > 0 {
                self.backoff(&question.id, recovery);
                tele.counter("supervisor.retry", 1);
            }
            let key = CallKey {
                fingerprint,
                question_id: &question.id,
                site: CallSite::Judge,
                attempt: judge_attempt,
                recovery,
            };
            match self.injector.draw(key) {
                None => return Ok(judge.verdict(question, response, judge_attempt)),
                Some(FaultKind::WorkerPanic) => {
                    self.note_fault(tele, FaultKind::WorkerPanic, key);
                    panic_any(InjectedPanic {
                        fingerprint,
                        question_id: question.id.clone(),
                    })
                }
                Some(kind) => {
                    self.note_fault(tele, kind, key);
                    last = Some(kind);
                }
            }
        }
        Err(self.error_for(last.expect("at least one recovery attempt ran")))
    }

    /// Supervised majority vote: [`RetryPolicy::judged`] with every
    /// underlying verdict call going through fault injection + recovery.
    pub(crate) fn judged(
        &self,
        judge: &dyn Judge,
        retry: &RetryPolicy,
        fingerprint: u64,
        question: &Question,
        response: &str,
        tele: &Telemetry,
    ) -> Result<bool, EvalError> {
        let first = self.verdict(judge, fingerprint, question, response, 0, tele)?;
        if retry.attempts <= 1 {
            return Ok(first);
        }
        let mut yes = u64::from(first);
        for attempt in 1..retry.attempts {
            retry.sleep_backoff(question, attempt);
            if self.verdict(judge, fingerprint, question, response, attempt, tele)? {
                yes += 1;
            }
        }
        // strict majority, ties to the first attempt
        if 2 * yes == retry.attempts {
            Ok(first)
        } else {
            Ok(2 * yes > retry.attempts)
        }
    }

    fn error_for(&self, kind: FaultKind) -> EvalError {
        match kind {
            FaultKind::Timeout => EvalError::Timeout {
                deadline_ms: self.deadline_ms,
            },
            FaultKind::Truncated => EvalError::Truncated,
            FaultKind::Garbled => EvalError::Garbled,
            FaultKind::RateLimited => EvalError::RateLimited,
            FaultKind::Transient => EvalError::Transient,
            FaultKind::WorkerPanic => EvalError::WorkerPanic,
        }
    }

    /// Jittered exponential backoff before recovery attempt `recovery`
    /// (>= 1), sharing [`RetryPolicy`]'s seeded jitter stream.
    fn backoff(&self, question_id: &str, recovery: u64) {
        if self.recovery.backoff_base_ms == 0 {
            return;
        }
        let base = self.recovery.backoff_base_ms << (recovery - 1).min(16);
        let jitter = seeded_jitter_ms(self.recovery.seed, question_id, recovery, base);
        std::thread::sleep(std::time::Duration::from_millis(base + jitter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::RuleJudge;
    use chipvqa_models::ModelZoo;

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: 2,
            probe_successes: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);

        // cooldown: two calls shed, then a half-open probe
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "probe after cooldown");
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // two successful probes close it
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: 1,
            probe_successes: 1,
        });
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(b.allow(), "half-open probe");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe reopens");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 1,
            probe_successes: 1,
        });
        assert!(b.allow());
        b.record_failure();
        assert!(b.allow());
        b.record_success();
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn zero_plan_schedule_attempts_everything() {
        let bench = ChipVqa::standard();
        let sup = Supervisor::new(FaultPlan::none());
        let sched = sup.breaker_schedule(1234, &bench);
        assert_eq!(sched.shed_count(), 0);
        assert_eq!(sched.trips(), 0);
        assert_eq!(sched.final_state(), BreakerState::Closed);
        assert!((0..bench.len()).all(|i| sched.attempts_question(i)));
    }

    #[test]
    fn broken_model_trips_breaker_and_sheds_most_of_the_run() {
        let bench = ChipVqa::standard();
        let fp = 0xfeed_beef;
        let sup = Supervisor::new(FaultPlan::none().with_broken_model(fp));
        let sched = sup.breaker_schedule(fp, &bench);
        assert!(sched.trips() >= 1, "breaker must open");
        assert!(
            sched.shed_count() > bench.len() / 2,
            "most of a dead model's grid is shed, got {}",
            sched.shed_count()
        );
        // per window, attempts are bounded by threshold + periodic
        // probes; the windowed reset restarts that budget each window
        let attempted = bench.len() - sched.shed_count();
        let cfg = sup.breaker_config();
        let per_window =
            cfg.failure_threshold as usize + BREAKER_WINDOW / (cfg.cooldown as usize + 1) + 1;
        let max_attempted = per_window * bench.len().div_ceil(BREAKER_WINDOW);
        assert!(
            attempted <= max_attempted,
            "{attempted} attempted > bound {max_attempted}"
        );
        // a healthy model on the same plan is untouched
        assert_eq!(sup.breaker_schedule(0x1, &bench).shed_count(), 0);
    }

    #[test]
    fn incremental_admits_match_the_batch_schedule() {
        let bench = ChipVqa::standard();
        for (fp, plan) in [
            (
                0xfeed_beef,
                FaultPlan::none().with_broken_model(0xfeed_beef),
            ),
            (42, FaultPlan::uniform(7, 0.08)),
            (42, FaultPlan::uniform(20_260_806, 0.15)),
        ] {
            let sup = Supervisor::new(plan);
            let sched = sup.breaker_schedule(fp, &bench);
            let mut wb = sup.stream_breaker();
            let admits: Vec<bool> = bench
                .iter()
                .map(|q| sup.admit(&mut wb, fp, &q.id))
                .collect();
            let replayed: Vec<bool> = (0..bench.len())
                .map(|i| sched.attempts_question(i))
                .collect();
            assert_eq!(
                admits, replayed,
                "streamed admits diverge from batch schedule"
            );
            assert_eq!(wb.trips(), sched.trips());
            assert_eq!(wb.state(), sched.final_state());
            assert_eq!(wb.next_index(), bench.len());
        }
    }

    #[test]
    fn windows_are_order_independent() {
        // Deciding a window with a breaker positioned directly at its
        // start yields the same admits as one that walked the whole
        // prefix — the property that lets a streamed requeue re-decide
        // only quarantined shards.
        let bench = ChipVqa::standard();
        let fp = 0x51ac;
        let sup = Supervisor::new(FaultPlan::uniform(11, 0.15));
        let mut full = sup.stream_breaker();
        let all: Vec<bool> = bench
            .iter()
            .map(|q| sup.admit(&mut full, fp, &q.id))
            .collect();
        for window in 0..bench.len().div_ceil(BREAKER_WINDOW) {
            let start = window * BREAKER_WINDOW;
            let end = (start + BREAKER_WINDOW).min(bench.len());
            let mut wb = sup.stream_breaker_at(window);
            assert_eq!(wb.next_index(), start);
            let alone: Vec<bool> = bench.questions()[start..end]
                .iter()
                .map(|q| sup.admit(&mut wb, fp, &q.id))
                .collect();
            assert_eq!(
                alone,
                all[start..end],
                "window {window} depends on its prefix"
            );
        }
    }

    #[test]
    fn zero_plan_admits_everything_without_breaker_state() {
        let bench = ChipVqa::standard();
        let sup = Supervisor::new(FaultPlan::none());
        let mut wb = sup.stream_breaker();
        for q in bench.iter() {
            assert!(sup.admit(&mut wb, 99, &q.id));
        }
        assert_eq!(wb.trips(), 0);
        assert_eq!(wb.state(), BreakerState::Closed);
        assert_eq!(wb.next_index(), bench.len());
    }

    #[test]
    fn stream_scope_emits_prefixed_telemetry() {
        use chipvqa_telemetry::{MemorySink, MockClock};
        use std::sync::Arc;

        let bench = ChipVqa::standard();
        let fp = 0xfeed_beef;
        let sup = Supervisor::new(FaultPlan::none().with_broken_model(fp));
        let sink = Arc::new(MemorySink::new());
        let tele = chipvqa_telemetry::Telemetry::builder()
            .clock(MockClock::new(1))
            .sink(Arc::clone(&sink))
            .build();
        let mut wb = sup.stream_breaker();
        for q in bench.iter() {
            sup.admit_traced(&mut wb, fp, &q.id, &tele, BreakerScope::Stream);
        }
        let snap = tele.snapshot();
        assert!(snap.counters["stream.breaker.trips"] >= 1);
        assert_eq!(snap.counters["stream.breaker.trips"], u64::from(wb.trips()));
        assert!(
            !snap.counters.contains_key("breaker.trips"),
            "batch names unused"
        );
        let transitions = sink.named("stream.breaker.transition");
        assert!(!transitions.is_empty());
        assert_eq!(transitions[0].get("from"), Some("closed"));
        assert_eq!(transitions[0].get("to"), Some("open"));
        assert_eq!(transitions[0].get("window"), Some("0"));
    }

    #[test]
    fn question_health_is_pure_and_deterministic() {
        let sup = Supervisor::new(FaultPlan::uniform(3, 0.08));
        let a = sup.question_health(42, "digital-001");
        let b = sup.question_health(42, "digital-001");
        assert_eq!(a, b);
    }

    #[test]
    fn supervised_infer_zero_plan_matches_plain_inference() {
        let bench = ChipVqa::standard();
        let pipe = chipvqa_models::VlmPipeline::new(ModelZoo::gpt4o());
        let sup = Supervisor::new(FaultPlan::none());
        let q = &bench.questions()[0];
        let supervised = sup
            .infer(&pipe, q, 1, 0, None, &Telemetry::disabled(), 0)
            .expect("no faults");
        let plain = pipe.infer(q, 1, 0);
        assert_eq!(supervised.text, plain.text);
        assert_eq!(supervised.path, plain.path);
    }

    #[test]
    fn exhausted_retries_surface_structured_errors() {
        let bench = ChipVqa::standard();
        let pipe = chipvqa_models::VlmPipeline::new(ModelZoo::gpt4o());
        let sup = Supervisor::new(FaultPlan::none().with_broken_model(pipe.fingerprint()))
            .with_recovery(RecoveryPolicy {
                max_retries: 1,
                ..RecoveryPolicy::default()
            });
        let q = &bench.questions()[0];
        let (err, degraded) = sup
            .infer(&pipe, q, 1, 0, None, &Telemetry::disabled(), 0)
            .unwrap_err();
        assert_eq!(err, EvalError::Transient);
        assert_eq!(degraded, None, "transient errors leave no evidence");
        // judge calls for the same broken model still work
        let ok = sup
            .verdict(
                &RuleJudge::new(),
                pipe.fingerprint(),
                q,
                &q.golden_text(),
                0,
                &Telemetry::disabled(),
            )
            .expect("judge path unaffected by broken model");
        assert!(ok);
    }

    #[test]
    fn timeout_records_the_deadline() {
        let bench = ChipVqa::standard();
        let pipe = chipvqa_models::VlmPipeline::new(ModelZoo::kosmos_2());
        let sup = Supervisor::new(FaultPlan {
            timeout_rate: 1.0,
            ..FaultPlan::none()
        })
        .with_deadline_ms(1234);
        let q = &bench.questions()[3];
        let (err, _) = sup
            .infer(&pipe, q, 1, 0, None, &Telemetry::disabled(), 0)
            .unwrap_err();
        assert_eq!(err, EvalError::Timeout { deadline_ms: 1234 });
        assert_eq!(err.label(), "timeout");
    }

    #[test]
    fn traced_schedule_matches_untraced_and_emits_transitions() {
        use chipvqa_telemetry::{MemorySink, MockClock};
        use std::sync::Arc;

        let bench = ChipVqa::standard();
        let fp = 0xfeed_beef;
        let sup = Supervisor::new(FaultPlan::none().with_broken_model(fp));
        let sink = Arc::new(MemorySink::new());
        let tele = chipvqa_telemetry::Telemetry::builder()
            .clock(MockClock::new(1))
            .sink(Arc::clone(&sink))
            .build();
        let traced = sup.breaker_schedule_traced(fp, &bench, &tele);
        assert_eq!(traced, sup.breaker_schedule(fp, &bench));
        let snap = tele.snapshot();
        assert!(snap.counters["breaker.trips"] >= 1);
        assert_eq!(
            snap.counters["breaker.trips"],
            u64::from(traced.trips()),
            "counter matches the schedule's trip count"
        );
        let transitions = sink.named("breaker.transition");
        assert!(!transitions.is_empty());
        assert_eq!(transitions[0].get("from"), Some("closed"));
        assert_eq!(transitions[0].get("to"), Some("open"));
    }

    #[test]
    fn injected_faults_are_recorded_as_events() {
        use chipvqa_telemetry::{MemorySink, MockClock};
        use std::sync::Arc;

        let bench = ChipVqa::standard();
        let pipe = chipvqa_models::VlmPipeline::new(ModelZoo::gpt4o());
        let sup = Supervisor::new(FaultPlan {
            timeout_rate: 1.0,
            seed: 9,
            ..FaultPlan::none()
        })
        .with_recovery(RecoveryPolicy {
            max_retries: 1,
            ..RecoveryPolicy::default()
        });
        let sink = Arc::new(MemorySink::new());
        let tele = chipvqa_telemetry::Telemetry::builder()
            .clock(MockClock::new(1))
            .sink(Arc::clone(&sink))
            .build();
        let q = &bench.questions()[0];
        let (err, _) = sup.infer(&pipe, q, 1, 0, None, &tele, 0).unwrap_err();
        assert!(matches!(err, EvalError::Timeout { .. }));
        let snap = tele.snapshot();
        assert_eq!(snap.counters["fault.injected"], 2, "two recovery draws");
        assert_eq!(snap.counters["supervisor.deadline_overrun"], 2);
        assert_eq!(snap.counters["supervisor.retry"], 1);
        let events = sink.named("fault.injected");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind"), Some("timeout"));
        assert_eq!(events[0].get("site"), Some("inference"));
        assert_eq!(events[0].get("plan_seed"), Some("9"));
        assert_eq!(events[0].get("question"), Some(q.id.as_str()));
    }

    #[test]
    fn eval_error_serde_roundtrip() {
        for err in [
            EvalError::Timeout { deadline_ms: 500 },
            EvalError::Truncated,
            EvalError::Garbled,
            EvalError::RateLimited,
            EvalError::Transient,
            EvalError::WorkerPanic,
            EvalError::BreakerOpen,
        ] {
            let json = serde_json::to_string(&err).expect("serializes");
            let back: EvalError = serde_json::from_str(&json).expect("deserializes");
            assert_eq!(back, err);
            assert!(!err.label().is_empty());
            assert!(!err.to_string().is_empty());
        }
    }
}

//! Table rendering: regenerates the paper's Table II layout from
//! evaluation reports.
//!
//! Degraded-report semantics: when any row carries terminal
//! infrastructure failures (a chaos run, a flaky backend), the table
//! grows an explicit `DEGRADED RUN` footer with per-model and
//! per-category answered/failed/breaker-skipped accounting. A clean run
//! renders byte-identically to the pre-supervision layout.

use std::fmt;

use chipvqa_core::question::Category;

use crate::harness::EvalReport;

/// One model's standard + challenge results.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// Results on the standard (with-choice) collection.
    pub standard: EvalReport,
    /// Results on the challenge (no-choice) collection.
    pub challenge: EvalReport,
}

/// The full Table II.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table2 {
    /// One row per model, paper order.
    pub rows: Vec<ModelRow>,
}

impl Table2 {
    /// Finds a model's row by name.
    pub fn model(&self, name: &str) -> Option<&ModelRow> {
        self.rows.iter().find(|r| r.standard.model == name)
    }

    /// Mean standard pass rate of the open-source models (all rows except
    /// the given proprietary one) — used for the "GPT-4o leads by ~20%"
    /// claim.
    pub fn open_source_mean(&self, excluding: &str) -> f64 {
        let rows: Vec<&ModelRow> = self
            .rows
            .iter()
            .filter(|r| r.standard.model != excluding)
            .collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.standard.overall()).sum::<f64>() / rows.len() as f64
    }

    /// Whether any row (standard or challenge) carries terminal
    /// infrastructure failures.
    pub fn is_degraded(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.standard.is_degraded() || r.challenge.is_degraded())
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE II  Zero-Shot Evaluation on ChipVQA (reproduced)")?;
        write!(f, "{:<16}", "Model")?;
        for _ in 0..2 {
            for cat in Category::ALL {
                write!(f, " {:>7.7}", cat.label())?;
            }
            write!(f, " {:>7}", "all")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<16} {:^47} {:^47}",
            "", "--- w/ Multi-Choice ---", "--- w/o Multi-Choice ---"
        )?;
        for row in &self.rows {
            write!(f, "{:<16}", row.standard.model)?;
            for report in [&row.standard, &row.challenge] {
                let (cats, all) = report.row();
                for c in cats {
                    write!(f, " {c:>7.2}")?;
                }
                write!(f, " {all:>7.2}")?;
            }
            writeln!(f)?;
        }
        if self.is_degraded() {
            writeln!(f)?;
            writeln!(
                f,
                "DEGRADED RUN — pass rates above undercount models with failures."
            )?;
            writeln!(
                f,
                "{:<16} {:>4} {:>9} {:>7} {:>7} {:>9}  failures by category",
                "Model", "set", "answered", "failed", "skipped", "coverage"
            )?;
            for row in &self.rows {
                for (set, report) in [("std", &row.standard), ("chal", &row.challenge)] {
                    if !report.is_degraded() {
                        continue;
                    }
                    let acct = report.category_accounting();
                    let by_cat: Vec<String> = Category::ALL
                        .iter()
                        .filter_map(|c| {
                            let &(_, failed, skipped) = acct.get(c)?;
                            if failed + skipped == 0 {
                                return None;
                            }
                            Some(format!("{}:{}+{}", c.label(), failed, skipped))
                        })
                        .collect();
                    writeln!(
                        f,
                        "{:<16} {:>4} {:>9} {:>7} {:>7} {:>8.1}%  {}",
                        report.model,
                        set,
                        report.answered(),
                        report.failed(),
                        report.breaker_skipped(),
                        report.coverage() * 100.0,
                        by_cat.join(" ")
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, EvalOptions};
    use chipvqa_core::ChipVqa;
    use chipvqa_models::{ModelZoo, VlmPipeline};

    fn tiny_table() -> Table2 {
        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let rows = [ModelZoo::gpt4o(), ModelZoo::llava_7b()]
            .into_iter()
            .map(|p| {
                let pipe = VlmPipeline::new(p);
                ModelRow {
                    standard: evaluate(&pipe, &bench, EvalOptions::default()),
                    challenge: evaluate(&pipe, &challenge, EvalOptions::default()),
                }
            })
            .collect();
        Table2 { rows }
    }

    #[test]
    fn renders_both_halves() {
        let t = tiny_table();
        let s = t.to_string();
        assert!(s.contains("w/ Multi-Choice"));
        assert!(s.contains("w/o Multi-Choice"));
        assert!(s.contains("GPT4o"));
    }

    #[test]
    fn clean_table_has_no_degraded_footer() {
        let t = tiny_table();
        assert!(!t.is_degraded());
        assert!(!t.to_string().contains("DEGRADED RUN"));
    }

    #[test]
    fn degraded_table_renders_the_accounting_footer() {
        use crate::executor::ParallelExecutor;
        use crate::fault::FaultPlan;
        use crate::supervisor::Supervisor;

        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let pipe = VlmPipeline::new(ModelZoo::fuyu_8b());
        let broken = FaultPlan::none().with_broken_model(pipe.fingerprint());
        let exec = ParallelExecutor::new(2).with_supervisor(Supervisor::new(broken));
        let row = ModelRow {
            standard: exec.evaluate(&pipe, &bench, EvalOptions::default()),
            challenge: exec.evaluate(&pipe, &challenge, EvalOptions::default()),
        };
        let t = Table2 { rows: vec![row] };
        assert!(t.is_degraded());
        let s = t.to_string();
        assert!(s.contains("DEGRADED RUN"));
        assert!(s.contains("failures by category"));
        // both splits of the dead model appear in the footer
        assert!(s.contains(" std "));
        assert!(s.contains(" chal "));
        // transient failures + breaker sheds show up as cat:failed+skipped
        assert!(s.contains('+'), "per-category failed+skipped tokens: {s}");
    }

    #[test]
    fn model_lookup_and_means() {
        let t = tiny_table();
        assert!(t.model("GPT4o").is_some());
        assert!(t.model("nonexistent").is_none());
        let mean = t.open_source_mean("GPT4o");
        assert!(mean > 0.0 && mean < 1.0);
    }
}

//! Table rendering: regenerates the paper's Table II layout from
//! evaluation reports.

use std::fmt;

use chipvqa_core::question::Category;

use crate::harness::EvalReport;

/// One model's standard + challenge results.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// Results on the standard (with-choice) collection.
    pub standard: EvalReport,
    /// Results on the challenge (no-choice) collection.
    pub challenge: EvalReport,
}

/// The full Table II.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table2 {
    /// One row per model, paper order.
    pub rows: Vec<ModelRow>,
}

impl Table2 {
    /// Finds a model's row by name.
    pub fn model(&self, name: &str) -> Option<&ModelRow> {
        self.rows.iter().find(|r| r.standard.model == name)
    }

    /// Mean standard pass rate of the open-source models (all rows except
    /// the given proprietary one) — used for the "GPT-4o leads by ~20%"
    /// claim.
    pub fn open_source_mean(&self, excluding: &str) -> f64 {
        let rows: Vec<&ModelRow> = self
            .rows
            .iter()
            .filter(|r| r.standard.model != excluding)
            .collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.standard.overall()).sum::<f64>() / rows.len() as f64
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE II  Zero-Shot Evaluation on ChipVQA (reproduced)")?;
        write!(f, "{:<16}", "Model")?;
        for _ in 0..2 {
            for cat in Category::ALL {
                write!(f, " {:>7.7}", cat.label())?;
            }
            write!(f, " {:>7}", "all")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<16} {:^47} {:^47}",
            "", "--- w/ Multi-Choice ---", "--- w/o Multi-Choice ---"
        )?;
        for row in &self.rows {
            write!(f, "{:<16}", row.standard.model)?;
            for report in [&row.standard, &row.challenge] {
                let (cats, all) = report.row();
                for c in cats {
                    write!(f, " {c:>7.2}")?;
                }
                write!(f, " {all:>7.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, EvalOptions};
    use chipvqa_core::ChipVqa;
    use chipvqa_models::{ModelZoo, VlmPipeline};

    fn tiny_table() -> Table2 {
        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let rows = [ModelZoo::gpt4o(), ModelZoo::llava_7b()]
            .into_iter()
            .map(|p| {
                let pipe = VlmPipeline::new(p);
                ModelRow {
                    standard: evaluate(&pipe, &bench, EvalOptions::default()),
                    challenge: evaluate(&pipe, &challenge, EvalOptions::default()),
                }
            })
            .collect();
        Table2 { rows }
    }

    #[test]
    fn renders_both_halves() {
        let t = tiny_table();
        let s = t.to_string();
        assert!(s.contains("w/ Multi-Choice"));
        assert!(s.contains("w/o Multi-Choice"));
        assert!(s.contains("GPT4o"));
    }

    #[test]
    fn model_lookup_and_means() {
        let t = tiny_table();
        assert!(t.model("GPT4o").is_some());
        assert!(t.model("nonexistent").is_none());
        let mean = t.open_source_mean("GPT4o");
        assert!(mean > 0.0 && mean < 1.0);
    }
}

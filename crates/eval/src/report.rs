//! Table rendering: regenerates the paper's Table II layout from
//! evaluation reports.
//!
//! Degraded-report semantics: when any row carries terminal
//! infrastructure failures (a chaos run, a flaky backend), the table
//! grows an explicit `DEGRADED RUN` footer with per-model and
//! per-category answered/failed/breaker-skipped accounting. A clean run
//! renders byte-identically to the pre-supervision layout.

use std::fmt;

use chipvqa_core::question::Category;
use serde::{Deserialize, Serialize};

use crate::harness::EvalReport;

/// One model's standard + challenge results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRow {
    /// Results on the standard (with-choice) collection.
    pub standard: EvalReport,
    /// Results on the challenge (no-choice) collection.
    pub challenge: EvalReport,
}

/// The full Table II.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table2 {
    /// One row per model, paper order.
    pub rows: Vec<ModelRow>,
}

impl Table2 {
    /// Finds a model's row by name.
    pub fn model(&self, name: &str) -> Option<&ModelRow> {
        self.rows.iter().find(|r| r.standard.model == name)
    }

    /// Mean standard pass rate of the open-source models (all rows except
    /// the given proprietary one) — used for the "GPT-4o leads by ~20%"
    /// claim.
    pub fn open_source_mean(&self, excluding: &str) -> f64 {
        let rows: Vec<&ModelRow> = self
            .rows
            .iter()
            .filter(|r| r.standard.model != excluding)
            .collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.standard.overall()).sum::<f64>() / rows.len() as f64
    }

    /// Whether any row (standard or challenge) carries terminal
    /// infrastructure failures.
    pub fn is_degraded(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.standard.is_degraded() || r.challenge.is_degraded())
    }

    /// Emits the table's DEGRADED RUN footer as structured telemetry:
    /// one `run.degraded` event per degraded (model, set) report,
    /// carrying the same answered/failed/skipped/coverage accounting the
    /// rendered footer shows, plus a `run.degraded` counter. Returns how
    /// many events were emitted (0 for a clean table). Row order matches
    /// the footer: model order, standard before challenge.
    pub fn emit_degraded_events(&self, tele: &chipvqa_telemetry::Telemetry) -> usize {
        if !tele.enabled() {
            return 0;
        }
        let mut emitted = 0;
        for row in &self.rows {
            for (set, report) in [("std", &row.standard), ("chal", &row.challenge)] {
                if !report.is_degraded() {
                    continue;
                }
                tele.counter("run.degraded", 1);
                tele.event(
                    "run.degraded",
                    vec![
                        chipvqa_telemetry::kv("model", &report.model),
                        chipvqa_telemetry::kv("set", set),
                        chipvqa_telemetry::kv("answered", report.answered()),
                        chipvqa_telemetry::kv("failed", report.failed()),
                        chipvqa_telemetry::kv("skipped", report.breaker_skipped()),
                        chipvqa_telemetry::kv("coverage", format!("{:.4}", report.coverage())),
                    ],
                );
                emitted += 1;
            }
        }
        emitted
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE II  Zero-Shot Evaluation on ChipVQA (reproduced)")?;
        write!(f, "{:<16}", "Model")?;
        for _ in 0..2 {
            for cat in Category::ALL {
                write!(f, " {:>7.7}", cat.label())?;
            }
            write!(f, " {:>7}", "all")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<16} {:^47} {:^47}",
            "", "--- w/ Multi-Choice ---", "--- w/o Multi-Choice ---"
        )?;
        for row in &self.rows {
            write!(f, "{:<16}", row.standard.model)?;
            for report in [&row.standard, &row.challenge] {
                let (cats, all) = report.row();
                for c in cats {
                    write!(f, " {c:>7.2}")?;
                }
                write!(f, " {all:>7.2}")?;
            }
            writeln!(f)?;
        }
        if self.is_degraded() {
            writeln!(f)?;
            writeln!(
                f,
                "DEGRADED RUN — pass rates above undercount models with failures."
            )?;
            writeln!(
                f,
                "{:<16} {:>4} {:>9} {:>7} {:>7} {:>9}  failures by category",
                "Model", "set", "answered", "failed", "skipped", "coverage"
            )?;
            for row in &self.rows {
                for (set, report) in [("std", &row.standard), ("chal", &row.challenge)] {
                    if !report.is_degraded() {
                        continue;
                    }
                    let acct = report.category_accounting();
                    let by_cat: Vec<String> = Category::ALL
                        .iter()
                        .filter_map(|c| {
                            let &(_, failed, skipped) = acct.get(c)?;
                            if failed + skipped == 0 {
                                return None;
                            }
                            Some(format!("{}:{}+{}", c.label(), failed, skipped))
                        })
                        .collect();
                    writeln!(
                        f,
                        "{:<16} {:>4} {:>9} {:>7} {:>7} {:>8.1}%  {}",
                        report.model,
                        set,
                        report.answered(),
                        report.failed(),
                        report.breaker_skipped(),
                        report.coverage() * 100.0,
                        by_cat.join(" ")
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, EvalOptions};
    use chipvqa_core::ChipVqa;
    use chipvqa_models::{ModelZoo, VlmPipeline};

    fn tiny_table() -> Table2 {
        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let rows = [ModelZoo::gpt4o(), ModelZoo::llava_7b()]
            .into_iter()
            .map(|p| {
                let pipe = VlmPipeline::new(p);
                ModelRow {
                    standard: evaluate(&pipe, &bench, EvalOptions::default()),
                    challenge: evaluate(&pipe, &challenge, EvalOptions::default()),
                }
            })
            .collect();
        Table2 { rows }
    }

    #[test]
    fn renders_both_halves() {
        let t = tiny_table();
        let s = t.to_string();
        assert!(s.contains("w/ Multi-Choice"));
        assert!(s.contains("w/o Multi-Choice"));
        assert!(s.contains("GPT4o"));
    }

    #[test]
    fn clean_table_has_no_degraded_footer() {
        let t = tiny_table();
        assert!(!t.is_degraded());
        assert!(!t.to_string().contains("DEGRADED RUN"));
    }

    #[test]
    fn degraded_table_renders_the_accounting_footer() {
        use crate::executor::ParallelExecutor;
        use crate::fault::FaultPlan;
        use crate::supervisor::Supervisor;

        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let pipe = VlmPipeline::new(ModelZoo::fuyu_8b());
        let broken = FaultPlan::none().with_broken_model(pipe.fingerprint());
        let exec = ParallelExecutor::new(2).with_supervisor(Supervisor::new(broken));
        let row = ModelRow {
            standard: exec.evaluate(&pipe, &bench, EvalOptions::default()),
            challenge: exec.evaluate(&pipe, &challenge, EvalOptions::default()),
        };
        let t = Table2 { rows: vec![row] };
        assert!(t.is_degraded());
        let s = t.to_string();
        assert!(s.contains("DEGRADED RUN"));
        assert!(s.contains("failures by category"));
        // both splits of the dead model appear in the footer
        assert!(s.contains(" std "));
        assert!(s.contains(" chal "));
        // transient failures + breaker sheds show up as cat:failed+skipped
        assert!(s.contains('+'), "per-category failed+skipped tokens: {s}");
    }

    #[test]
    fn degraded_footer_doubles_as_structured_events() {
        use crate::executor::ParallelExecutor;
        use crate::fault::FaultPlan;
        use crate::supervisor::Supervisor;
        use chipvqa_telemetry::{MemorySink, MockClock, Telemetry};
        use std::sync::Arc;

        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let pipe = VlmPipeline::new(ModelZoo::fuyu_8b());
        let broken = FaultPlan::none().with_broken_model(pipe.fingerprint());
        let exec = ParallelExecutor::new(2).with_supervisor(Supervisor::new(broken));
        let row = ModelRow {
            standard: exec.evaluate(&pipe, &bench, EvalOptions::default()),
            challenge: exec.evaluate(&pipe, &challenge, EvalOptions::default()),
        };
        let t = Table2 { rows: vec![row] };

        let sink = Arc::new(MemorySink::new());
        let tele = Telemetry::builder()
            .clock(MockClock::new(1))
            .sink(Arc::clone(&sink))
            .build();
        let emitted = t.emit_degraded_events(&tele);
        assert_eq!(emitted, 2, "std and chal splits are both degraded");
        let events = sink.named("run.degraded");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("set"), Some("std"));
        assert_eq!(events[1].get("set"), Some("chal"));
        let report = &t.rows[0].standard;
        assert_eq!(
            events[0].get("answered"),
            Some(report.answered().to_string().as_str())
        );
        assert_eq!(tele.snapshot().counters["run.degraded"], 2);

        // a clean table emits nothing
        let clean = tiny_table();
        assert_eq!(clean.emit_degraded_events(&tele), 0);
        // and a disabled handle is a no-op even on a degraded table
        assert_eq!(t.emit_degraded_events(&Telemetry::disabled()), 0);
    }

    #[test]
    fn model_lookup_and_means() {
        let t = tiny_table();
        assert!(t.model("GPT4o").is_some());
        assert!(t.model("nonexistent").is_none());
        let mean = t.open_source_mean("GPT4o");
        assert!(mean > 0.0 && mean < 1.0);
    }
}

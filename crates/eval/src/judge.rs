//! The equivalence judge: decides whether a model response matches the
//! golden answer.

use chipvqa_core::question::{AnswerSpec, Question, QuestionKind};
use chipvqa_logic::Expr;

use crate::normalize::{extract_choice_letter, extract_number, normalize_text};

/// Binary equivalence judgement between a response and a question's gold.
/// The paper uses GPT-4 in this role; the reproduction's default is
/// [`RuleJudge`].
///
/// Judges are `Sync` so the parallel executor can share one judge across
/// worker threads.
///
/// Under supervised execution every [`Judge::verdict`] call is treated
/// as fallible infrastructure (a remote LLM judge can time out or be
/// rate-limited): the [`Supervisor`](crate::supervisor::Supervisor)
/// wraps each call with fault injection, deadline and bounded retries,
/// and a verdict that exhausts recovery fails the question with a
/// structured [`EvalError`](crate::supervisor::EvalError) instead of
/// silently scoring it wrong.
pub trait Judge: Sync {
    /// Returns `true` when `response` answers `question` correctly.
    fn is_correct(&self, question: &Question, response: &str) -> bool;

    /// Verdict for one *judging attempt* of the same response.
    ///
    /// A deterministic judge returns the same verdict for every attempt
    /// (the default ignores `judge_attempt`); a flaky judge such as
    /// [`NoisyJudge`](crate::noisy::NoisyJudge) redraws its noise per
    /// attempt, which is what makes retry-with-majority-vote in the
    /// executor meaningful. Attempt 0 MUST equal [`Judge::is_correct`].
    fn verdict(&self, question: &Question, response: &str, judge_attempt: u64) -> bool {
        let _ = judge_attempt;
        self.is_correct(question, response)
    }
}

/// Deterministic rule-based judge (see crate docs for the substitution
/// rationale).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleJudge;

impl RuleJudge {
    /// Creates the judge.
    pub fn new() -> Self {
        RuleJudge
    }

    fn semantic_match(&self, answer: &AnswerSpec, response: &str) -> bool {
        match answer {
            AnswerSpec::Numeric {
                value, tolerance, ..
            } => match extract_number(response) {
                Some(x) => {
                    let tol = tolerance.max(value.abs() * 0.01).max(1e-12);
                    (x - value).abs() <= tol
                }
                None => false,
            },
            AnswerSpec::Text { canonical, aliases } => {
                let got = normalize_text(response);
                if got.is_empty() {
                    return false;
                }
                std::iter::once(canonical)
                    .chain(aliases.iter())
                    .any(|accept| {
                        let want = normalize_text(accept);
                        !want.is_empty() && (got == want || got.contains(&want))
                    })
            }
            AnswerSpec::BoolExpr { canonical } => {
                let Ok(gold) = Expr::parse(canonical) else {
                    return false;
                };
                // strip a leading "Q =" / "F =" style binding
                let rhs = response
                    .split_once('=')
                    .map(|(_, r)| r)
                    .unwrap_or(response)
                    .trim();
                match Expr::parse(rhs) {
                    Ok(e) => e.equivalent(&gold).unwrap_or(false),
                    Err(_) => false,
                }
            }
        }
    }
}

impl Judge for RuleJudge {
    fn is_correct(&self, question: &Question, response: &str) -> bool {
        match &question.kind {
            QuestionKind::MultipleChoice { choices, correct } => {
                // Preferred: an option letter.
                if let Some(letter) = extract_choice_letter(response) {
                    return (letter as u8 - b'a') as usize == *correct;
                }
                // Otherwise: verbatim choice text or semantic match.
                let got = normalize_text(response);
                if !got.is_empty() && got == normalize_text(&choices[*correct]) {
                    return true;
                }
                self.semantic_match(&question.answer, response)
            }
            QuestionKind::ShortAnswer => self.semantic_match(&question.answer, response),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::question::{Category, Difficulty, VisualKind};
    use chipvqa_raster::Annotated;

    fn question(kind: QuestionKind, answer: AnswerSpec) -> Question {
        Question {
            id: "t-000".into(),
            category: Category::Digital,
            visual_kind: VisualKind::Diagram,
            prompt: "?".into(),
            kind,
            answer,
            difficulty: Difficulty::new(0.5, 1, 0.5, false),
            visual: Annotated::default(),
            key_marks: vec![],
        }
    }

    fn mc() -> Question {
        question(
            QuestionKind::MultipleChoice {
                choices: [
                    "Q = S'Q + S".into(),
                    "Q = S'R'q + SR'".into(),
                    "Q = SR' + R'q".into(),
                    "Q = S'Q + SR'".into(),
                ],
                correct: 3,
            },
            AnswerSpec::BoolExpr {
                canonical: "S'Q + SR'".into(),
            },
        )
    }

    #[test]
    fn mc_letter_judging() {
        let j = RuleJudge::new();
        let q = mc();
        assert!(j.is_correct(&q, "(d) Q = S'Q + SR'"));
        assert!(j.is_correct(&q, "d"));
        assert!(j.is_correct(&q, "The answer is (D)"));
        assert!(!j.is_correct(&q, "(a) Q = S'Q + S"));
        assert!(!j.is_correct(&q, "b."));
    }

    #[test]
    fn mc_choice_text_judging() {
        let j = RuleJudge::new();
        let q = mc();
        assert!(j.is_correct(&q, "Q = S'Q + SR'"));
        // semantically equivalent rewriting also accepted
        assert!(j.is_correct(&q, "Q = QS' + R'S"));
    }

    #[test]
    fn numeric_tolerance() {
        let j = RuleJudge::new();
        let q = question(
            QuestionKind::ShortAnswer,
            AnswerSpec::Numeric {
                value: 5.5,
                tolerance: 0.1,
                unit: Some("minutes".into()),
            },
        );
        assert!(j.is_correct(&q, "5.5 minutes"));
        assert!(j.is_correct(&q, "about 5.45"));
        assert!(j.is_correct(&q, "t = 5.52 min"));
        assert!(!j.is_correct(&q, "6.5 minutes"));
        assert!(!j.is_correct(&q, "there is not enough information"));
    }

    #[test]
    fn text_aliases_and_containment() {
        let j = RuleJudge::new();
        let q = question(
            QuestionKind::ShortAnswer,
            AnswerSpec::Text {
                canonical: "half adder".into(),
                aliases: vec!["1-bit half adder".into()],
            },
        );
        assert!(j.is_correct(&q, "Half Adder"));
        assert!(j.is_correct(&q, "It is a half adder circuit."));
        assert!(!j.is_correct(&q, "full adder"));
        assert!(!j.is_correct(&q, ""));
    }

    #[test]
    fn boolexpr_semantic_equivalence() {
        let j = RuleJudge::new();
        let q = question(
            QuestionKind::ShortAnswer,
            AnswerSpec::BoolExpr {
                canonical: "S'Q + SR'".into(),
            },
        );
        assert!(j.is_correct(&q, "Q = S'Q + SR'"));
        assert!(j.is_correct(&q, "SR' + QS'"));
        assert!(!j.is_correct(&q, "S + R'Q")); // differs on Q=1,S=0,R=1
        assert!(!j.is_correct(&q, "(S'Q + SR')'"));
        assert!(!j.is_correct(&q, "word salad"));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary garbage must never panic the judge, and must
            /// never be accepted for a numeric gold unless it actually
            /// contains a number in tolerance.
            #[test]
            fn judge_never_panics_on_garbage(resp in ".{0,120}") {
                let j = RuleJudge::new();
                let q = question(
                    QuestionKind::ShortAnswer,
                    AnswerSpec::Numeric {
                        value: 123.45,
                        tolerance: 0.5,
                        unit: Some("ns".into()),
                    },
                );
                let verdict = j.is_correct(&q, &resp);
                if verdict {
                    let n = crate::normalize::extract_number(&resp)
                        .expect("accepted numeric answers must contain a number");
                    prop_assert!((n - 123.45).abs() <= 1.3, "{resp:?} -> {n}");
                }
            }

            #[test]
            fn mc_judge_never_panics(resp in ".{0,120}") {
                let j = RuleJudge::new();
                let q = mc();
                let _ = j.is_correct(&q, &resp);
            }
        }
    }

    #[test]
    fn full_benchmark_golds_self_judge() {
        // Every question's own golden text must be judged correct — the
        // benchmark would otherwise contain unanswerable items.
        let j = RuleJudge::new();
        let bench = chipvqa_core::ChipVqa::standard();
        for q in bench.iter() {
            assert!(
                j.is_correct(q, &q.golden_text()),
                "{}: gold '{}' rejected",
                q.id,
                q.golden_text()
            );
        }
        // and in challenge form
        for q in bench.challenge().iter() {
            assert!(
                j.is_correct(q, &q.golden_text()),
                "{} (challenge): gold '{}' rejected",
                q.id,
                q.golden_text()
            );
        }
    }
}

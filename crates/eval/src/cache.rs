//! Granular answer cache for repeated evaluations.
//!
//! Large-scale runs (the full model×question grid, the resolution sweep,
//! pass@k) re-infer the same (model, question, resolution, attempt)
//! cells over and over. The cache memoises the *model answer* — never
//! the verdict, so a cached entry stays valid under any judge — keyed by
//! everything that determines the answer:
//!
//! * the model's behavioural [`fingerprint`](chipvqa_models::VlmPipeline::fingerprint)
//!   (any calibration change yields a new key),
//! * the question id **and** a hash of its full prompt (an id reused for
//!   an edited question misses rather than serving a stale answer),
//! * the downsampling factor of the resolution study,
//! * the pass@k attempt index.
//!
//! **Invariant: only clean answers enter the cache.** Supervised (chaos)
//! runs never insert a faulted response — a truncated, garbled or
//! otherwise failed call must not poison future runs with corrupted
//! answers. The supervisor's recovery loop only reaches insertion on a
//! fault-free draw, and [`AnswerCache::insert`] debug-asserts that the
//! text carries no corruption markers (see
//! [`fault::is_corrupted_text`](crate::fault::is_corrupted_text)).
//! The persistent tier re-checks the invariant in release builds — see
//! [`AnswerStore::insert`](crate::store::AnswerStore::insert).
//!
//! **Persistent tier.** [`AnswerCache::with_store`] attaches an
//! [`AnswerStore`](crate::store::AnswerStore) as a read-through /
//! write-behind tier: memory misses fall through to disk (hits are
//! promoted back into memory), and every clean insert is appended to
//! the store, so the next process warm-starts from the same answers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use chipvqa_core::question::Question;
use chipvqa_models::backbone::AnswerPath;
use chipvqa_models::ModelResponse;
use serde::{Deserialize, Serialize};

/// FNV-1a over the question's full prompt (prompt text plus rendered
/// choices), so any wording or option edit changes the key.
pub fn prompt_hash(question: &Question) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in question.full_prompt().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything that determines a model's answer to one inference call.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CacheKey {
    /// Behavioural fingerprint of the model.
    pub model_fingerprint: u64,
    /// Question id.
    pub question_id: String,
    /// Hash of the full prompt (see [`prompt_hash`]).
    pub prompt_hash: u64,
    /// Image downsampling factor.
    pub downsample: usize,
    /// pass@k attempt index.
    pub attempt: u64,
    /// Fingerprint of the [`DatasetSpec`](chipvqa_core::spec::DatasetSpec)
    /// the question came from (`0` for the canonical collections).
    /// Scaled replicas reuse id shapes across specs, so the spec
    /// fingerprint keeps their answers from ever crossing specs.
    #[serde(default)]
    pub dataset_fingerprint: u64,
}

impl CacheKey {
    /// Key for one inference call against a canonical (non-spec)
    /// collection.
    pub fn new(
        model_fingerprint: u64,
        question: &Question,
        downsample: usize,
        attempt: u64,
    ) -> Self {
        CacheKey::for_dataset(model_fingerprint, 0, question, downsample, attempt)
    }

    /// Key for one inference call against a spec-generated collection;
    /// `dataset_fingerprint` is
    /// [`DatasetSpec::fingerprint`](chipvqa_core::spec::DatasetSpec::fingerprint).
    pub fn for_dataset(
        model_fingerprint: u64,
        dataset_fingerprint: u64,
        question: &Question,
        downsample: usize,
        attempt: u64,
    ) -> Self {
        CacheKey {
            model_fingerprint,
            question_id: question.id.clone(),
            prompt_hash: prompt_hash(question),
            downsample,
            attempt,
            dataset_fingerprint,
        }
    }

    /// Canonical byte encoding of the key: every numeric component in
    /// little-endian order, then the question id raw, each field
    /// preceded by its byte length so no two distinct keys share an
    /// encoding. This is the store's content address — the golden test
    /// in `tests/cache_consistency.rs` freezes it, so any change here
    /// is a *format break*, not a refactor.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let id = self.question_id.as_bytes();
        let mut out = Vec::with_capacity(8 * 5 + 8 + id.len());
        out.extend_from_slice(&self.model_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.prompt_hash.to_le_bytes());
        out.extend_from_slice(&(self.downsample as u64).to_le_bytes());
        out.extend_from_slice(&self.attempt.to_le_bytes());
        out.extend_from_slice(&self.dataset_fingerprint.to_le_bytes());
        out.extend_from_slice(&(id.len() as u64).to_le_bytes());
        out.extend_from_slice(id);
        out
    }

    /// FNV-1a 64 over [`canonical_bytes`](CacheKey::canonical_bytes) —
    /// the content hash stored in every persisted record's framing.
    pub fn content_hash(&self) -> u64 {
        crate::store::fnv1a64(&self.canonical_bytes())
    }
}

/// The memoised part of a [`ModelResponse`] — enough to rebuild a
/// question outcome and re-judge under any judge. The percept is
/// deliberately dropped: it is large and derivable by re-running.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedAnswer {
    /// The answer text.
    pub text: String,
    /// How the answer came about.
    pub path: AnswerPath,
    /// The rolled solve probability (kept for ablation tooling).
    pub solve_probability: f64,
}

impl From<&ModelResponse> for CachedAnswer {
    fn from(resp: &ModelResponse) -> Self {
        CachedAnswer {
            text: resp.text.clone(),
            path: resp.path,
            solve_probability: resp.solve_probability,
        }
    }
}

/// Point-in-time traffic counters of an [`AnswerCache`] — the public
/// face of the cache's accounting, surfaced on
/// [`EvalReport::cache_stats`](crate::harness::EvalReport::cache_stats)
/// by cache-attached executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored (overwrites count too).
    pub insertions: u64,
    /// Entries removed by invalidation or [`AnswerCache::clear`].
    pub evictions: u64,
    /// Memory misses served from the persistent store this run (a
    /// warm start shows up here: disk answers instead of inference).
    #[serde(default)]
    pub store_hits: u64,
    /// Memory misses the store could not serve either.
    #[serde(default)]
    pub store_misses: u64,
    /// Run-spanning store hits, persisted across processes in the
    /// store's `meta.json` — the counter that used to reset between
    /// runs. 0 when no store is attached.
    #[serde(default)]
    pub lifetime_hits: u64,
    /// Run-spanning store misses; see
    /// [`lifetime_hits`](CacheStats::lifetime_hits).
    #[serde(default)]
    pub lifetime_misses: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when there were none). Counts a
    /// store-served lookup as a hit: it avoided inference, which is
    /// what the rate measures.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of this run's lookups served by the *persistent* tier —
    /// 1.0 on a perfectly warm restart, 0.0 on a cold run or without a
    /// store.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.store_hits as f64 / total as f64
        }
    }
}

/// Thread-safe answer cache shared by executor workers.
///
/// Reads take a shared lock; hit/miss/insert/evict counters are
/// lock-free and surfaced via [`AnswerCache::stats`]. The cache is
/// *semantically transparent*: because the pipeline is deterministic
/// per key, a hit returns exactly what inference would have produced, so
/// cached and uncached evaluations yield identical reports.
#[derive(Debug, Default)]
pub struct AnswerCache {
    entries: RwLock<HashMap<CacheKey, CachedAnswer>>,
    store: Option<Arc<crate::store::AnswerStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
}

impl AnswerCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnswerCache::default()
    }

    /// Attaches a persistent [`AnswerStore`](crate::store::AnswerStore)
    /// as the read-through / write-behind tier beneath this cache.
    pub fn with_store(mut self, store: Arc<crate::store::AnswerStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<crate::store::AnswerStore>> {
        self.store.as_ref()
    }

    /// Flushes the attached store's buffered appends and meta counters
    /// to disk; a no-op without a store. Executors call this when a run
    /// finalizes so a clean exit is always durable.
    pub fn flush_store(&self) -> std::io::Result<()> {
        match &self.store {
            Some(store) => store.flush(),
            None => Ok(()),
        }
    }

    /// Looks up an answer, counting a hit or miss. A memory miss falls
    /// through to the persistent store when one is attached; a disk hit
    /// is promoted into memory (without counting as an insertion) and
    /// counted as both a hit and a store hit — it avoided inference,
    /// which is what the counters measure.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let found = read_lock(&self.entries).get(key).cloned();
        match found {
            Some(a) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(a)
            }
            None => {
                if let Some(store) = &self.store {
                    if let Some(answer) = store.lookup(key) {
                        write_lock(&self.entries).insert(key.clone(), answer.clone());
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.store_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(answer);
                    }
                    self.store_misses.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer (last write wins; all writers compute identical
    /// values for a key, so races are benign). With a store attached,
    /// the answer is also appended to disk (write-behind: durable after
    /// [`flush_store`](AnswerCache::flush_store)).
    ///
    /// Callers must only insert *clean* (non-faulted) answers — see the
    /// module-level invariant. Debug builds assert it here; the store
    /// refuses faulted text in release builds too.
    pub fn insert(&self, key: CacheKey, answer: CachedAnswer) {
        debug_assert!(
            !crate::fault::is_corrupted_text(&answer.text),
            "cache invariant violated: faulted answer for {key:?}: {:?}",
            answer.text
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            store.insert(key.clone(), answer.clone());
        }
        write_lock(&self.entries).insert(key, answer);
    }

    /// Removes one entry; returns whether it existed.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let removed = write_lock(&self.entries).remove(key).is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Drops every entry for one model fingerprint (e.g. after a
    /// recalibration); returns how many were removed.
    pub fn invalidate_model(&self, model_fingerprint: u64) -> usize {
        let removed = {
            let mut map = write_lock(&self.entries);
            let before = map.len();
            map.retain(|k, _| k.model_fingerprint != model_fingerprint);
            before - map.len()
        };
        self.evictions.fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Drops everything.
    pub fn clear(&self) {
        let removed = {
            let mut map = write_lock(&self.entries);
            let before = map.len();
            map.clear();
            before
        };
        self.evictions.fetch_add(removed as u64, Ordering::Relaxed);
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        read_lock(&self.entries).len()
    }

    /// Whether the cache holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// All traffic counters at once. The `lifetime_*` fields come from
    /// the attached store's persisted meta counters, so they span every
    /// process that ever used the store — this is the counter that used
    /// to reset between runs.
    pub fn stats(&self) -> CacheStats {
        let (lifetime_hits, lifetime_misses) = match &self.store {
            Some(store) => {
                let s = store.stats();
                (s.lifetime_hits, s.lifetime_misses)
            }
            None => (0, 0),
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            lifetime_hits,
            lifetime_misses,
        }
    }

    /// Serialisable snapshot of the current contents, in deterministic
    /// key order.
    pub fn snapshot(&self) -> CacheSnapshot {
        let map = read_lock(&self.entries);
        let mut entries: Vec<(CacheKey, CachedAnswer)> =
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        CacheSnapshot { entries }
    }

    /// Rebuilds a cache from a snapshot (counters start at zero).
    pub fn from_snapshot(snapshot: CacheSnapshot) -> Self {
        let cache = AnswerCache::new();
        {
            let mut map = write_lock(&cache.entries);
            for (k, v) in snapshot.entries {
                map.insert(k, v);
            }
        }
        cache
    }
}

/// Poison-tolerant read lock: a panic caught by the supervised
/// executor's `catch_unwind` must not cascade into every later cache
/// access. Entries are always internally consistent (each insert is a
/// single map operation), so recovering the guard is sound.
fn read_lock<K, V>(lock: &RwLock<HashMap<K, V>>) -> std::sync::RwLockReadGuard<'_, HashMap<K, V>> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poison-tolerant write lock; see [`read_lock`].
fn write_lock<K, V>(
    lock: &RwLock<HashMap<K, V>>,
) -> std::sync::RwLockWriteGuard<'_, HashMap<K, V>> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Point-in-time, order-stable copy of a cache for persistence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Cached (key, answer) pairs sorted by key.
    pub entries: Vec<(CacheKey, CachedAnswer)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::ChipVqa;
    use chipvqa_models::{ModelZoo, VlmPipeline};

    #[test]
    fn hit_miss_accounting_and_roundtrip() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let cache = AnswerCache::new();
        let q = &bench.questions()[0];
        let key = CacheKey::new(pipe.fingerprint(), q, 1, 0);

        assert!(cache.lookup(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let resp = pipe.infer(q, 1, 0);
        cache.insert(key.clone(), CachedAnswer::from(&resp));
        let hit = cache.lookup(&key).expect("inserted");
        assert_eq!(hit.text, resp.text);
        assert_eq!(hit.path, resp.path);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let snap = cache.snapshot();
        let restored = AnswerCache::from_snapshot(snap.clone());
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn stats_count_insertions_and_evictions() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let cache = AnswerCache::new();
        for q in bench.iter().take(3) {
            let key = CacheKey::new(pipe.fingerprint(), q, 1, 0);
            cache.insert(key, CachedAnswer::from(&pipe.infer(q, 1, 0)));
        }
        let q0 = &bench.questions()[0];
        let key0 = CacheKey::new(pipe.fingerprint(), q0, 1, 0);
        assert!(cache.lookup(&key0).is_some());
        assert!(cache.invalidate(&key0));
        assert!(!cache.invalidate(&key0), "second invalidate finds nothing");
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.evictions, 3, "one invalidate + two cleared");
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(stats.hit_rate(), 1.0);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn prompt_edit_changes_key() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[5];
        let mut edited = q.clone();
        edited.prompt.push_str(" (rev 2)");
        assert_ne!(prompt_hash(q), prompt_hash(&edited));
        assert_ne!(CacheKey::new(7, q, 1, 0), CacheKey::new(7, &edited, 1, 0));
    }

    #[test]
    fn faulted_attempt_never_cached_recovered_success_is() {
        // A fault on recovery attempt 0 followed by success on attempt 1
        // must cache only the clean success — the invariant the
        // supervisor's recovery loop upholds.
        use crate::fault::FaultPlan;
        use crate::supervisor::{RecoveryPolicy, Supervisor};

        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let cache = AnswerCache::new();

        // find a question whose attempt-0 draw faults (recoverably) and
        // whose attempt-1 draw is clean under this plan
        let sup = Supervisor::new(FaultPlan {
            truncate_rate: 0.45,
            ..FaultPlan::none()
        })
        .with_recovery(RecoveryPolicy {
            max_retries: 1,
            ..RecoveryPolicy::default()
        });
        let fp = pipe.fingerprint();
        let recovered = bench
            .iter()
            .find(|q| {
                use crate::fault::{CallKey, CallSite};
                let draw = |recovery| {
                    crate::fault::FaultInjector::new(sup.plan().clone()).draw(CallKey {
                        fingerprint: fp,
                        question_id: &q.id,
                        site: CallSite::Inference,
                        attempt: 0,
                        recovery,
                    })
                };
                draw(0).is_some() && draw(1).is_none()
            })
            .expect("some question faults once then recovers");

        let answer = sup
            .infer(
                &pipe,
                recovered,
                1,
                0,
                Some(&cache),
                &chipvqa_telemetry::Telemetry::disabled(),
                0,
            )
            .expect("recovers on attempt 1");
        assert_eq!(cache.len(), 1, "only the clean success is cached");
        assert!(!crate::fault::is_corrupted_text(&answer.text));
        let hit = cache
            .lookup(&CacheKey::new(fp, recovered, 1, 0))
            .expect("cached under the call key");
        assert_eq!(hit.text, pipe.infer(recovered, 1, 0).text, "pristine text");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn corrupted_insert_trips_the_invariant_assertion() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        let cache = AnswerCache::new();
        let key = CacheKey::new(1, q, 1, 0);
        let corrupted = CachedAnswer {
            text: format!("unfinished ans{}", crate::fault::TRUNCATION_MARKER),
            path: chipvqa_models::backbone::AnswerPath::Failed,
            solve_probability: 0.0,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.insert(key, corrupted)
        }));
        assert!(result.is_err(), "debug assertion must reject faulted text");
    }

    #[test]
    fn model_invalidation_is_selective() {
        let bench = ChipVqa::standard();
        let a = VlmPipeline::new(ModelZoo::gpt4o());
        let b = VlmPipeline::new(ModelZoo::llava_7b());
        let cache = AnswerCache::new();
        for q in bench.iter().take(4) {
            for pipe in [&a, &b] {
                let key = CacheKey::new(pipe.fingerprint(), q, 1, 0);
                cache.insert(key, CachedAnswer::from(&pipe.infer(q, 1, 0)));
            }
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.invalidate_model(a.fingerprint()), 4);
        assert_eq!(cache.len(), 4);
        let survivor = CacheKey::new(b.fingerprint(), &bench.questions()[0], 1, 0);
        assert!(cache.lookup(&survivor).is_some());
    }
}

//! The evaluation harness: runs a model pipeline over a collection and
//! aggregates pass@1 (or pass@k) per category — the machinery behind
//! Table II.

use std::collections::BTreeMap;

use chipvqa_core::question::Category;
use chipvqa_core::ChipVqa;
use chipvqa_models::backbone::AnswerPath;
use chipvqa_models::VlmPipeline;
use serde::{Deserialize, Serialize};

use crate::judge::{Judge, RuleJudge};
use crate::supervisor::EvalError;

/// Evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalOptions {
    /// Attempts per question; pass@k succeeds if any attempt is judged
    /// correct.
    pub attempts: u64,
    /// Image downsampling factor (1 = native; the resolution study).
    pub downsample: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            attempts: 1,
            downsample: 1,
        }
    }
}

/// Outcome of one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionOutcome {
    /// Question id.
    pub id: String,
    /// Category.
    pub category: Category,
    /// Whether any attempt passed.
    pub passed: bool,
    /// The first attempt's response text.
    pub response: String,
    /// How the first attempt came about (solved / guessed / failed).
    pub path: AnswerPath,
    /// Terminal infrastructure failure, if the question has no
    /// trustworthy answer (`None` = the model genuinely answered). Set
    /// only by supervised execution; see
    /// [`EvalError`](crate::supervisor::EvalError).
    pub error: Option<EvalError>,
}

impl QuestionOutcome {
    /// Whether the model actually answered (no infrastructure failure).
    pub fn answered(&self) -> bool {
        self.error.is_none()
    }
}

/// Aggregated evaluation results for one model on one collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// Per-question outcomes.
    pub outcomes: Vec<QuestionOutcome>,
    /// Answer-cache traffic over the run, when the executor had a cache
    /// attached (`None` for cache-less and sequential runs). Run
    /// metadata, not a result: excluded from equality.
    pub cache_stats: Option<crate::cache::CacheStats>,
}

/// Reports compare by *results* (model + outcomes). `cache_stats` is
/// run metadata — a warm cached run must compare equal to the cold or
/// sequential run that produced identical outcomes.
impl PartialEq for EvalReport {
    fn eq(&self, other: &Self) -> bool {
        self.model == other.model && self.outcomes == other.outcomes
    }
}

impl EvalReport {
    /// Overall pass rate.
    pub fn overall(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.passed).count() as f64 / self.outcomes.len() as f64
    }

    /// Pass rate for one category.
    pub fn category_rate(&self, cat: Category) -> f64 {
        let of_cat: Vec<_> = self.outcomes.iter().filter(|o| o.category == cat).collect();
        if of_cat.is_empty() {
            return 0.0;
        }
        of_cat.iter().filter(|o| o.passed).count() as f64 / of_cat.len() as f64
    }

    /// All category rates in paper column order, plus the overall rate.
    pub fn row(&self) -> (Vec<f64>, f64) {
        (
            Category::ALL
                .iter()
                .map(|&c| self.category_rate(c))
                .collect(),
            self.overall(),
        )
    }

    /// Histogram of first-attempt answer paths
    /// `(solved, guessed, failed)` — the mechanism behind the numbers:
    /// how much of the pass rate is genuine solving versus lucky
    /// guessing.
    pub fn path_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0usize, 0usize, 0usize);
        for o in &self.outcomes {
            match o.path {
                AnswerPath::Solved => h.0 += 1,
                AnswerPath::Guessed => h.1 += 1,
                AnswerPath::Failed => h.2 += 1,
            }
        }
        h
    }

    /// Per-category pass counts (passed, total).
    pub fn category_counts(&self) -> BTreeMap<Category, (usize, usize)> {
        let mut map: BTreeMap<Category, (usize, usize)> = BTreeMap::new();
        for o in &self.outcomes {
            let e = map.entry(o.category).or_default();
            e.1 += 1;
            if o.passed {
                e.0 += 1;
            }
        }
        map
    }

    // --- coverage & failure accounting (degraded-report semantics) ---

    /// Questions the model actually answered (no terminal failure).
    pub fn answered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.answered()).count()
    }

    /// Questions that terminally failed in infrastructure (excluding
    /// breaker sheds).
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.error, Some(e) if e != EvalError::BreakerOpen))
            .count()
    }

    /// Questions shed unattempted by the model's open circuit breaker.
    pub fn breaker_skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.error == Some(EvalError::BreakerOpen))
            .count()
    }

    /// Fraction of the collection with a trustworthy answer. 1.0 means
    /// the report is complete; anything lower means it is *degraded* and
    /// its pass rates undercount the model.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.answered() as f64 / self.outcomes.len() as f64
    }

    /// Whether any outcome carries a terminal failure.
    pub fn is_degraded(&self) -> bool {
        self.outcomes.iter().any(|o| o.error.is_some())
    }

    /// Terminal failures bucketed by taxonomy label, e.g.
    /// `{"timeout": 3, "breaker-open": 17}`.
    pub fn failure_breakdown(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for o in &self.outcomes {
            if let Some(e) = o.error {
                *map.entry(e.label()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Per-category `(answered, failed, breaker-skipped)` counts — the
    /// accounting shown in degraded Table II footers. The three always
    /// sum to the category's question count.
    pub fn category_accounting(&self) -> BTreeMap<Category, (usize, usize, usize)> {
        let mut map: BTreeMap<Category, (usize, usize, usize)> = BTreeMap::new();
        for o in &self.outcomes {
            let e = map.entry(o.category).or_default();
            match o.error {
                None => e.0 += 1,
                Some(EvalError::BreakerOpen) => e.2 += 1,
                Some(_) => e.1 += 1,
            }
        }
        map
    }
}

/// Runs a model over a collection with the default rule judge.
pub fn evaluate(pipe: &VlmPipeline, bench: &ChipVqa, options: EvalOptions) -> EvalReport {
    evaluate_with_judge(pipe, bench, options, &RuleJudge::new())
}

/// Runs a model over a collection with a caller-supplied judge.
pub fn evaluate_with_judge(
    pipe: &VlmPipeline,
    bench: &ChipVqa,
    options: EvalOptions,
    judge: &dyn Judge,
) -> EvalReport {
    let mut outcomes = Vec::with_capacity(bench.len());
    for q in bench.iter() {
        let mut passed = false;
        let mut first_response = String::new();
        let mut first_path = AnswerPath::Failed;
        for attempt in 0..options.attempts.max(1) {
            let resp = pipe.infer(q, options.downsample, attempt);
            if attempt == 0 {
                first_response = resp.text.clone();
                first_path = resp.path;
            }
            if judge.is_correct(q, &resp.text) {
                passed = true;
                break;
            }
        }
        outcomes.push(QuestionOutcome {
            id: q.id.clone(),
            category: q.category,
            passed,
            response: first_response,
            path: first_path,
            error: None,
        });
    }
    EvalReport {
        model: pipe.profile().name.clone(),
        outcomes,
        cache_stats: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_models::ModelZoo;

    #[test]
    fn report_rates_consistent() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let report = evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(report.outcomes.len(), 142);
        let (cats, overall) = report.row();
        assert_eq!(cats.len(), 5);
        // overall is the question-weighted mean of category rates
        let weighted: f64 = Category::ALL
            .iter()
            .zip(&cats)
            .map(|(&c, &r)| r * bench.category(c).count() as f64)
            .sum::<f64>()
            / 142.0;
        assert!((overall - weighted).abs() < 1e-9);
    }

    #[test]
    fn path_histogram_explains_the_pass_rate() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let report = evaluate(&pipe, &bench, EvalOptions::default());
        let (solved, guessed, failed) = report.path_histogram();
        assert_eq!(solved + guessed + failed, 142);
        assert!(solved > 0, "a strong model genuinely solves questions");
        assert!(guessed > 0, "MC guessing exists");
        // the challenge set removes the guessing path entirely for MC
        let chal = evaluate(&pipe, &bench.challenge(), EvalOptions::default());
        let (_, chal_guessed, _) = chal.path_histogram();
        assert_eq!(chal_guessed, 0, "no options to guess among");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::llava_7b());
        let a = evaluate(&pipe, &bench, EvalOptions::default());
        let b = evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn pass_at_k_never_below_pass_at_1() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::llava_34b());
        let p1 = evaluate(&pipe, &bench, EvalOptions::default()).overall();
        let p3 = evaluate(
            &pipe,
            &bench,
            EvalOptions {
                attempts: 3,
                ..EvalOptions::default()
            },
        )
        .overall();
        assert!(p3 >= p1, "pass@3 {p3} vs pass@1 {p1}");
    }

    #[test]
    fn challenge_collection_is_harder() {
        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let standard = evaluate(&pipe, &bench, EvalOptions::default()).overall();
        let no_choice = evaluate(&pipe, &challenge, EvalOptions::default()).overall();
        assert!(
            no_choice < standard,
            "removing choices must hurt: {no_choice} vs {standard}"
        );
    }
}

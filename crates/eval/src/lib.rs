//! Evaluation harness for the ChipVQA reproduction.
//!
//! The paper uses a hybrid judge: GPT-4 checks response/gold equivalence,
//! with human checks for visually-entangled cases. This reproduction
//! substitutes a rule-based [`judge`] (documented in DESIGN.md):
//! normalisation plus per-answer-type equivalence — option letters for
//! multiple choice, tolerance-checked numbers with units, alias sets for
//! free text, and *semantic* boolean-expression equivalence through the
//! logic substrate. For machine-generated golds the rule judge is exact
//! where an LLM judge is approximate; the [`judge::Judge`] trait keeps
//! the seam where a model-based judge would plug in.
//!
//! [`harness`] runs models over collections and produces the per-category
//! pass@1 reports of Table II; [`resolution`] runs the §IV-B image
//! degradation study; [`noisy`] models an imperfect LLM auto-judge and
//! the paper's hybrid manual-override mechanism for robustness studies.
//!
//! For large runs, [`executor`] provides a work-stealing
//! [`ParallelExecutor`] whose reports are identical to the sequential
//! harness for any worker count, with an optional answer [`cache`]
//! (hits skip inference) and judge retry with majority vote;
//! [`checkpoint`] adds kill/resume for grid evaluations. The cache can
//! be backed by a persistent content-addressed [`store`] — an
//! append-only, checksummed, crash-recoverable on-disk tier — so reruns
//! warm-start across process restarts.
//!
//! For *in-run* resilience, [`fault`] provides a deterministic, seeded
//! fault-injection harness (timeouts, truncated/garbled responses,
//! rate-limit bursts, transient errors, worker panics) and
//! [`supervisor`] the recovery side: deadlines, bounded jittered
//! retries, per-model *windowed* circuit breakers, and panic isolation.
//! Supervision works on both the materialized grid path and streaming
//! intake ([`evaluate_spec_stream`](executor::ParallelExecutor::evaluate_spec_stream))
//! with byte-identical reports. Failures that exhaust recovery become a
//! structured [`EvalError`](supervisor::EvalError) on the outcome, and
//! reports carry explicit coverage/failure accounting so a degraded
//! report is visibly degraded rather than silently wrong.
//!
//! For horizontal scale-out, [`fleet`] turns N independent processes
//! into one cooperative run: workers claim shards through atomically
//! created lease files, share one [`store`] (opened shared) as the
//! common answer plane, steal the leases of dead, recycled, or stalled
//! workers, heal their quarantined shards, and commit per-shard records
//! that [`fleet::merge`] folds — after validating spec fingerprints and
//! store generations — into reports byte-identical to a single-process
//! run under any kill schedule.
//!
//! Every layer is instrumented through `chipvqa-telemetry`: attach a
//! [`Telemetry`](chipvqa_telemetry::Telemetry) handle via
//! [`ParallelExecutor::with_telemetry`](executor::ParallelExecutor::with_telemetry)
//! to collect spans, counters and structured events (cache traffic,
//! injected faults, breaker transitions, panics, degraded-run
//! accounting). The default handle is disabled and costs one branch per
//! call site; telemetry never changes results.
//!
//! # Example
//!
//! ```
//! use chipvqa_core::ChipVqa;
//! use chipvqa_eval::harness::{evaluate, EvalOptions};
//! use chipvqa_models::{ModelZoo, VlmPipeline};
//!
//! let bench = ChipVqa::standard();
//! let pipe = VlmPipeline::new(ModelZoo::gpt4o());
//! let report = evaluate(&pipe, &bench, EvalOptions::default());
//! assert!(report.overall() > 0.0 && report.overall() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod executor;
pub mod fault;
pub mod fleet;
pub mod harness;
pub mod judge;
pub mod noisy;
pub mod normalize;
pub mod report;
pub mod resolution;
pub mod store;
pub mod supervisor;

pub use cache::{AnswerCache, CacheKey, CacheSnapshot, CacheStats, CachedAnswer};
pub use checkpoint::{Checkpoint, CheckpointError, ShardResult};
pub use executor::{ParallelExecutor, RetryPolicy, StreamStats};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use fleet::{FleetConfig, FleetError, FleetJob, FleetManifest, FleetOutcome};
pub use harness::{evaluate, EvalOptions, EvalReport};
pub use judge::{Judge, RuleJudge};
pub use noisy::{HybridJudge, NoisyJudge};
pub use store::{AnswerStore, StoreConfig, StoreMode, StoreStats};
pub use supervisor::{
    BreakerConfig, BreakerState, CircuitBreaker, EvalError, RecoveryPolicy, Supervisor,
    WindowedBreaker, BREAKER_WINDOW,
};

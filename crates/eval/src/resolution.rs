//! The §IV-B resolution study: evaluate one category at several image
//! downsampling factors.

use chipvqa_core::question::Category;
use chipvqa_core::ChipVqa;
use chipvqa_models::VlmPipeline;
use serde::{Deserialize, Serialize};

use crate::harness::{evaluate, EvalOptions};

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolutionPoint {
    /// Downsampling factor applied before the encoder.
    pub factor: usize,
    /// Pass rate at this factor.
    pub pass_rate: f64,
}

/// Runs the sweep over `factors` for one category (the paper uses
/// Digital with GPT-4o and factors 1/8/16).
pub fn resolution_sweep(
    pipe: &VlmPipeline,
    bench: &ChipVqa,
    category: Category,
    factors: &[usize],
) -> Vec<ResolutionPoint> {
    factors
        .iter()
        .map(|&factor| {
            let report = evaluate(
                pipe,
                bench,
                EvalOptions {
                    attempts: 1,
                    downsample: factor,
                },
            );
            ResolutionPoint {
                factor,
                pass_rate: report.category_rate(category),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_models::ModelZoo;

    #[test]
    fn paper_shape_eight_x_holds_sixteen_x_drops() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let pts = resolution_sweep(&pipe, &bench, Category::Digital, &[1, 8, 16]);
        assert_eq!(pts.len(), 3);
        let (native, at8, at16) = (pts[0].pass_rate, pts[1].pass_rate, pts[2].pass_rate);
        // §IV-B: 8x roughly preserves the native rate, 16x drops it.
        assert!(
            (native - at8).abs() <= 0.12,
            "8x should be close to native: {native} vs {at8}"
        );
        assert!(
            at16 < native - 0.05,
            "16x must drop materially: {at16} vs {native}"
        );
    }
}

//! The §IV-B resolution study: evaluate one category at several image
//! downsampling factors.

use chipvqa_core::question::Category;
use chipvqa_core::ChipVqa;
use chipvqa_models::VlmPipeline;
use chipvqa_telemetry::{kv, Telemetry};
use serde::{Deserialize, Serialize};

use crate::harness::{evaluate, EvalOptions};

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolutionPoint {
    /// Downsampling factor applied before the encoder.
    pub factor: usize,
    /// Pass rate at this factor.
    pub pass_rate: f64,
}

/// Runs the sweep over `factors` for one category (the paper uses
/// Digital with GPT-4o and factors 1/8/16).
pub fn resolution_sweep(
    pipe: &VlmPipeline,
    bench: &ChipVqa,
    category: Category,
    factors: &[usize],
) -> Vec<ResolutionPoint> {
    resolution_sweep_traced(pipe, bench, category, factors, &Telemetry::disabled())
}

/// [`resolution_sweep`] with per-level instrumentation: each
/// downsampling factor is timed under a `resolution.level` span
/// (annotated with the factor) and counted on `resolution.levels`.
pub fn resolution_sweep_traced(
    pipe: &VlmPipeline,
    bench: &ChipVqa,
    category: Category,
    factors: &[usize],
    tele: &Telemetry,
) -> Vec<ResolutionPoint> {
    factors
        .iter()
        .map(|&factor| {
            let _span = if tele.enabled() {
                tele.counter("resolution.levels", 1);
                tele.span_kv("resolution.level", vec![kv("factor", factor)])
            } else {
                tele.span("resolution.level")
            };
            let report = evaluate(
                pipe,
                bench,
                EvalOptions {
                    attempts: 1,
                    downsample: factor,
                },
            );
            ResolutionPoint {
                factor,
                pass_rate: report.category_rate(category),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_models::ModelZoo;

    #[test]
    fn traced_sweep_matches_and_records_levels() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::kosmos_2());
        let plain = resolution_sweep(&pipe, &bench, Category::Analog, &[1, 8]);
        let tele = Telemetry::recording();
        let traced = resolution_sweep_traced(&pipe, &bench, Category::Analog, &[1, 8], &tele);
        assert_eq!(plain, traced);
        let snap = tele.snapshot();
        assert_eq!(snap.counters["resolution.levels"], 2);
        assert_eq!(snap.spans["resolution.level"].count, 2);
    }

    #[test]
    fn paper_shape_eight_x_holds_sixteen_x_drops() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let pts = resolution_sweep(&pipe, &bench, Category::Digital, &[1, 8, 16]);
        assert_eq!(pts.len(), 3);
        let (native, at8, at16) = (pts[0].pass_rate, pts[1].pass_rate, pts[2].pass_rate);
        // §IV-B: 8x roughly preserves the native rate, 16x drops it.
        assert!(
            (native - at8).abs() <= 0.12,
            "8x should be close to native: {native} vs {at8}"
        );
        assert!(
            at16 < native - 0.05,
            "16x must drop materially: {at16} vs {native}"
        );
    }
}

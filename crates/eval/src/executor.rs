//! Work-stealing parallel evaluation.
//!
//! [`ParallelExecutor`] shards the model×question grid into contiguous
//! question ranges, distributes the shards over a pool of scoped worker
//! threads (per-worker deques with stealing, so a slow shard never
//! serialises the run), and merges outcomes back **in question order**.
//! Because the VLM pipeline is deterministic per (model, question,
//! attempt) and merging is positional, the parallel report is
//! *identical* — not just statistically equal — to the sequential
//! [`evaluate`](crate::harness::evaluate) result, for any worker count.
//!
//! Two optional layers ride on the same code path:
//!
//! * an [`AnswerCache`] that memoises model answers across runs (a warm
//!   cache skips inference entirely and re-judges the stored answers);
//! * a [`RetryPolicy`] that re-queries a flaky judge (e.g.
//!   [`NoisyJudge`](crate::noisy::NoisyJudge)) several times per verdict
//!   and takes the majority, with seeded exponential backoff between
//!   attempts. The default policy (one attempt, no backoff) reproduces
//!   single-shot judging bit-for-bit;
//! * a [`Supervisor`] that hardens the run against infrastructure
//!   failure: per-call deadlines, bounded retries, a per-model circuit
//!   breaker, and panic isolation (`catch_unwind` around each question,
//!   so one poisoned question quarantines its shard instead of aborting
//!   the run). With the all-zero [`FaultPlan`](crate::fault::FaultPlan)
//!   the supervised path is byte-identical to the unsupervised one.
//!   Supervision covers the streaming intake path too: the producer
//!   drives the supervisor's windowed breaker
//!   ([`WindowedBreaker`](crate::supervisor::WindowedBreaker)) in
//!   global question order and ships each shard's admit decisions with
//!   the shard, so supervised streamed reports are byte-identical to
//!   supervised batch reports at any worker count and shard length.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use chipvqa_core::question::Question;
use chipvqa_core::spec::DatasetSpec;
use chipvqa_core::ChipVqa;
use chipvqa_models::backbone::AnswerPath;
use chipvqa_models::VlmPipeline;
use chipvqa_telemetry::{kv, Telemetry};
use serde::{Deserialize, Serialize};

use crate::cache::{AnswerCache, CacheKey, CachedAnswer};
use crate::harness::{EvalOptions, EvalReport, QuestionOutcome};
use crate::judge::{Judge, RuleJudge};
use crate::supervisor::{BreakerSchedule, BreakerScope, EvalError, Supervisor};

/// How many questions one shard covers. Small enough that 8 workers on
/// one 142-question model all stay busy, large enough that shard
/// bookkeeping is negligible against inference.
pub const SHARD_SIZE: usize = 16;

/// Judge retry behaviour for one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Judge queries per verdict; the majority wins (ties fall to the
    /// first attempt, so `attempts = 1` is exactly single-shot judging).
    pub attempts: u64,
    /// Base backoff before each re-query, in milliseconds; attempt `i`
    /// waits `backoff_base_ms << (i - 1)` plus seeded jitter. Zero (the
    /// default) disables sleeping, which is right for in-process judges.
    pub backoff_base_ms: u64,
    /// Seed for the backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff_base_ms: 0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Majority vote over `attempts` queries of a possibly-flaky judge.
    pub fn with_attempts(attempts: u64) -> Self {
        assert!(attempts >= 1, "at least one judge attempt required");
        RetryPolicy {
            attempts,
            ..RetryPolicy::default()
        }
    }

    /// Judges `response` under this policy.
    pub fn judged(&self, judge: &dyn Judge, question: &Question, response: &str) -> bool {
        let first = judge.verdict(question, response, 0);
        if self.attempts <= 1 {
            return first;
        }
        let mut yes = u64::from(first);
        for attempt in 1..self.attempts {
            self.sleep_backoff(question, attempt);
            if judge.verdict(question, response, attempt) {
                yes += 1;
            }
        }
        // strict majority, ties to the first attempt
        if 2 * yes == self.attempts {
            first
        } else {
            2 * yes > self.attempts
        }
    }

    pub(crate) fn sleep_backoff(&self, question: &Question, attempt: u64) {
        if self.backoff_base_ms == 0 {
            return;
        }
        let base = self.backoff_base_ms << (attempt - 1).min(16);
        let jitter = seeded_jitter_ms(self.seed, &question.id, attempt, base);
        std::thread::sleep(std::time::Duration::from_millis(base + jitter));
    }
}

/// Seeded jitter in `[0, base)`: deterministic per (seed, question,
/// attempt), so reruns sleep identically. Shared by [`RetryPolicy`] and
/// the [`Supervisor`]'s recovery backoff.
pub(crate) fn seeded_jitter_ms(seed: u64, question_id: &str, attempt: u64, base: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in question_id.bytes().chain(attempt.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if base == 0 {
        0
    } else {
        h % base
    }
}

/// One unit of parallel work: a contiguous question range of one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shard {
    model_idx: usize,
    q_start: usize,
    q_end: usize,
}

/// Work-stealing evaluator producing sequential-identical reports.
///
/// Worker threads are scoped per call: every entry point joins its
/// workers before returning, so a driver that returns from (or stops
/// calling) the executor has no evaluation threads left running. The
/// resident service (`chipvqa-serve`) builds its cancel-at-batch-
/// boundary and graceful-shutdown guarantees directly on this property
/// plus [`evaluate_grid_resumable`](ParallelExecutor::evaluate_grid_resumable)'s
/// bounded `max_shards` budget.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    workers: usize,
    retry: RetryPolicy,
    cache: Option<Arc<AnswerCache>>,
    supervisor: Option<Arc<Supervisor>>,
    telemetry: Telemetry,
}

impl ParallelExecutor {
    /// An executor with `workers` threads (clamped to at least one), no
    /// cache, single-shot judging, unsupervised execution, telemetry
    /// disabled.
    pub fn new(workers: usize) -> Self {
        ParallelExecutor {
            workers: workers.max(1),
            retry: RetryPolicy::default(),
            cache: None,
            supervisor: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a shared answer cache; hits skip inference.
    pub fn with_cache(mut self, cache: Arc<AnswerCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the judge retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.attempts >= 1, "at least one judge attempt required");
        self.retry = retry;
        self
    }

    /// Attaches a [`Supervisor`]: per-call fault injection + recovery,
    /// circuit breaking, and panic isolation. A supervisor whose fault
    /// plan is all-zero leaves reports byte-identical to the
    /// unsupervised path.
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = Some(Arc::new(supervisor));
        self
    }

    /// Attaches a [`Telemetry`] handle; every worker, the supervisor and
    /// the cache path report through it. The default is
    /// [`Telemetry::disabled`], which costs one branch per call site.
    /// Telemetry never influences results: reports stay byte-identical
    /// whether it is enabled or not.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The attached telemetry handle (disabled unless configured).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<AnswerCache>> {
        self.cache.as_ref()
    }

    /// The attached supervisor, if any.
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.as_ref()
    }

    /// A copy of this executor with the supervisor detached (cache,
    /// retry policy and telemetry are kept). The calm twin of a
    /// supervised executor: used by fleet healing to re-run a
    /// quarantined shard without fault injection, matching
    /// [`requeue_quarantined`](crate::checkpoint::Checkpoint::requeue_quarantined)
    /// semantics.
    pub fn unsupervised(&self) -> ParallelExecutor {
        ParallelExecutor {
            supervisor: None,
            ..self.clone()
        }
    }

    /// Evaluates one model with the default rule judge.
    pub fn evaluate(
        &self,
        pipe: &VlmPipeline,
        bench: &ChipVqa,
        options: EvalOptions,
    ) -> EvalReport {
        self.evaluate_with_judge(pipe, bench, options, &RuleJudge::new())
    }

    /// Evaluates one model with a caller-supplied judge.
    pub fn evaluate_with_judge(
        &self,
        pipe: &VlmPipeline,
        bench: &ChipVqa,
        options: EvalOptions,
        judge: &dyn Judge,
    ) -> EvalReport {
        let pipes = std::slice::from_ref(pipe);
        let shards = plan_shards(1, bench.len());
        let results = self.run_shards(pipes, bench, options, judge, &shards);
        self.finalize(merge_reports(pipes, bench, results))
            .pop()
            .expect("one model")
    }

    /// Evaluates every model of a grid, returning reports in model order.
    pub fn evaluate_grid(
        &self,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        judge: &dyn Judge,
    ) -> Vec<EvalReport> {
        let shards = plan_shards(pipes.len(), bench.len());
        let results = self.run_shards(pipes, bench, options, judge, &shards);
        self.finalize(merge_reports(pipes, bench, results))
    }

    /// Stamps run metadata onto finished reports: the cache's traffic
    /// stats when a cache is attached. Results themselves are untouched.
    /// Also flushes the cache's persistent store (if one is attached),
    /// so a run that completes normally is durable on disk — the stats
    /// are read *after* the flush so `lifetime_*` counters include this
    /// run.
    pub(crate) fn finalize(&self, mut reports: Vec<EvalReport>) -> Vec<EvalReport> {
        if let Some(cache) = &self.cache {
            if let Err(e) = cache.flush_store() {
                self.telemetry
                    .event("store.flush_error", vec![kv("error", e.to_string())]);
            }
            let stats = cache.stats();
            for report in &mut reports {
                report.cache_stats = Some(stats);
            }
        }
        reports
    }

    /// Runs `shards`, returning each shard's outcomes (same order as the
    /// input slice). This is the engine shared by the plain entry points
    /// and checkpoint resume.
    fn run_shards(
        &self,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        judge: &dyn Judge,
        shards: &[Shard],
    ) -> Vec<Vec<QuestionOutcome>> {
        let workers = self.workers.min(shards.len()).max(1);
        let tele = &self.telemetry;
        let _run_span = if tele.enabled() {
            tele.counter("executor.shards", shards.len() as u64);
            tele.span_kv(
                "executor.run",
                vec![
                    kv("models", pipes.len()),
                    kv("workers", workers),
                    kv("shards", shards.len()),
                ],
            )
        } else {
            tele.span("executor.run")
        };

        // Supervised runs obey a precomputed per-model breaker schedule —
        // the sequential-order breaker trajectory, derived purely from
        // the fault plan — so shed/attempt decisions cannot depend on
        // worker count or steal order.
        let schedules: Option<Vec<BreakerSchedule>> = self.supervisor.as_deref().map(|sup| {
            pipes
                .iter()
                .map(|p| sup.breaker_schedule_traced(p.fingerprint(), bench, tele))
                .collect()
        });

        // Per-worker deques, round-robin seeded so early shards spread
        // across workers; idle workers steal from the back of others.
        let deques: Vec<Mutex<VecDeque<(usize, Shard)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, &shard) in shards.iter().enumerate() {
            deques[i % workers]
                .lock()
                .expect("deque lock")
                .push_back((i, shard));
        }

        let mut slots: Vec<Option<Vec<QuestionOutcome>>> = vec![None; shards.len()];
        let cache = self.cache.as_deref();
        let supervisor = self.supervisor.as_deref();
        let retry = self.retry;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for me in 0..workers {
                let deques = &deques;
                let schedules = schedules.as_deref();
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<QuestionOutcome>)> = Vec::new();
                    loop {
                        let next = take_work(deques, me, tele);
                        let Some((slot, shard)) = next else { break };
                        let pipe = &pipes[shard.model_idx];
                        let _shard_span = if tele.enabled() {
                            tele.span_kv(
                                "executor.shard",
                                vec![
                                    kv("model", &pipe.profile().name),
                                    kv("q_start", shard.q_start),
                                    kv("q_end", shard.q_end),
                                ],
                            )
                        } else {
                            tele.span("executor.shard")
                        };
                        let outcomes = bench.questions()[shard.q_start..shard.q_end]
                            .iter()
                            .enumerate()
                            .map(|(offset, q)| {
                                let _t = tele.timer("executor.question_ns");
                                let _q_span = tele.span("executor.question");
                                match (supervisor, schedules) {
                                    (Some(sup), Some(schedules)) => eval_question_isolated(
                                        pipe,
                                        q,
                                        options,
                                        judge,
                                        &retry,
                                        cache,
                                        sup,
                                        &schedules[shard.model_idx],
                                        shard.q_start + offset,
                                        tele,
                                        0,
                                    ),
                                    _ => eval_question(
                                        pipe, q, options, judge, &retry, cache, tele, 0,
                                    ),
                                }
                            })
                            .collect();
                        done.push((slot, outcomes));
                    }
                    done
                }));
            }
            for handle in handles {
                for (slot, outcomes) in handle.join().expect("worker panicked") {
                    slots[slot] = Some(outcomes);
                }
            }
        });

        slots
            .into_iter()
            .map(|s| s.expect("every shard completed"))
            .collect()
    }

    /// Evaluates one model on a *streamed* question sequence: shards are
    /// consumed as the iterator produces them, so generation overlaps
    /// inference and the whole collection is never materialized. The
    /// report is byte-identical across worker counts (per-question
    /// evaluation is deterministic and the merge is positional by shard
    /// index). Judged by the default [`RuleJudge`].
    ///
    /// With a [`Supervisor`] attached the producer decides each
    /// question's fate through the windowed breaker as it generates
    /// (see the [`supervisor`](crate::supervisor) module docs on
    /// determinism), so supervised streamed reports are byte-identical
    /// to supervised batch reports.
    pub fn evaluate_stream<I>(
        &self,
        pipe: &VlmPipeline,
        shards: I,
        options: EvalOptions,
    ) -> (EvalReport, StreamStats)
    where
        I: IntoIterator<Item = Vec<Question>>,
    {
        self.evaluate_stream_with_judge(pipe, shards, options, &RuleJudge::new())
    }

    /// [`evaluate_stream`](ParallelExecutor::evaluate_stream) with a
    /// caller-supplied judge.
    pub fn evaluate_stream_with_judge<I>(
        &self,
        pipe: &VlmPipeline,
        shards: I,
        options: EvalOptions,
        judge: &dyn Judge,
    ) -> (EvalReport, StreamStats)
    where
        I: IntoIterator<Item = Vec<Question>>,
    {
        let mut iter = shards.into_iter();
        let (report, stats) = self.run_stream(pipe, &mut iter, options, judge, 0);
        (report, stats)
    }

    /// Streaming evaluation of a [`DatasetSpec`]: generation runs
    /// shard-by-shard on the calling thread, overlapped with inference
    /// on the worker pool, with answer-cache keys bound to the spec's
    /// fingerprint. Returns the report plus [`StreamStats`] whose
    /// `generator_peak_resident` records the [`ShardStream`]'s
    /// high-water mark
    /// ([`ShardStream::peak_resident`](chipvqa_core::spec::ShardStream::peak_resident)).
    ///
    /// # Panics
    ///
    /// Panics when `shard_len` is zero or when the spec is invalid.
    pub fn evaluate_spec_stream(
        &self,
        pipe: &VlmPipeline,
        spec: &DatasetSpec,
        shard_len: usize,
        options: EvalOptions,
    ) -> (EvalReport, StreamStats) {
        self.evaluate_spec_stream_with_judge(pipe, spec, shard_len, options, &RuleJudge::new())
    }

    /// [`evaluate_spec_stream`](ParallelExecutor::evaluate_spec_stream)
    /// with a caller-supplied judge.
    pub fn evaluate_spec_stream_with_judge(
        &self,
        pipe: &VlmPipeline,
        spec: &DatasetSpec,
        shard_len: usize,
        options: EvalOptions,
        judge: &dyn Judge,
    ) -> (EvalReport, StreamStats) {
        // the guard owns the stream so the generator-side high-water
        // mark is emitted even when the run unwinds mid-stream
        let mut guard = PeakResidentGuard {
            stream: spec.stream(shard_len),
            tele: self.telemetry.clone(),
        };
        let (report, mut stats) =
            self.run_stream(pipe, &mut guard, options, judge, spec.fingerprint());
        stats.generator_peak_resident = Some(guard.stream.peak_resident());
        (report, stats)
    }

    /// Heals a *streamed* supervised report the way
    /// [`requeue_quarantined`](crate::checkpoint::Checkpoint::requeue_quarantined)
    /// heals a checkpointed one: every shard containing a
    /// [`EvalError::WorkerPanic`] outcome is regenerated lazily from the
    /// spec (only those shards — the rest of the stream is skipped
    /// without being evaluated) and re-run *unsupervised*, and the
    /// healed outcomes are patched back positionally. Returns the
    /// number of shards healed. `shard_len` must match the original
    /// streamed run, and `report` must cover the full spec.
    pub fn requeue_quarantined_stream(
        &self,
        pipe: &VlmPipeline,
        spec: &DatasetSpec,
        shard_len: usize,
        options: EvalOptions,
        report: &mut EvalReport,
    ) -> usize {
        self.requeue_quarantined_stream_with_judge(
            pipe,
            spec,
            shard_len,
            options,
            &RuleJudge::new(),
            report,
        )
    }

    /// [`requeue_quarantined_stream`](ParallelExecutor::requeue_quarantined_stream)
    /// with a caller-supplied judge.
    #[allow(clippy::too_many_arguments)]
    pub fn requeue_quarantined_stream_with_judge(
        &self,
        pipe: &VlmPipeline,
        spec: &DatasetSpec,
        shard_len: usize,
        options: EvalOptions,
        judge: &dyn Judge,
        report: &mut EvalReport,
    ) -> usize {
        assert!(shard_len > 0, "shard_len must be positive");
        assert_eq!(
            report.outcomes.len(),
            spec.total(),
            "report must cover the full spec"
        );
        let quarantined: std::collections::BTreeSet<usize> = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.error == Some(EvalError::WorkerPanic))
            .map(|(pos, _)| pos / shard_len)
            .collect();
        if quarantined.is_empty() {
            return 0;
        }
        if self.telemetry.enabled() {
            self.telemetry
                .counter("stream.requeue.shards", quarantined.len() as u64);
        }
        // lazily regenerate only the quarantined shards — windowed
        // shard indices are stable under regeneration, so skipping
        // clean shards cannot shift the quarantined ones
        let calm = self.unsupervised();
        let mut selected = spec
            .stream(shard_len)
            .enumerate()
            .filter_map(|(idx, shard)| quarantined.contains(&idx).then_some(shard));
        let (healed, _) = calm.run_stream(pipe, &mut selected, options, judge, spec.fingerprint());
        let total = report.outcomes.len();
        let mut healed_iter = healed.outcomes.into_iter();
        for &shard_idx in &quarantined {
            let start = shard_idx * shard_len;
            let end = ((shard_idx + 1) * shard_len).min(total);
            for pos in start..end {
                report.outcomes[pos] = healed_iter.next().expect("healed outcome per position");
            }
        }
        debug_assert!(healed_iter.next().is_none(), "healed run matched selection");
        quarantined.len()
    }

    /// The streaming engine: a bounded channel between the generating
    /// (calling) thread and the worker pool. In-flight questions —
    /// queued in the channel plus held by workers — are tracked so the
    /// memory bound is observable, not aspirational: the peak never
    /// exceeds `(workers + channel capacity + 1) × shard_len` =
    /// `(2·workers + 1) × shard_len`.
    ///
    /// With a [`Supervisor`] attached, the producer drives the windowed
    /// breaker in global question order as it generates and ships the
    /// per-question admit decisions alongside each shard, so workers
    /// obey the exact trajectory a batch [`BreakerSchedule`] would
    /// prescribe — shed/attempt decisions cannot depend on worker
    /// count, steal order or shard length.
    fn run_stream(
        &self,
        pipe: &VlmPipeline,
        shards: &mut dyn Iterator<Item = Vec<Question>>,
        options: EvalOptions,
        judge: &dyn Judge,
        dataset_fp: u64,
    ) -> (EvalReport, StreamStats) {
        let workers = self.workers;
        let tele = &self.telemetry;
        let _run_span = if tele.enabled() {
            tele.span_kv("executor.stream", vec![kv("workers", workers)])
        } else {
            tele.span("executor.stream")
        };

        let peak_in_flight = Arc::new(AtomicUsize::new(0));
        // emits the run's lifetime gauges even if generation or a
        // worker panic unwinds the scope below
        let _stats_guard = StreamRunGuard {
            tele: tele.clone(),
            peak_in_flight: Arc::clone(&peak_in_flight),
            cache: self.cache.clone(),
        };

        let supervisor = self.supervisor.as_deref();
        let fingerprint = pipe.fingerprint();
        let mut breaker = supervisor.map(Supervisor::stream_breaker);

        type StreamItem = (usize, Vec<Question>, Option<Vec<bool>>);
        let (tx, rx) = mpsc::sync_channel::<StreamItem>(workers);
        let rx = Mutex::new(rx);
        let in_flight = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Vec<QuestionOutcome>)>> = Mutex::new(Vec::new());
        let cache = self.cache.as_deref();
        let retry = self.retry;
        let mut shard_count = 0usize;
        let mut question_count = 0usize;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = &rx;
                let results = &results;
                let in_flight = &in_flight;
                scope.spawn(move || loop {
                    let received = rx.lock().expect("stream receiver lock").recv();
                    let Ok((idx, shard, admits)) = received else {
                        break;
                    };
                    let _shard_span = tele.span("stream.shard");
                    let outcomes: Vec<QuestionOutcome> = shard
                        .iter()
                        .enumerate()
                        .map(|(offset, q)| {
                            let _t = tele.timer("executor.question_ns");
                            let _q_span = tele.span("executor.question");
                            match (supervisor, &admits) {
                                (Some(sup), Some(admits)) => {
                                    if !admits[offset] {
                                        tele.counter("stream.breaker.shed", 1);
                                        return failed_outcome(
                                            q,
                                            String::new(),
                                            EvalError::BreakerOpen,
                                        );
                                    }
                                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                                        eval_question_supervised(
                                            pipe, q, options, judge, &retry, cache, sup, tele,
                                            dataset_fp,
                                        )
                                    }))
                                    .unwrap_or_else(|_| {
                                        if tele.enabled() {
                                            tele.counter("executor.panic_caught", 1);
                                            tele.event("worker.panic", vec![kv("question", &q.id)]);
                                        }
                                        failed_outcome(q, String::new(), EvalError::WorkerPanic)
                                    })
                                }
                                _ => std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    eval_question(
                                        pipe, q, options, judge, &retry, cache, tele, dataset_fp,
                                    )
                                }))
                                .unwrap_or_else(|_| {
                                    if tele.enabled() {
                                        tele.counter("executor.panic_caught", 1);
                                        tele.event("worker.panic", vec![kv("question", &q.id)]);
                                    }
                                    failed_outcome(q, String::new(), EvalError::WorkerPanic)
                                }),
                            }
                        })
                        .collect();
                    in_flight.fetch_sub(shard.len(), Ordering::Relaxed);
                    tele.counter("stream.shard_evaluated", 1);
                    results
                        .lock()
                        .expect("stream results lock")
                        .push((idx, outcomes));
                });
            }

            // the calling thread is the producer: generation (and,
            // supervised, breaker admission) overlaps the workers'
            // inference
            let mut idx = 0usize;
            loop {
                let shard = {
                    let _t = tele.timer("stream.generate_ns");
                    let _g_span = tele.span("stream.generate");
                    shards.next()
                };
                let Some(shard) = shard else { break };
                let admits = supervisor.map(|sup| {
                    let wb = breaker.as_mut().expect("breaker exists with supervisor");
                    let _b_span = tele.span("stream.breaker");
                    shard
                        .iter()
                        .map(|q| {
                            sup.admit_traced(wb, fingerprint, &q.id, tele, BreakerScope::Stream)
                        })
                        .collect::<Vec<bool>>()
                });
                shard_count += 1;
                question_count += shard.len();
                let now = in_flight.fetch_add(shard.len(), Ordering::Relaxed) + shard.len();
                peak_in_flight.fetch_max(now, Ordering::Relaxed);
                if tele.enabled() {
                    tele.counter("stream.shard_generated", 1);
                    tele.counter("stream.questions", shard.len() as u64);
                }
                if tx.send((idx, shard, admits)).is_err() {
                    break; // all workers gone (cannot happen unpanicked)
                }
                idx += 1;
            }
            drop(tx); // closes the channel; workers drain and exit
        });

        let mut pairs = results.into_inner().expect("stream results lock");
        pairs.sort_by_key(|&(idx, _)| idx);
        let quarantined_shards = pairs
            .iter()
            .filter(|(_, outcomes)| {
                outcomes
                    .iter()
                    .any(|o| o.error == Some(EvalError::WorkerPanic))
            })
            .count();
        let report = EvalReport {
            model: pipe.profile().name.clone(),
            outcomes: pairs.into_iter().flat_map(|(_, o)| o).collect(),
            cache_stats: None,
        };
        let report = self
            .finalize(vec![report])
            .pop()
            .expect("one streamed report");
        let stats = StreamStats {
            shards: shard_count,
            questions: question_count,
            peak_in_flight: peak_in_flight.load(Ordering::Relaxed),
            generator_peak_resident: None,
            quarantined_shards,
        };
        (report, stats)
    }
}

/// Drop-guard that emits a streaming run's lifetime gauges —
/// `stream.peak_in_flight` plus the attached cache's
/// `cache.lifetime_hits` / `cache.lifetime_misses` — when the run ends
/// *however* it ends. A panicking generator or a worker panic that
/// escapes isolation unwinds through [`ParallelExecutor::run_stream`];
/// without the guard those emissions would sit after the unwind point
/// and be lost.
struct StreamRunGuard {
    tele: Telemetry,
    peak_in_flight: Arc<AtomicUsize>,
    cache: Option<Arc<AnswerCache>>,
}

impl Drop for StreamRunGuard {
    fn drop(&mut self) {
        if !self.tele.enabled() {
            return;
        }
        self.tele.gauge(
            "stream.peak_in_flight",
            self.peak_in_flight.load(Ordering::Relaxed) as f64,
        );
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            self.tele
                .gauge("cache.lifetime_hits", stats.lifetime_hits as f64);
            self.tele
                .gauge("cache.lifetime_misses", stats.lifetime_misses as f64);
        }
    }
}

/// Drop-guard around a [`ShardStream`](chipvqa_core::spec::ShardStream):
/// delegates iteration, and emits the generator-side
/// `stream.peak_resident` gauge on drop so the memory high-water mark
/// survives error/early-return paths (the happy path additionally
/// records it on [`StreamStats`]).
struct PeakResidentGuard {
    stream: chipvqa_core::spec::ShardStream,
    tele: Telemetry,
}

impl Iterator for PeakResidentGuard {
    type Item = Vec<Question>;

    fn next(&mut self) -> Option<Vec<Question>> {
        self.stream.next()
    }
}

impl Drop for PeakResidentGuard {
    fn drop(&mut self) {
        if self.tele.enabled() {
            self.tele
                .gauge("stream.peak_resident", self.stream.peak_resident() as f64);
        }
    }
}

/// Observability of one streaming run: how much was generated and the
/// high-water marks that certify the memory bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Shards generated (and evaluated).
    pub shards: usize,
    /// Questions generated (and evaluated).
    pub questions: usize,
    /// Peak questions in flight inside the executor: queued in the
    /// bounded channel plus held by workers. Bounded by
    /// `(2·workers + 1) × shard_len`.
    pub peak_in_flight: usize,
    /// The generator-side high-water mark
    /// ([`ShardStream::peak_resident`](chipvqa_core::spec::ShardStream::peak_resident)),
    /// recorded by the spec-streaming entry points; `None` for generic
    /// iterator streams.
    pub generator_peak_resident: Option<usize>,
    /// Shards containing at least one
    /// [`EvalError::WorkerPanic`] outcome — the ones
    /// [`requeue_quarantined_stream`](ParallelExecutor::requeue_quarantined_stream)
    /// would heal. Zero on unsupervised runs without genuine panics.
    #[serde(default)]
    pub quarantined_shards: usize,
}

/// Pops local work, stealing from the busiest-looking victim when the
/// local deque is empty. Returns `None` when no work is left anywhere.
fn take_work(
    deques: &[Mutex<VecDeque<(usize, Shard)>>],
    me: usize,
    tele: &Telemetry,
) -> Option<(usize, Shard)> {
    if let Some(item) = deques[me].lock().expect("deque lock").pop_front() {
        tele.counter("executor.queue.local_pop", 1);
        return Some(item);
    }
    for offset in 1..deques.len() {
        let victim = (me + offset) % deques.len();
        if let Some(item) = deques[victim].lock().expect("deque lock").pop_back() {
            tele.counter("executor.queue.steal", 1);
            return Some(item);
        }
    }
    None
}

/// The grid's shard list in deterministic (model, question-range) order.
fn plan_shards(models: usize, questions: usize) -> Vec<Shard> {
    let mut shards = Vec::new();
    for model_idx in 0..models {
        let mut q_start = 0;
        while q_start < questions {
            let q_end = (q_start + SHARD_SIZE).min(questions);
            shards.push(Shard {
                model_idx,
                q_start,
                q_end,
            });
            q_start = q_end;
        }
    }
    shards
}

/// Exactly the sequential harness's per-question loop, with the cache
/// interposed before inference and the retry policy around the judge.
/// `dataset_fp` keys the cache to a [`DatasetSpec`] (0 = canonical).
#[allow(clippy::too_many_arguments)]
fn eval_question(
    pipe: &VlmPipeline,
    q: &Question,
    options: EvalOptions,
    judge: &dyn Judge,
    retry: &RetryPolicy,
    cache: Option<&AnswerCache>,
    tele: &Telemetry,
    dataset_fp: u64,
) -> QuestionOutcome {
    let mut passed = false;
    let mut first_response = String::new();
    let mut first_path = AnswerPath::Failed;
    for attempt in 0..options.attempts.max(1) {
        let answer = infer_cached_for(
            pipe,
            q,
            options.downsample,
            attempt,
            cache,
            tele,
            dataset_fp,
        );
        if attempt == 0 {
            first_response = answer.text.clone();
            first_path = answer.path;
        }
        let verdict = {
            let _span = tele.span("judge");
            retry.judged(judge, q, &answer.text)
        };
        if verdict {
            passed = true;
            break;
        }
    }
    note_verdict(tele, q, passed);
    QuestionOutcome {
        id: q.id.clone(),
        category: q.category,
        passed,
        response: first_response,
        path: first_path,
        error: None,
    }
}

/// Counts one final verdict, bucketed by answer type:
/// `judge.verdict.{multiple-choice|short-answer}.{pass|fail}`.
fn note_verdict(tele: &Telemetry, q: &Question, passed: bool) {
    if !tele.enabled() {
        return;
    }
    let name = match (q.is_multiple_choice(), passed) {
        (true, true) => "judge.verdict.multiple-choice.pass",
        (true, false) => "judge.verdict.multiple-choice.fail",
        (false, true) => "judge.verdict.short-answer.pass",
        (false, false) => "judge.verdict.short-answer.fail",
    };
    tele.counter(name, 1);
}

/// Supervised per-question evaluation with panic isolation: breaker
/// sheds never run, injected (or genuine) worker panics are caught with
/// `catch_unwind` and become a structured [`EvalError::WorkerPanic`]
/// outcome — quarantining the question instead of aborting the run.
#[allow(clippy::too_many_arguments)]
fn eval_question_isolated(
    pipe: &VlmPipeline,
    q: &Question,
    options: EvalOptions,
    judge: &dyn Judge,
    retry: &RetryPolicy,
    cache: Option<&AnswerCache>,
    sup: &Supervisor,
    schedule: &BreakerSchedule,
    question_index: usize,
    tele: &Telemetry,
    dataset_fp: u64,
) -> QuestionOutcome {
    if !schedule.attempts_question(question_index) {
        tele.counter("breaker.shed", 1);
        return failed_outcome(q, String::new(), EvalError::BreakerOpen);
    }
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        eval_question_supervised(pipe, q, options, judge, retry, cache, sup, tele, dataset_fp)
    }))
    .unwrap_or_else(|_| {
        if tele.enabled() {
            tele.counter("executor.panic_caught", 1);
            tele.event("worker.panic", vec![kv("question", &q.id)]);
        }
        failed_outcome(q, String::new(), EvalError::WorkerPanic)
    })
}

/// The supervised mirror of [`eval_question`]: every inference and judge
/// call goes through the supervisor's fault injection + recovery. The
/// first terminal failure at any site aborts the question with a
/// structured error (degraded truncated/garbled evidence is kept as the
/// recorded response).
#[allow(clippy::too_many_arguments)]
fn eval_question_supervised(
    pipe: &VlmPipeline,
    q: &Question,
    options: EvalOptions,
    judge: &dyn Judge,
    retry: &RetryPolicy,
    cache: Option<&AnswerCache>,
    sup: &Supervisor,
    tele: &Telemetry,
    dataset_fp: u64,
) -> QuestionOutcome {
    let fingerprint = pipe.fingerprint();
    let mut passed = false;
    let mut first_response = String::new();
    let mut first_path = AnswerPath::Failed;
    let mut error = None;
    'attempts: for attempt in 0..options.attempts.max(1) {
        match sup.infer(
            pipe,
            q,
            options.downsample,
            attempt,
            cache,
            tele,
            dataset_fp,
        ) {
            Ok(answer) => {
                if attempt == 0 {
                    first_response = answer.text.clone();
                    first_path = answer.path;
                }
                let judged = {
                    let _span = tele.span("judge");
                    sup.judged(judge, retry, fingerprint, q, &answer.text, tele)
                };
                match judged {
                    Ok(true) => {
                        passed = true;
                        break 'attempts;
                    }
                    Ok(false) => {}
                    Err(e) => {
                        error = Some(e);
                        break 'attempts;
                    }
                }
            }
            Err((e, degraded)) => {
                if attempt == 0 {
                    if let Some(text) = degraded {
                        first_response = text;
                    }
                }
                error = Some(e);
                break 'attempts;
            }
        }
    }
    let passed = passed && error.is_none();
    if error.is_none() {
        note_verdict(tele, q, passed);
    }
    QuestionOutcome {
        id: q.id.clone(),
        category: q.category,
        passed,
        response: first_response,
        path: first_path,
        error,
    }
}

fn failed_outcome(q: &Question, response: String, error: EvalError) -> QuestionOutcome {
    QuestionOutcome {
        id: q.id.clone(),
        category: q.category,
        passed: false,
        response,
        path: AnswerPath::Failed,
        error: Some(error),
    }
}

/// Cache-interposed inference, keyed to a spec fingerprint so answers
/// for spec-generated collections never cross specs (0 = canonical).
pub(crate) fn infer_cached_for(
    pipe: &VlmPipeline,
    q: &Question,
    downsample: usize,
    attempt: u64,
    cache: Option<&AnswerCache>,
    tele: &Telemetry,
    dataset_fp: u64,
) -> CachedAnswer {
    let Some(cache) = cache else {
        let _span = tele.span("inference");
        return CachedAnswer::from(&pipe.infer(q, downsample, attempt));
    };
    let key = CacheKey::for_dataset(pipe.fingerprint(), dataset_fp, q, downsample, attempt);
    if let Some(hit) = cache.lookup(&key) {
        tele.counter("cache.hit", 1);
        return hit;
    }
    tele.counter("cache.miss", 1);
    let answer = {
        let _span = tele.span("inference");
        CachedAnswer::from(&pipe.infer(q, downsample, attempt))
    };
    cache.insert(key, answer.clone());
    tele.counter("cache.insert", 1);
    answer
}

/// Merges per-shard outcomes into per-model reports, question order
/// restored positionally.
fn merge_reports(
    pipes: &[VlmPipeline],
    bench: &ChipVqa,
    results: Vec<Vec<QuestionOutcome>>,
) -> Vec<EvalReport> {
    let shards = plan_shards(pipes.len(), bench.len());
    assert_eq!(shards.len(), results.len(), "one result per shard");
    let mut per_model: Vec<Vec<Option<QuestionOutcome>>> =
        pipes.iter().map(|_| vec![None; bench.len()]).collect();
    for (shard, outcomes) in shards.iter().zip(results) {
        assert_eq!(outcomes.len(), shard.q_end - shard.q_start, "shard shape");
        for (offset, outcome) in outcomes.into_iter().enumerate() {
            per_model[shard.model_idx][shard.q_start + offset] = Some(outcome);
        }
    }
    pipes
        .iter()
        .zip(per_model)
        .map(|(pipe, slots)| EvalReport {
            model: pipe.profile().name.clone(),
            outcomes: slots
                .into_iter()
                .map(|s| s.expect("grid fully covered"))
                .collect(),
            cache_stats: None,
        })
        .collect()
}

/// Internal hooks for the checkpoint module: shard planning and shard
/// execution with a caller-chosen subset.
pub(crate) mod internal {
    use super::*;

    /// Serialisable mirror of the internal shard (stable identity for
    /// checkpoints).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct ShardKey {
        /// Model index in the grid.
        pub model_idx: usize,
        /// First question index (inclusive).
        pub q_start: usize,
        /// Last question index (exclusive).
        pub q_end: usize,
    }

    /// Shard keys for a grid, in canonical order.
    pub fn shard_keys(models: usize, questions: usize) -> Vec<ShardKey> {
        plan_shards(models, questions)
            .into_iter()
            .map(|s| ShardKey {
                model_idx: s.model_idx,
                q_start: s.q_start,
                q_end: s.q_end,
            })
            .collect()
    }

    /// Runs exactly `keys` (any subset of the canonical plan) and
    /// returns their outcomes in the same order.
    pub fn run_selected(
        exec: &ParallelExecutor,
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        options: EvalOptions,
        judge: &dyn Judge,
        keys: &[ShardKey],
    ) -> Vec<Vec<QuestionOutcome>> {
        let shards: Vec<Shard> = keys
            .iter()
            .map(|k| Shard {
                model_idx: k.model_idx,
                q_start: k.q_start,
                q_end: k.q_end,
            })
            .collect();
        exec.run_shards(pipes, bench, options, judge, &shards)
    }

    /// Positional merge exposed for checkpoint assembly.
    pub fn merge_from_pairs(
        pipes: &[VlmPipeline],
        bench: &ChipVqa,
        pairs: &[(ShardKey, Vec<QuestionOutcome>)],
    ) -> Vec<EvalReport> {
        let mut per_model: Vec<Vec<Option<QuestionOutcome>>> =
            pipes.iter().map(|_| vec![None; bench.len()]).collect();
        for (key, outcomes) in pairs {
            assert_eq!(outcomes.len(), key.q_end - key.q_start, "shard shape");
            for (offset, outcome) in outcomes.iter().enumerate() {
                per_model[key.model_idx][key.q_start + offset] = Some(outcome.clone());
            }
        }
        pipes
            .iter()
            .zip(per_model)
            .map(|(pipe, slots)| EvalReport {
                model: pipe.profile().name.clone(),
                outcomes: slots
                    .into_iter()
                    .map(|s| s.expect("grid fully covered"))
                    .collect(),
                cache_stats: None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::evaluate_with_judge;
    use crate::noisy::NoisyJudge;
    use chipvqa_models::ModelZoo;

    #[test]
    fn parallel_matches_sequential_exactly() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let seq = crate::harness::evaluate(&pipe, &bench, EvalOptions::default());
        for workers in [1, 3, 8] {
            let par =
                ParallelExecutor::new(workers).evaluate(&pipe, &bench, EvalOptions::default());
            assert_eq!(seq, par, "workers = {workers}");
        }
    }

    #[test]
    fn cache_is_semantically_transparent() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::llava_13b());
        let cache = Arc::new(AnswerCache::new());
        let exec = ParallelExecutor::new(4).with_cache(Arc::clone(&cache));

        let cold = exec.evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(cache.hits(), 0, "cold run cannot hit");
        assert_eq!(cache.len(), bench.len());

        let warm = exec.evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(cold, warm, "warm report identical");
        assert_eq!(cache.hits() as usize, bench.len(), "warm run all hits");

        let seq = crate::harness::evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(seq, warm, "cache never changes results");
    }

    #[test]
    fn default_retry_is_single_shot() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::fuyu_8b());
        let judge = NoisyJudge::new(RuleJudge::new(), 0.05, 9);
        let seq = evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &judge);
        let par = ParallelExecutor::new(4).evaluate_with_judge(
            &pipe,
            &bench,
            EvalOptions::default(),
            &judge,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn majority_vote_tames_a_flaky_judge() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let clean = crate::harness::evaluate(&pipe, &bench, EvalOptions::default());
        let flaky = NoisyJudge::new(RuleJudge::new(), 0.10, 3);

        let single = ParallelExecutor::new(4).evaluate_with_judge(
            &pipe,
            &bench,
            EvalOptions::default(),
            &flaky,
        );
        let voted = ParallelExecutor::new(4)
            .with_retry(RetryPolicy::with_attempts(5))
            .evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &flaky);

        let disagree = |a: &EvalReport, b: &EvalReport| {
            a.outcomes
                .iter()
                .zip(&b.outcomes)
                .filter(|(x, y)| x.passed != y.passed)
                .count()
        };
        let err_single = disagree(&clean, &single);
        let err_voted = disagree(&clean, &voted);
        assert!(
            err_voted < err_single,
            "majority vote must reduce flips: {err_voted} vs {err_single}"
        );
    }

    #[test]
    fn grid_reports_match_per_model_runs() {
        let bench = ChipVqa::standard();
        let pipes: Vec<VlmPipeline> = [
            ModelZoo::gpt4o(),
            ModelZoo::llava_7b(),
            ModelZoo::kosmos_2(),
        ]
        .into_iter()
        .map(VlmPipeline::new)
        .collect();
        let exec = ParallelExecutor::new(6);
        let grid = exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new());
        assert_eq!(grid.len(), pipes.len());
        for (pipe, report) in pipes.iter().zip(&grid) {
            let solo = crate::harness::evaluate(pipe, &bench, EvalOptions::default());
            assert_eq!(&solo, report);
        }
    }

    #[test]
    fn shard_plan_covers_grid_exactly_once() {
        let shards = plan_shards(3, 142);
        let mut seen = vec![vec![0u8; 142]; 3];
        for s in &shards {
            #[allow(clippy::needless_range_loop)]
            for qi in s.q_start..s.q_end {
                seen[s.model_idx][qi] += 1;
            }
        }
        assert!(seen.iter().flatten().all(|&n| n == 1));
    }

    #[test]
    fn supervised_zero_plan_is_byte_identical() {
        use crate::fault::FaultPlan;
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::llava_llama3());
        let plain = ParallelExecutor::new(4).evaluate(&pipe, &bench, EvalOptions::default());
        let supervised = ParallelExecutor::new(4)
            .with_supervisor(Supervisor::new(FaultPlan::none()))
            .evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(plain, supervised);
        assert_eq!(
            serde_json::to_string(&plain).expect("serializes"),
            serde_json::to_string(&supervised).expect("serializes"),
            "byte-identical, not just structurally equal"
        );
        assert!(!supervised.is_degraded());
        assert_eq!(supervised.answered(), bench.len());
    }

    #[test]
    fn chaos_run_is_worker_count_invariant_and_accounted() {
        use crate::fault::{install_quiet_panic_hook, FaultPlan};
        install_quiet_panic_hook();
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::phi3_vision());
        let sup = || Supervisor::new(FaultPlan::uniform(902, 0.03));
        let reference = ParallelExecutor::new(1).with_supervisor(sup()).evaluate(
            &pipe,
            &bench,
            EvalOptions::default(),
        );
        assert!(reference.is_degraded(), "3% x 6 kinds must hit something");
        assert_eq!(
            reference.answered() + reference.failed() + reference.breaker_skipped(),
            bench.len(),
            "accounting covers every question"
        );
        for workers in [2usize, 8] {
            let par = ParallelExecutor::new(workers)
                .with_supervisor(sup())
                .evaluate(&pipe, &bench, EvalOptions::default());
            assert_eq!(reference, par, "workers = {workers}");
        }
    }

    #[test]
    fn broken_model_is_shed_without_contaminating_the_grid() {
        use crate::fault::FaultPlan;
        let bench = ChipVqa::standard();
        let pipes: Vec<VlmPipeline> = [ModelZoo::gpt4o(), ModelZoo::fuyu_8b()]
            .into_iter()
            .map(VlmPipeline::new)
            .collect();
        let broken = pipes[1].fingerprint();
        let exec = ParallelExecutor::new(4)
            .with_supervisor(Supervisor::new(FaultPlan::none().with_broken_model(broken)));
        let grid = exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new());

        // the healthy model is untouched — byte-identical to a clean run
        let clean = crate::harness::evaluate(&pipes[0], &bench, EvalOptions::default());
        assert_eq!(grid[0], clean);

        // the broken model is mostly shed by its breaker, explicitly
        let report = &grid[1];
        assert!(report.breaker_skipped() > bench.len() / 2);
        assert_eq!(report.answered(), 0, "a dead backend answers nothing");
        assert_eq!(
            report.answered() + report.failed() + report.breaker_skipped(),
            bench.len()
        );
        assert_eq!(report.overall(), 0.0);
        let breakdown = report.failure_breakdown();
        assert!(breakdown.contains_key("transient"));
        assert!(breakdown.contains_key("breaker-open"));
    }

    #[test]
    fn injected_panics_are_quarantined_not_fatal() {
        use crate::fault::{install_quiet_panic_hook, FaultPlan};
        use crate::supervisor::EvalError;
        install_quiet_panic_hook();
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::paligemma());
        let exec = ParallelExecutor::new(4).with_supervisor(Supervisor::new(FaultPlan {
            panic_rate: 0.10,
            ..FaultPlan::none()
        }));
        // must complete despite ~14 worker crashes
        let report = exec.evaluate(&pipe, &bench, EvalOptions::default());
        let panics = report
            .outcomes
            .iter()
            .filter(|o| o.error == Some(EvalError::WorkerPanic))
            .count();
        assert!(panics > 0, "panics were injected");
        assert_eq!(report.outcomes.len(), bench.len(), "no question lost");
        assert_eq!(report.failed(), panics);
    }

    #[test]
    fn enabled_telemetry_never_changes_reports() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let plain = ParallelExecutor::new(4).evaluate(&pipe, &bench, EvalOptions::default());
        let tele = Telemetry::recording();
        let traced = ParallelExecutor::new(4)
            .with_telemetry(tele.clone())
            .evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(plain, traced);
        assert_eq!(
            serde_json::to_string(&plain).expect("serializes"),
            serde_json::to_string(&traced).expect("serializes"),
            "telemetry must be invisible in the serialized report"
        );
        let snap = tele.snapshot();
        assert_eq!(snap.spans["executor.run"].count, 1);
        assert_eq!(
            snap.counters["executor.queue.local_pop"] + snap.counters["executor.queue.steal"],
            snap.counters["executor.shards"],
            "every shard was popped or stolen exactly once"
        );
        let verdicts: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("judge.verdict."))
            .map(|(_, n)| n)
            .sum();
        assert_eq!(verdicts as usize, bench.len(), "one verdict per question");
        assert_eq!(
            snap.histograms["executor.question_ns"].count as usize,
            bench.len()
        );
    }

    #[test]
    fn cache_traffic_shows_up_in_counters_and_report_stats() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::neva_22b());
        let cache = Arc::new(AnswerCache::new());
        let tele = Telemetry::recording();
        let exec = ParallelExecutor::new(2)
            .with_cache(Arc::clone(&cache))
            .with_telemetry(tele.clone());
        let cold = exec.evaluate(&pipe, &bench, EvalOptions::default());
        let warm = exec.evaluate(&pipe, &bench, EvalOptions::default());
        let snap = tele.snapshot();
        assert_eq!(snap.counters["cache.miss"] as usize, bench.len());
        assert_eq!(snap.counters["cache.insert"] as usize, bench.len());
        assert_eq!(snap.counters["cache.hit"] as usize, bench.len());
        // spans are hierarchical: inference nests under the worker's
        // shard/question spans
        assert_eq!(
            snap.spans["executor.shard/executor.question/inference"].count as usize,
            bench.len()
        );

        // the report carries the cache's cumulative stats at merge time
        let cold_stats = cold.cache_stats.expect("cache attached");
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.misses as usize, bench.len());
        let warm_stats = warm.cache_stats.expect("cache attached");
        assert_eq!(warm_stats.hits as usize, bench.len());
        assert_eq!(warm_stats, cache.stats());
    }

    #[test]
    fn streamed_standard_bench_matches_batch_evaluation() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let batch = crate::harness::evaluate(&pipe, &bench, EvalOptions::default());
        for workers in [1usize, 4] {
            let shards: Vec<Vec<Question>> = bench
                .questions()
                .chunks(SHARD_SIZE)
                .map(<[Question]>::to_vec)
                .collect();
            let (streamed, stats) = ParallelExecutor::new(workers).evaluate_stream(
                &pipe,
                shards,
                EvalOptions::default(),
            );
            assert_eq!(batch, streamed, "workers = {workers}");
            assert_eq!(stats.questions, bench.len());
            assert_eq!(stats.shards, bench.len().div_ceil(SHARD_SIZE));
            assert!(stats.peak_in_flight <= (2 * workers + 1) * SHARD_SIZE);
        }
    }

    #[test]
    fn spec_stream_keys_cache_on_spec_fingerprint() {
        use chipvqa_core::spec::DatasetSpec;
        let pipe = VlmPipeline::new(ModelZoo::llava_7b());
        let cache = Arc::new(AnswerCache::new());
        let exec = ParallelExecutor::new(2).with_cache(Arc::clone(&cache));
        let spec = DatasetSpec::default();
        let (_, _) = exec.evaluate_spec_stream(&pipe, &spec, 16, EvalOptions::default());
        let snapshot = cache.snapshot();
        assert!(!snapshot.entries.is_empty());
        assert!(
            snapshot
                .entries
                .iter()
                .all(|(k, _)| k.dataset_fingerprint == spec.fingerprint()),
            "streamed entries are bound to the spec"
        );
        // the canonical batch path uses fingerprint 0, so the same
        // questions miss rather than crossing specs
        let before = cache.len();
        exec.evaluate(&pipe, &ChipVqa::standard(), EvalOptions::default());
        assert_eq!(cache.len(), 2 * before, "no cross-spec hits");
    }

    #[test]
    fn supervised_streaming_matches_supervised_batch() {
        use crate::fault::{install_quiet_panic_hook, FaultPlan};
        install_quiet_panic_hook();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let spec = DatasetSpec::scaled(1);
        let bench = spec.build();
        let sup = || Supervisor::new(FaultPlan::uniform(902, 0.03));
        let batch = ParallelExecutor::new(2).with_supervisor(sup()).evaluate(
            &pipe,
            &bench,
            EvalOptions::default(),
        );
        assert!(batch.is_degraded(), "the plan must hit something");
        for workers in [1usize, 4] {
            let supervised = ParallelExecutor::new(workers).with_supervisor(sup());
            let (streamed, stats) =
                supervised.evaluate_spec_stream(&pipe, &spec, SHARD_SIZE, EvalOptions::default());
            assert_eq!(
                serde_json::to_string(&batch).expect("serializes"),
                serde_json::to_string(&streamed).expect("serializes"),
                "workers = {workers}"
            );
            assert_eq!(stats.questions, spec.total());
        }
    }

    #[test]
    fn supervised_stream_zero_plan_matches_unsupervised_stream() {
        use crate::fault::FaultPlan;
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let spec = DatasetSpec::scaled(1);
        let calm = ParallelExecutor::new(2);
        let (plain, _) =
            calm.evaluate_spec_stream(&pipe, &spec, SHARD_SIZE, EvalOptions::default());
        let supervised = calm
            .clone()
            .with_supervisor(Supervisor::new(FaultPlan::none()));
        let (zero, stats) =
            supervised.evaluate_spec_stream(&pipe, &spec, SHARD_SIZE, EvalOptions::default());
        assert_eq!(
            serde_json::to_string(&plain).expect("serializes"),
            serde_json::to_string(&zero).expect("serializes"),
            "zero-plan supervised streaming is byte-identical to unsupervised"
        );
        assert_eq!(stats.quarantined_shards, 0);
        // detaching the supervisor (the fleet healing path) still works
        let detached = supervised.unsupervised();
        assert!(detached.supervisor().is_none());
        let (report, _) =
            detached.evaluate_spec_stream(&pipe, &spec, SHARD_SIZE, EvalOptions::default());
        assert_eq!(report.outcomes.len(), spec.total());
    }

    #[test]
    fn streamed_quarantine_heals_by_requeue() {
        use crate::fault::{install_quiet_panic_hook, FaultPlan};
        install_quiet_panic_hook();
        let pipe = VlmPipeline::new(ModelZoo::paligemma());
        let spec = DatasetSpec::scaled(1);
        let clean = ParallelExecutor::new(4).evaluate(&pipe, &spec.build(), EvalOptions::default());
        let exec = ParallelExecutor::new(4).with_supervisor(Supervisor::new(FaultPlan {
            panic_rate: 0.08,
            ..FaultPlan::none()
        }));
        let (mut report, stats) =
            exec.evaluate_spec_stream(&pipe, &spec, SHARD_SIZE, EvalOptions::default());
        assert!(stats.quarantined_shards > 0, "panics were injected");
        let healed = exec.requeue_quarantined_stream(
            &pipe,
            &spec,
            SHARD_SIZE,
            EvalOptions::default(),
            &mut report,
        );
        assert_eq!(healed, stats.quarantined_shards);
        report.cache_stats = None;
        assert_eq!(
            serde_json::to_string(&clean).expect("serializes"),
            serde_json::to_string(&report).expect("serializes"),
            "healed streamed report converges to the clean bytes"
        );
        // a clean report heals nothing
        let mut untouched = report.clone();
        assert_eq!(
            exec.requeue_quarantined_stream(
                &pipe,
                &spec,
                SHARD_SIZE,
                EvalOptions::default(),
                &mut untouched
            ),
            0
        );
    }

    #[test]
    fn stream_gauges_survive_a_generator_panic() {
        use crate::fault::install_quiet_panic_hook;
        install_quiet_panic_hook();
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let cache = Arc::new(AnswerCache::new());
        let tele = Telemetry::recording();
        let exec = ParallelExecutor::new(2)
            .with_cache(Arc::clone(&cache))
            .with_telemetry(tele.clone());
        let questions = bench.questions().to_vec();
        let shards = (0..4).map(move |i| {
            if i == 2 {
                panic!("generator exploded mid-stream");
            }
            questions[i * SHARD_SIZE..(i + 1) * SHARD_SIZE].to_vec()
        });
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.evaluate_stream(&pipe, shards, EvalOptions::default())
        }));
        assert!(caught.is_err(), "the generator panic propagates");
        // the drop-guard emitted the lifetime gauges despite the unwind
        let snap = tele.snapshot();
        assert!(
            snap.gauges["stream.peak_in_flight"] >= SHARD_SIZE as f64,
            "peak gauge emitted on the unwind path"
        );
        let stats = cache.stats();
        assert_eq!(
            snap.gauges["cache.lifetime_misses"],
            stats.lifetime_misses as f64
        );
        assert_eq!(
            snap.gauges["cache.lifetime_hits"],
            stats.lifetime_hits as f64
        );
    }

    #[test]
    fn tie_votes_fall_to_first_attempt() {
        struct AlternatingJudge;
        impl Judge for AlternatingJudge {
            fn is_correct(&self, _q: &Question, _r: &str) -> bool {
                true
            }
            fn verdict(&self, _q: &Question, _r: &str, attempt: u64) -> bool {
                attempt.is_multiple_of(2)
            }
        }
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        // attempts = 2: one yes (attempt 0), one no -> tie -> first = yes
        let policy = RetryPolicy::with_attempts(2);
        assert!(policy.judged(&AlternatingJudge, q, "x"));
        // attempts = 4: 2 yes, 2 no -> tie -> still the first attempt
        let policy = RetryPolicy::with_attempts(4);
        assert!(policy.judged(&AlternatingJudge, q, "x"));
    }
}

//! Persistent, append-only, content-addressed answer store.
//!
//! [`AnswerStore`] is the on-disk tier beneath [`AnswerCache`]: the
//! "only ask again if prompt or model changed" caching the in-memory
//! cache provides *within* a process, made durable *across* processes.
//! A warm-started rerun — same models, same spec, same options — serves
//! every answer from disk and never touches the inference path, so
//! large-scale reruns across model revisions cost I/O instead of
//! compute.
//!
//! # Layout
//!
//! A store is a directory:
//!
//! ```text
//! store/
//!   store.lock        exclusive writer lock (pid inside)
//!   meta.json         generation + run-spanning traffic counters
//!   seg-00000001.log  append-only record segments
//!   seg-00000002.log
//! ```
//!
//! # Record format
//!
//! Each segment is a sequence of checksummed records:
//!
//! ```text
//! [magic  u32 LE = 0xC51A_D0C5]
//! [len    u32 LE]               payload byte length
//! [khash  u64 LE]               CacheKey::content_hash of the record's key
//! [phash  u64 LE]               FNV-1a 64 over the payload bytes
//! [payload]                     serde_json of StoredRecord { key, answer }
//! ```
//!
//! The payload is JSON — debuggable with `jq`, resilient to struct
//! evolution via `#[serde(default)]` — while the framing is binary so
//! truncation and bit corruption are *detected*, never parsed around.
//!
//! # Recovery
//!
//! Opening scans every segment front to back. The first bad record —
//! wrong magic, a length that overruns the file, a checksum mismatch, a
//! key hash that disagrees with the decoded key, or a payload that does
//! not parse — ends the scan for that segment: a writable open truncates
//! the file back to the last good record (the classic WAL
//! truncated-tail recovery), a read-only open simply stops. Dropped
//! records are re-inferred on the next run; because inference is
//! deterministic per key, **every recovery path converges to the same
//! report bytes as a cold run**.
//!
//! # Rotation, compaction, eviction
//!
//! The active segment rotates once it exceeds
//! [`StoreConfig::segment_max_bytes`]. Re-inserting a key appends a new
//! record and deadens the old one (last write wins on replay);
//! [`AnswerStore::compact`] rewrites only the live records — in
//! deterministic key order — and deletes the old segments. When the
//! store exceeds [`StoreConfig::max_bytes`], whole least-recently-*hit*
//! sealed segments are evicted and the store's **generation** is bumped;
//! a [`Checkpoint`](crate::checkpoint::Checkpoint) stamped with an older
//! generation no longer validates (its cache epoch predates eviction).
//! Compaction preserves every live answer and therefore does *not* bump
//! the generation.
//!
//! # Concurrency
//!
//! One *exclusive* writer, any number of readers. Writers take
//! `store.lock`, stamped `pid start-token` — the start token is the
//! kernel's process start time, so a lock whose pid was recycled by an
//! unrelated newer process is recognised as stale and broken instead of
//! blocking forever. A lock left by a dead (or crashed same-process)
//! writer is broken automatically. Readers skip the lock entirely:
//! segments are append-only and every record is checksummed, so a
//! reader racing a writer sees a clean prefix; a reader racing a
//! writer's [`compact`](AnswerStore::compact) restarts its replay from
//! a fresh directory listing whenever a listed segment vanishes
//! mid-replay — compaction writes the survivors before deleting the
//! old segments, so the re-list always finds them and the reader never
//! observes a torn segment set.
//!
//! [`AnswerStore::open_shared`] adds a cooperative *multi-writer* mode
//! for fleet execution (see [`fleet`](crate::fleet)): each shared
//! writer claims its own fresh segment sequence numbers atomically
//! (`create_new`), takes a per-handle `store.lock.*` marker instead of
//! the exclusive lock, and never truncates, compacts or evicts —
//! another writer's unflushed tail is pending data, not damage.
//! Inference is deterministic per key, so two shared writers racing on
//! the same key append byte-identical answers; last-write-wins replay
//! makes the duplicate benign.
//!
//! # Invariant: only clean answers are persisted
//!
//! The in-memory cache debug-asserts that no faulted answer is
//! inserted; the store enforces it *in release builds too* —
//! [`AnswerStore::insert`] refuses text carrying corruption markers
//! (see [`is_corrupted_text`](crate::fault::is_corrupted_text)) and
//! counts the refusal on `store.rejected`. A crashed chaos run can
//! therefore never poison future runs through the persistent tier.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use chipvqa_telemetry::{kv, Telemetry};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheKey, CachedAnswer};
use crate::fault::is_corrupted_text;

/// Per-record framing magic (`C5` for ChipVQA store, visibly not JSON).
pub const RECORD_MAGIC: u32 = 0xC51A_D0C5;

/// Bytes of framing before each payload: magic + len + key hash +
/// payload hash.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// On-disk format version, stored in `meta.json`. Bump on any framing
/// or payload change; an open refuses a newer version than it knows.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64 over arbitrary bytes — the store's checksum. The same
/// constants as [`prompt_hash`](crate::cache::prompt_hash), frozen by
/// the golden test in `tests/cache_consistency.rs`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One persisted cache entry: the content-addressed key and its answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// The full cache key (not just its hash — collisions must never
    /// cross answers).
    pub key: CacheKey,
    /// The memoised answer.
    pub answer: CachedAnswer,
}

/// Encodes one record with framing; the inverse of
/// [`decode_segment`]'s per-record step. Exposed so tests can freeze
/// the byte format and tools can write segments.
pub fn encode_record(key: &CacheKey, answer: &CachedAnswer) -> Vec<u8> {
    let payload = serde_json::to_string(&StoredRecord {
        key: key.clone(),
        answer: answer.clone(),
    })
    .expect("record serializes")
    .into_bytes();
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&key.content_hash().to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Outcome of scanning one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Byte offset of the end of the last good record.
    pub good_bytes: u64,
    /// Bytes after the last good record (0 for a fully clean segment).
    pub dropped_bytes: u64,
    /// Records decoded successfully.
    pub records: usize,
}

/// Decodes every well-formed record of a segment, stopping at the
/// first truncated or corrupted one. Never modifies the file.
pub fn decode_segment(path: &Path) -> io::Result<(Vec<StoredRecord>, SegmentScan)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < RECORD_HEADER_BYTES {
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        let khash = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let phash = u64::from_le_bytes(rest[16..24].try_into().expect("8 bytes"));
        if rest.len() < RECORD_HEADER_BYTES + len {
            break;
        }
        let payload = &rest[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len];
        if fnv1a64(payload) != phash {
            break;
        }
        let Ok(payload_str) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<StoredRecord>(payload_str) else {
            break;
        };
        if record.key.content_hash() != khash {
            break;
        }
        records.push(record);
        offset += RECORD_HEADER_BYTES + len;
    }
    let scan = SegmentScan {
        good_bytes: offset as u64,
        dropped_bytes: (bytes.len() - offset) as u64,
        records: records.len(),
    };
    Ok((records, scan))
}

/// Tuning knobs of an [`AnswerStore`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Evict least-recently-hit sealed segments once the store exceeds
    /// this many bytes. `u64::MAX` (the default) disables eviction.
    pub max_bytes: u64,
    /// Compact on open when the dead-record fraction exceeds this.
    pub compact_dead_ratio: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_max_bytes: 4 << 20,
            max_bytes: u64::MAX,
            compact_dead_ratio: 0.6,
        }
    }
}

/// How a handle opened the store — see the module docs' *Concurrency*
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Sole writer (`store.lock`): may truncate torn tails, compact,
    /// evict, and persist `meta.json`.
    Exclusive,
    /// No lock, no modification: recovery stops at corruption instead
    /// of truncating; inserts are refused.
    ReadOnly,
    /// Cooperative multi-writer (fleet): appends into its own freshly
    /// claimed segments; never truncates, compacts, evicts, or writes
    /// `meta.json`.
    Shared,
}

/// Durable store metadata, written atomically (tmp + rename) on flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct StoreMeta {
    /// On-disk format version.
    #[serde(default)]
    format_version: u32,
    /// Eviction epoch: bumped whenever live answers are dropped.
    #[serde(default)]
    generation: u64,
    /// Run-spanning lookup hits across every process that used this
    /// store.
    #[serde(default)]
    lifetime_hits: u64,
    /// Run-spanning lookup misses.
    #[serde(default)]
    lifetime_misses: u64,
    /// Run-spanning insertions.
    #[serde(default)]
    lifetime_inserts: u64,
}

/// Point-in-time traffic and shape counters of an [`AnswerStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups served from disk this session.
    pub hits: u64,
    /// Lookups that found nothing on disk this session.
    pub misses: u64,
    /// Records appended this session.
    pub inserts: u64,
    /// Faulted answers refused by the persistence guard this session.
    pub rejected: u64,
    /// Live entries dropped by segment eviction this session.
    pub evicted: u64,
    /// Segments repaired by truncated-tail recovery at open.
    pub recovered_segments: u64,
    /// Bytes dropped by recovery at open.
    pub recovered_bytes: u64,
    /// Run-spanning hits (this session included), persisted in
    /// `meta.json`.
    pub lifetime_hits: u64,
    /// Run-spanning misses.
    pub lifetime_misses: u64,
    /// Run-spanning inserts.
    pub lifetime_inserts: u64,
    /// Live entries currently indexed.
    pub entries: usize,
    /// Segment files currently on disk.
    pub segments: usize,
    /// Total segment bytes currently on disk.
    pub bytes: u64,
    /// Current eviction generation.
    pub generation: u64,
}

impl StoreStats {
    /// Disk hit fraction of this session's store lookups (0 when there
    /// were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock paths currently held by a live [`StoreLock`] in *this*
/// process. A lock file carrying our own pid but absent from this set
/// belongs to a handle that crashed without unlocking — breakable —
/// while a present entry means a genuinely live second writer.
fn live_locks() -> &'static Mutex<std::collections::HashSet<PathBuf>> {
    static LIVE: std::sync::OnceLock<Mutex<std::collections::HashSet<PathBuf>>> =
        std::sync::OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(std::collections::HashSet::new()))
}

/// Exclusive writer lock: a `store.lock` file holding the owner's
/// `pid start-token` stamp.
///
/// Dropping the guard removes the file. A lock whose holder is dead —
/// a vanished pid, a recycled pid (live pid whose start token differs
/// from the stamp), or our own pid with no live in-process guard — is
/// broken and re-taken.
#[derive(Debug)]
struct StoreLock {
    path: PathBuf,
    armed: bool,
}

impl StoreLock {
    fn acquire(dir: &Path) -> io::Result<StoreLock> {
        let dir = fs::canonicalize(dir)?;
        // shared (fleet) writers exclude an exclusive open — it would
        // truncate/compact/evict under them. Dead markers are swept.
        for marker in shared_markers(&dir)? {
            let live = match marker.holder {
                // own pid: live only while the handle actually exists
                // in this process (a simulated-crash marker is stale)
                Some((pid, _)) if pid == std::process::id() => {
                    lock_inner(live_locks()).contains(&marker.path)
                }
                Some((pid, token)) => !holder_dead(pid, Some(token)),
                None => false,
            };
            if live {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!(
                        "answer store {} has a live shared writer (pid {})",
                        dir.display(),
                        marker.holder.map(|(pid, _)| pid).unwrap_or(0)
                    ),
                ));
            }
            let _ = fs::remove_file(&marker.path);
        }
        let path = dir.join("store.lock");
        loop {
            let already_ours = lock_inner(live_locks()).contains(&path);
            if already_ours {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!(
                        "answer store {} is already open for writing in this process",
                        path.display()
                    ),
                ));
            }
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", lock_stamp());
                    lock_inner(live_locks()).insert(path.clone());
                    return Ok(StoreLock { path, armed: true });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .as_deref()
                        .and_then(parse_lock_stamp);
                    let stale = match holder {
                        // unreadable/corrupt lock: break it
                        None => true,
                        // our own pid: stale only if no live guard in
                        // this process (re-checked here — a racing
                        // thread may have won create_new since the
                        // check above)
                        Some((pid, _)) if pid == std::process::id() => {
                            !lock_inner(live_locks()).contains(&path)
                        }
                        Some((pid, token)) => holder_dead(pid, token),
                    };
                    if stale {
                        // break the stale lock and retry; a concurrent
                        // breaker racing us loses the create_new race
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!(
                            "answer store {} is locked by live pid {}",
                            path.display(),
                            holder.map(|(pid, _)| pid).unwrap_or(0)
                        ),
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Leaves the lock file behind — test hook for crashed writers.
    fn abandon(mut self) {
        self.armed = false;
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // the in-process liveness entry goes away either way: an
        // abandoned (simulated-crash) lock must look breakable
        lock_inner(live_locks()).remove(&self.path);
        if self.armed {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Per-handle marker of a *shared* (cooperative multi-writer) open: a
/// `store.lock.<pid>-<token>-<n>` file. Shared writers never conflict
/// with each other; the markers exist so an exclusive open can refuse
/// to truncate/compact under live shared writers, and so dead shared
/// markers can be swept.
#[derive(Debug)]
struct SharedLock {
    path: PathBuf,
    armed: bool,
}

impl SharedLock {
    fn acquire(dir: &Path) -> io::Result<SharedLock> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = fs::canonicalize(dir)?;
        // an exclusive writer excludes shared ones (it may truncate,
        // compact or evict under us); a stale exclusive lock is broken
        let exclusive = dir.join("store.lock");
        match fs::read_to_string(&exclusive) {
            Ok(stamp) => {
                let holder = parse_lock_stamp(&stamp);
                let live = match holder {
                    None => false,
                    Some((pid, _)) if pid == std::process::id() => {
                        lock_inner(live_locks()).contains(&exclusive)
                    }
                    Some((pid, token)) => !holder_dead(pid, token),
                };
                if live {
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!(
                            "answer store {} is exclusively locked by live pid {}",
                            dir.display(),
                            holder.map(|(pid, _)| pid).unwrap_or(0)
                        ),
                    ));
                }
                let _ = fs::remove_file(&exclusive);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "store.lock.{}-{}-{n}",
            std::process::id(),
            own_start_token()
        ));
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let _ = write!(f, "{}", lock_stamp());
        lock_inner(live_locks()).insert(path.clone());
        Ok(SharedLock { path, armed: true })
    }

    /// Leaves the marker behind — test hook for crashed shared writers.
    fn abandon(mut self) {
        self.armed = false;
    }
}

impl Drop for SharedLock {
    fn drop(&mut self) {
        // as with StoreLock: an abandoned marker must look breakable
        lock_inner(live_locks()).remove(&self.path);
        if self.armed {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// One `store.lock.<pid>-<token>-<n>` marker found on disk.
struct SharedMarker {
    path: PathBuf,
    holder: Option<(u32, u64)>,
}

/// Every shared-writer marker in `dir`, with the holder parsed from
/// the filename.
fn shared_markers(dir: &Path) -> io::Result<Vec<SharedMarker>> {
    let mut markers = Vec::new();
    if !dir.is_dir() {
        return Ok(markers);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(suffix) = name.strip_prefix("store.lock.") else {
            continue;
        };
        let holder = (|| {
            let mut parts = suffix.split('-');
            let pid = parts.next()?.parse().ok()?;
            let token = parts.next()?.parse().ok()?;
            Some((pid, token))
        })();
        markers.push(SharedMarker {
            path: entry.path(),
            holder,
        });
    }
    Ok(markers)
}

/// Either lock flavour a writable handle holds.
#[derive(Debug)]
enum HeldLock {
    Exclusive(StoreLock),
    Shared(SharedLock),
}

impl HeldLock {
    fn abandon(self) {
        match self {
            HeldLock::Exclusive(lock) => lock.abandon(),
            HeldLock::Shared(lock) => lock.abandon(),
        }
    }
}

/// `"pid token"` — what a lock file (and a fleet lease) stamps to
/// identify its holder against pid reuse.
fn lock_stamp() -> String {
    format!("{} {}", std::process::id(), own_start_token())
}

/// Parses a lock stamp. Legacy bare-pid locks parse with no token (and
/// keep the pure liveness check).
fn parse_lock_stamp(s: &str) -> Option<(u32, Option<u64>)> {
    let mut parts = s.split_whitespace();
    let pid = parts.next()?.parse().ok()?;
    Some((pid, parts.next().and_then(|t| t.parse().ok())))
}

/// Whether the stamped holder is gone: pid vanished, or — the pid-reuse
/// case — the pid is alive but its start token no longer matches the
/// stamp, so it is an unrelated newer process. A stamp without a token
/// (legacy) falls back to pid liveness alone.
pub(crate) fn holder_dead(pid: u32, token: Option<u64>) -> bool {
    if !pid_alive(pid) {
        return true;
    }
    match (token, process_start_token(pid)) {
        (Some(stamped), Some(current)) => stamped != current,
        _ => false,
    }
}

#[cfg(target_os = "linux")]
pub(crate) fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
pub(crate) fn pid_alive(_pid: u32) -> bool {
    // without a portable liveness probe, assume the holder is alive;
    // operators break genuinely stale locks by deleting store.lock
    true
}

/// The kernel's start time of `pid` (clock ticks since boot) — a token
/// that distinguishes a process from a later one that recycled its pid.
/// `/proc/<pid>/stat` field 22; the command name can contain spaces and
/// parentheses, so parsing anchors on the *last* `)`.
#[cfg(target_os = "linux")]
pub(crate) fn process_start_token(pid: u32) -> Option<u64> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let after_comm = &stat[stat.rfind(')')? + 1..];
    // after_comm starts at field 3 (state); starttime is field 22
    after_comm.split_whitespace().nth(19)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
pub(crate) fn process_start_token(_pid: u32) -> Option<u64> {
    None
}

/// This process's own start token (0 when the platform offers none —
/// the stamp then degrades to the legacy pure-pid check on readers
/// that cannot resolve tokens either). Public because fleet tooling
/// stamps it into lease files alongside the pid.
pub fn own_start_token() -> u64 {
    static TOKEN: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *TOKEN.get_or_init(|| process_start_token(std::process::id()).unwrap_or(0))
}

/// Where one live entry currently resides.
#[derive(Debug, Clone)]
struct IndexEntry {
    answer: CachedAnswer,
    segment: u64,
}

/// Bookkeeping for one on-disk segment.
#[derive(Debug, Clone, Copy, Default)]
struct SegmentInfo {
    bytes: u64,
    live: usize,
    total: usize,
    last_touch: u64,
}

/// The writer half: the currently-open active segment.
#[derive(Debug)]
struct ActiveSegment {
    seq: u64,
    writer: BufWriter<File>,
    bytes: u64,
}

#[derive(Debug, Default)]
struct Inner {
    index: HashMap<CacheKey, IndexEntry>,
    segments: BTreeMap<u64, SegmentInfo>,
    active: Option<ActiveSegment>,
    /// Logical clock for segment LRU: bumped on every disk hit.
    touch_clock: u64,
}

/// The persistent content-addressed answer store. See the module docs
/// for format, recovery and concurrency.
pub struct AnswerStore {
    dir: PathBuf,
    config: StoreConfig,
    mode: StoreMode,
    lock: Mutex<Option<HeldLock>>,
    inner: Mutex<Inner>,
    telemetry: Telemetry,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    recovered_segments: AtomicU64,
    recovered_bytes: AtomicU64,
    lifetime_hits: AtomicU64,
    lifetime_misses: AtomicU64,
    lifetime_inserts: AtomicU64,
}

impl fmt::Debug for AnswerStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnswerStore")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AnswerStore {
    /// Opens (creating if absent) a writable store with default tuning.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<AnswerStore> {
        AnswerStore::open_with(dir, StoreConfig::default())
    }

    /// Opens (creating if absent) a writable store with explicit tuning.
    pub fn open_with(dir: impl AsRef<Path>, config: StoreConfig) -> io::Result<AnswerStore> {
        AnswerStore::open_impl(
            dir.as_ref(),
            config,
            StoreMode::Exclusive,
            Telemetry::disabled(),
        )
    }

    /// [`open_with`](AnswerStore::open_with) with a telemetry handle
    /// attached *before* replay, so open-time `store.recovered` /
    /// `store.recovery` / `store.open` signals are captured too —
    /// prefer this over [`with_telemetry`](AnswerStore::with_telemetry)
    /// when recovery observability matters.
    pub fn open_with_telemetry(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        telemetry: Telemetry,
    ) -> io::Result<AnswerStore> {
        AnswerStore::open_impl(dir.as_ref(), config, StoreMode::Exclusive, telemetry)
    }

    /// Opens an existing store for reading only: no lock is taken and
    /// no file is modified (recovery stops at corruption instead of
    /// truncating). Lookups work; [`AnswerStore::insert`],
    /// [`AnswerStore::compact`] and meta persistence are inert.
    pub fn open_read_only(dir: impl AsRef<Path>) -> io::Result<AnswerStore> {
        AnswerStore::open_impl(
            dir.as_ref(),
            StoreConfig::default(),
            StoreMode::ReadOnly,
            Telemetry::disabled(),
        )
    }

    /// Opens (creating if absent) a *shared* cooperative-multi-writer
    /// handle — the fleet answer plane (see [`fleet`](crate::fleet)).
    ///
    /// Any number of shared handles (across processes) coexist: each
    /// appends into its own freshly claimed segments and takes a
    /// per-handle `store.lock.*` marker instead of the exclusive lock.
    /// A shared handle never truncates, compacts, evicts, or writes
    /// `meta.json` — another writer's unflushed tail is pending data,
    /// not damage, and the generation must stay frozen while a fleet
    /// runs. Refused ([`WouldBlock`](io::ErrorKind::WouldBlock)) while
    /// a live exclusive writer holds the store, and vice versa.
    pub fn open_shared(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        telemetry: Telemetry,
    ) -> io::Result<AnswerStore> {
        AnswerStore::open_impl(dir.as_ref(), config, StoreMode::Shared, telemetry)
    }

    fn open_impl(
        dir: &Path,
        config: StoreConfig,
        mode: StoreMode,
        telemetry: Telemetry,
    ) -> io::Result<AnswerStore> {
        if mode != StoreMode::ReadOnly {
            fs::create_dir_all(dir)?;
        }
        let lock = match mode {
            StoreMode::ReadOnly => None,
            StoreMode::Exclusive => Some(HeldLock::Exclusive(StoreLock::acquire(dir)?)),
            StoreMode::Shared => Some(HeldLock::Shared(SharedLock::acquire(dir)?)),
        };

        let meta = read_meta(dir)?;
        if meta.format_version > FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store format v{} is newer than supported v{FORMAT_VERSION}",
                    meta.format_version
                ),
            ));
        }

        let store = AnswerStore {
            dir: dir.to_path_buf(),
            config,
            mode,
            lock: Mutex::new(lock),
            inner: Mutex::new(Inner::default()),
            telemetry,
            generation: AtomicU64::new(meta.generation),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            recovered_segments: AtomicU64::new(0),
            recovered_bytes: AtomicU64::new(0),
            lifetime_hits: AtomicU64::new(meta.lifetime_hits),
            lifetime_misses: AtomicU64::new(meta.lifetime_misses),
            lifetime_inserts: AtomicU64::new(meta.lifetime_inserts),
        };
        store.replay_segments()?;
        if mode == StoreMode::Exclusive {
            let dead = store.dead_ratio();
            if dead > store.config.compact_dead_ratio {
                store.compact()?;
            }
            store.evict_to_bound(&mut lock_inner(&store.inner))?;
        }
        Ok(store)
    }

    /// Attaches a telemetry handle; `store.{hit,miss,insert,compaction,
    /// evict,recovered,rejected}` counters and structured events report
    /// through it. Telemetry never changes store behaviour. Open-time
    /// recovery signals precede this call — use
    /// [`open_with_telemetry`](AnswerStore::open_with_telemetry) to
    /// capture those too.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Rebuilds the in-memory index by replaying every segment in
    /// sequence order, repairing truncated tails on writable opens.
    ///
    /// A non-exclusive open can race an exclusive writer's `compact()`:
    /// a listed segment may vanish before we read it. Skipping it would
    /// tear the view — its live records were rewritten into segments
    /// created *after* our directory listing, which we would never
    /// visit. Compaction writes its replacement segments before it
    /// deletes the old ones, so a fresh listing always contains the
    /// survivors: on any vanished segment we discard the partial replay
    /// and re-list, which converges once no deletion interleaves.
    fn replay_segments(&self) -> io::Result<()> {
        // each retry is caused by a deletion that interleaved with the
        // previous listing; this many consecutive lost races means the
        // writer is compacting pathologically faster than we can list
        const MAX_RELISTS: usize = 64;
        let mut inner = lock_inner(&self.inner);
        let mut recovered: Vec<(u64, SegmentScan)> = Vec::new();
        for attempt in 0.. {
            inner.index.clear();
            inner.segments.clear();
            recovered.clear();
            let mut seqs: Vec<u64> = Vec::new();
            if self.dir.is_dir() {
                for entry in fs::read_dir(&self.dir)? {
                    let name = entry?.file_name();
                    if let Some(seq) = segment_seq(&name.to_string_lossy()) {
                        seqs.push(seq);
                    }
                }
            }
            seqs.sort_unstable();

            let mut relist = false;
            for &seq in &seqs {
                let path = self.segment_path(seq);
                let (records, scan) = match decode_segment(&path) {
                    Ok(decoded) => decoded,
                    Err(e)
                        if e.kind() == io::ErrorKind::NotFound
                            && self.mode != StoreMode::Exclusive =>
                    {
                        relist = true;
                        break;
                    }
                    Err(e) => return Err(e),
                };
                if scan.dropped_bytes > 0 {
                    if self.mode == StoreMode::Exclusive {
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(scan.good_bytes)?;
                    }
                    recovered.push((seq, scan.clone()));
                }
                let mut info = SegmentInfo {
                    bytes: scan.good_bytes,
                    live: 0,
                    total: scan.records,
                    last_touch: 0,
                };
                inner.segments.insert(seq, info);
                for record in records {
                    if let Some(old) = inner.index.insert(
                        record.key,
                        IndexEntry {
                            answer: record.answer,
                            segment: seq,
                        },
                    ) {
                        if let Some(prev) = inner.segments.get_mut(&old.segment) {
                            prev.live = prev.live.saturating_sub(1);
                        }
                    }
                    info.live += 1;
                    inner.segments.insert(seq, info);
                }
            }
            if !relist {
                break;
            }
            if attempt + 1 >= MAX_RELISTS {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!(
                        "answer store {} kept compacting away listed segments across \
                         {MAX_RELISTS} replay attempts",
                        self.dir.display()
                    ),
                ));
            }
        }
        // recovery accounting is committed only for the listing that
        // won — discarded partial replays must not double-count
        for (seq, scan) in recovered.drain(..) {
            self.recovered_segments.fetch_add(1, Ordering::Relaxed);
            self.recovered_bytes
                .fetch_add(scan.dropped_bytes, Ordering::Relaxed);
            self.telemetry.counter("store.recovered", 1);
            self.telemetry.event(
                "store.recovery",
                vec![
                    kv("segment", seq),
                    kv("good_bytes", scan.good_bytes),
                    kv("dropped_bytes", scan.dropped_bytes),
                ],
            );
        }
        let seqs: Vec<u64> = inner.segments.keys().copied().collect();

        match self.mode {
            // the highest segment continues as the active one
            StoreMode::Exclusive => {
                let seq = seqs.last().copied().unwrap_or(0).max(1);
                let path = self.segment_path(seq);
                let file = OpenOptions::new().create(true).append(true).open(&path)?;
                let bytes = inner.segments.get(&seq).map_or(0, |s| s.bytes);
                inner.segments.entry(seq).or_default();
                inner.active = Some(ActiveSegment {
                    seq,
                    writer: BufWriter::new(file),
                    bytes,
                });
            }
            // a shared writer must never append into another writer's
            // segment: claim a fresh sequence number atomically
            StoreMode::Shared => {
                let from = seqs.last().copied().unwrap_or(0) + 1;
                self.claim_fresh_segment(&mut inner, from)?;
            }
            StoreMode::ReadOnly => {}
        }
        let (entries, segments) = (inner.index.len(), inner.segments.len());
        drop(inner);
        if self.telemetry.enabled() {
            self.telemetry.event(
                "store.open",
                vec![
                    kv("entries", entries),
                    kv("segments", segments),
                    kv("generation", self.generation.load(Ordering::Relaxed)),
                    kv("read_only", self.mode == StoreMode::ReadOnly),
                ],
            );
        }
        Ok(())
    }

    /// Claims the first free segment sequence number at or after `from`
    /// with `create_new` — atomic against every other shared writer —
    /// and installs it as this handle's active segment.
    fn claim_fresh_segment(&self, inner: &mut Inner, from: u64) -> io::Result<()> {
        let mut seq = from.max(1);
        loop {
            match OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(self.segment_path(seq))
            {
                Ok(file) => {
                    inner.segments.entry(seq).or_default();
                    inner.active = Some(ActiveSegment {
                        seq,
                        writer: BufWriter::new(file),
                        bytes: 0,
                    });
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    seq += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("seg-{seq:08}.log"))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether this handle was opened read-only.
    pub fn is_read_only(&self) -> bool {
        self.mode == StoreMode::ReadOnly
    }

    /// How this handle was opened.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The current eviction generation: bumped whenever live answers
    /// are dropped (segment eviction), never by compaction. Checkpoints
    /// stamp this to detect stale cache epochs.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Live entries currently indexed.
    pub fn len(&self) -> usize {
        lock_inner(&self.inner).index.len()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes across all segment files.
    pub fn total_bytes(&self) -> u64 {
        lock_inner(&self.inner)
            .segments
            .values()
            .map(|s| s.bytes)
            .sum()
    }

    /// Fraction of replayed records that are superseded (dead). 0 when
    /// the store is empty.
    pub fn dead_ratio(&self) -> f64 {
        let inner = lock_inner(&self.inner);
        let total: usize = inner.segments.values().map(|s| s.total).sum();
        if total == 0 {
            return 0.0;
        }
        (total - inner.index.len()) as f64 / total as f64
    }

    /// Paths of every segment currently on disk, in sequence order.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        lock_inner(&self.inner)
            .segments
            .keys()
            .map(|&seq| self.segment_path(seq))
            .collect()
    }

    /// Looks up one answer on disk (well: in the replayed index).
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let mut inner = lock_inner(&self.inner);
        inner.touch_clock += 1;
        let clock = inner.touch_clock;
        if let Some(entry) = inner.index.get(key) {
            let answer = entry.answer.clone();
            let segment = entry.segment;
            if let Some(info) = inner.segments.get_mut(&segment) {
                info.last_touch = clock;
            }
            drop(inner);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.lifetime_hits.fetch_add(1, Ordering::Relaxed);
            self.telemetry.counter("store.hit", 1);
            Some(answer)
        } else {
            drop(inner);
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.lifetime_misses.fetch_add(1, Ordering::Relaxed);
            self.telemetry.counter("store.miss", 1);
            None
        }
    }

    /// Appends one answer (write-behind: buffered, durable after
    /// [`flush`](AnswerStore::flush)). Returns whether the record was
    /// accepted.
    ///
    /// Refused — with a `store.rejected` count, in release builds too —
    /// when the answer carries fault-corruption markers, when the store
    /// is read-only, or when the key already maps to this exact answer
    /// (idempotent re-insert needs no new record).
    pub fn insert(&self, key: CacheKey, answer: CachedAnswer) -> bool {
        if self.mode == StoreMode::ReadOnly {
            return false;
        }
        if is_corrupted_text(&answer.text) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.telemetry.counter("store.rejected", 1);
            if self.telemetry.enabled() {
                self.telemetry
                    .event("store.rejected", vec![kv("question", &key.question_id)]);
            }
            debug_assert!(
                false,
                "persistence guard: faulted answer for {key:?} must never reach the store"
            );
            return false;
        }
        let mut inner = lock_inner(&self.inner);
        if inner.index.get(&key).is_some_and(|e| e.answer == answer) {
            return false;
        }
        if self.append_record(&mut inner, key, answer).is_err() {
            return false;
        }
        drop(inner);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.lifetime_inserts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("store.insert", 1);
        true
    }

    fn append_record(
        &self,
        inner: &mut Inner,
        key: CacheKey,
        answer: CachedAnswer,
    ) -> io::Result<()> {
        let bytes = encode_record(&key, &answer);
        self.rotate_if_needed(inner, bytes.len() as u64)?;
        let active = inner
            .active
            .as_mut()
            .expect("writable store has an active segment");
        active.writer.write_all(&bytes)?;
        active.bytes += bytes.len() as u64;
        let (seq, active_bytes) = (active.seq, active.bytes);
        let info = inner.segments.entry(seq).or_default();
        info.bytes = active_bytes;
        info.total += 1;
        info.live += 1;
        if let Some(old) = inner.index.insert(
            key,
            IndexEntry {
                answer,
                segment: seq,
            },
        ) {
            if let Some(prev) = inner.segments.get_mut(&old.segment) {
                prev.live = prev.live.saturating_sub(1);
            }
        }
        self.evict_to_bound(inner)?;
        Ok(())
    }

    /// Seals the active segment and starts a fresh one when the next
    /// record would overflow [`StoreConfig::segment_max_bytes`].
    fn rotate_if_needed(&self, inner: &mut Inner, incoming: u64) -> io::Result<()> {
        let needs = inner
            .active
            .as_ref()
            .is_some_and(|a| a.bytes > 0 && a.bytes + incoming > self.config.segment_max_bytes);
        if !needs {
            return Ok(());
        }
        let old = inner.active.take().expect("checked above");
        let mut writer = old.writer;
        writer.flush()?;
        let seq = old.seq + 1;
        if self.mode == StoreMode::Shared {
            // another shared writer may own seq already — claim
            // atomically past it
            self.claim_fresh_segment(inner, seq)?;
        } else {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.segment_path(seq))?;
            inner.segments.entry(seq).or_default();
            inner.active = Some(ActiveSegment {
                seq,
                writer: BufWriter::new(file),
                bytes: 0,
            });
        }
        self.telemetry.counter("store.rotate", 1);
        Ok(())
    }

    /// Evicts least-recently-hit sealed segments until the store fits
    /// [`StoreConfig::max_bytes`]. Each eviction drops that segment's
    /// live entries and bumps the generation.
    fn evict_to_bound(&self, inner: &mut Inner) -> io::Result<()> {
        if self.mode != StoreMode::Exclusive {
            // shared writers never drop live answers: the generation
            // must stay frozen while a fleet runs
            return Ok(());
        }
        loop {
            let total: u64 = inner.segments.values().map(|s| s.bytes).sum();
            if total <= self.config.max_bytes {
                return Ok(());
            }
            let active_seq = inner.active.as_ref().map(|a| a.seq);
            let victim = inner
                .segments
                .iter()
                .filter(|(seq, _)| Some(**seq) != active_seq)
                .min_by_key(|(seq, info)| (info.last_touch, **seq))
                .map(|(&seq, _)| seq);
            let Some(seq) = victim else {
                // only the active segment remains; nothing evictable
                return Ok(());
            };
            let info = inner.segments.remove(&seq).expect("victim exists");
            inner.index.retain(|_, e| e.segment != seq);
            let _ = fs::remove_file(self.segment_path(seq));
            if info.live > 0 {
                self.generation.fetch_add(1, Ordering::Relaxed);
            }
            self.evicted.fetch_add(info.live as u64, Ordering::Relaxed);
            self.telemetry.counter("store.evict", 1);
            if self.telemetry.enabled() {
                self.telemetry.event(
                    "store.evict",
                    vec![
                        kv("segment", seq),
                        kv("live_dropped", info.live),
                        kv("bytes", info.bytes),
                        kv("generation", self.generation.load(Ordering::Relaxed)),
                    ],
                );
            }
        }
    }

    /// Rewrites the live entries — in deterministic key order — into
    /// fresh segments and deletes the superseded files. Preserves every
    /// live answer, so the generation is untouched. Returns bytes
    /// reclaimed.
    pub fn compact(&self) -> io::Result<u64> {
        if self.mode != StoreMode::Exclusive {
            return Ok(0);
        }
        let mut inner = lock_inner(&self.inner);
        if let Some(active) = inner.active.as_mut() {
            active.writer.flush()?;
        }
        let before: u64 = inner.segments.values().map(|s| s.bytes).sum();
        let old_seqs: Vec<u64> = inner.segments.keys().copied().collect();
        let next_seq = old_seqs.last().copied().unwrap_or(0) + 1;

        let mut entries: Vec<(CacheKey, CachedAnswer)> = inner
            .index
            .iter()
            .map(|(k, e)| (k.clone(), e.answer.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        // write the survivors into fresh segments
        let mut seq = next_seq;
        let mut writer = BufWriter::new(
            OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(self.segment_path(seq))?,
        );
        let mut new_segments: BTreeMap<u64, SegmentInfo> = BTreeMap::new();
        let mut bytes_in_seq = 0u64;
        let mut new_index = HashMap::with_capacity(entries.len());
        for (key, answer) in entries {
            let record = encode_record(&key, &answer);
            if bytes_in_seq > 0
                && bytes_in_seq + record.len() as u64 > self.config.segment_max_bytes
            {
                writer.flush()?;
                new_segments.insert(
                    seq,
                    SegmentInfo {
                        bytes: bytes_in_seq,
                        live: new_index
                            .values()
                            .filter(|e: &&IndexEntry| e.segment == seq)
                            .count(),
                        total: 0,
                        last_touch: 0,
                    },
                );
                seq += 1;
                writer = BufWriter::new(
                    OpenOptions::new()
                        .create_new(true)
                        .append(true)
                        .open(self.segment_path(seq))?,
                );
                bytes_in_seq = 0;
            }
            writer.write_all(&record)?;
            bytes_in_seq += record.len() as u64;
            new_index.insert(
                key,
                IndexEntry {
                    answer,
                    segment: seq,
                },
            );
        }
        writer.flush()?;
        let live_in_last = new_index
            .values()
            .filter(|e: &&IndexEntry| e.segment == seq)
            .count();
        new_segments.insert(
            seq,
            SegmentInfo {
                bytes: bytes_in_seq,
                live: live_in_last,
                total: live_in_last,
                last_touch: 0,
            },
        );
        for (&s, info) in new_segments.iter_mut() {
            info.total = new_index.values().filter(|e| e.segment == s).count();
            info.live = info.total;
        }

        for old in old_seqs {
            let _ = fs::remove_file(self.segment_path(old));
        }
        inner.index = new_index;
        inner.segments = new_segments;
        // continue appending to the last compacted segment
        let file = OpenOptions::new()
            .append(true)
            .open(self.segment_path(seq))?;
        inner.active = Some(ActiveSegment {
            seq,
            writer: BufWriter::new(file),
            bytes: bytes_in_seq,
        });
        let after: u64 = inner.segments.values().map(|s| s.bytes).sum();
        drop(inner);
        let reclaimed = before.saturating_sub(after);
        self.telemetry.counter("store.compaction", 1);
        if self.telemetry.enabled() {
            self.telemetry.event(
                "store.compaction",
                vec![kv("reclaimed_bytes", reclaimed), kv("bytes", after)],
            );
        }
        Ok(reclaimed)
    }

    /// Flushes buffered appends and persists `meta.json` (generation +
    /// run-spanning counters). A no-op on read-only handles. Shared
    /// handles flush their segment but skip `meta.json` — concurrent
    /// writers would race the lifetime counters, and the generation
    /// never changes in shared mode anyway.
    pub fn flush(&self) -> io::Result<()> {
        if self.mode == StoreMode::ReadOnly {
            return Ok(());
        }
        {
            let mut inner = lock_inner(&self.inner);
            if let Some(active) = inner.active.as_mut() {
                active.writer.flush()?;
            }
        }
        if self.mode == StoreMode::Shared {
            return Ok(());
        }
        write_meta(
            &self.dir,
            StoreMeta {
                format_version: FORMAT_VERSION,
                generation: self.generation.load(Ordering::Relaxed),
                lifetime_hits: self.lifetime_hits.load(Ordering::Relaxed),
                lifetime_misses: self.lifetime_misses.load(Ordering::Relaxed),
                lifetime_inserts: self.lifetime_inserts.load(Ordering::Relaxed),
            },
        )
    }

    /// All live entries in deterministic key order — the persistent
    /// mirror of [`AnswerCache::snapshot`](crate::cache::AnswerCache::snapshot).
    pub fn entries(&self) -> Vec<(CacheKey, CachedAnswer)> {
        let inner = lock_inner(&self.inner);
        let mut entries: Vec<(CacheKey, CachedAnswer)> = inner
            .index
            .iter()
            .map(|(k, e)| (k.clone(), e.answer.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Current traffic and shape counters.
    pub fn stats(&self) -> StoreStats {
        let inner = lock_inner(&self.inner);
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            recovered_segments: self.recovered_segments.load(Ordering::Relaxed),
            recovered_bytes: self.recovered_bytes.load(Ordering::Relaxed),
            lifetime_hits: self.lifetime_hits.load(Ordering::Relaxed),
            lifetime_misses: self.lifetime_misses.load(Ordering::Relaxed),
            lifetime_inserts: self.lifetime_inserts.load(Ordering::Relaxed),
            entries: inner.index.len(),
            segments: inner.segments.len(),
            bytes: inner.segments.values().map(|s| s.bytes).sum(),
            generation: self.generation.load(Ordering::Relaxed),
        }
    }

    /// Simulates a killed writer — test hook for the durability suite:
    /// buffered (unflushed) appends are lost and the lock file is left
    /// behind, exactly as `kill -9` would leave them. The next writable
    /// open must break the lock and recover the tail.
    pub fn simulate_crash(self) {
        if let Some(lock) = lock_inner(&self.lock).take() {
            lock.abandon();
        }
        let mut inner = lock_inner(&self.inner);
        if let Some(active) = inner.active.take() {
            // dropping a BufWriter flushes; forgetting it drops the
            // buffered tail on the floor like a killed process would.
            // The fd leaks, which is exactly what we want here (the
            // test process is about to reopen the store anyway).
            std::mem::forget(active.writer);
        }
    }
}

impl Drop for AnswerStore {
    fn drop(&mut self) {
        if self.mode != StoreMode::ReadOnly {
            let _ = self.flush();
        }
    }
}

/// `seg-00000001.log` → `Some(1)`.
fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn read_meta(dir: &Path) -> io::Result<StoreMeta> {
    let path = dir.join("meta.json");
    match fs::read_to_string(&path) {
        Ok(json) => Ok(serde_json::from_str(&json).unwrap_or_default()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(StoreMeta::default()),
        Err(e) => Err(e),
    }
}

/// Atomic meta write: tmp file + rename, so a crash mid-write leaves
/// the previous meta intact.
fn write_meta(dir: &Path, meta: StoreMeta) -> io::Result<()> {
    let tmp = dir.join("meta.json.tmp");
    let json = serde_json::to_string(&meta).expect("meta serializes");
    fs::write(&tmp, json)?;
    fs::rename(&tmp, dir.join("meta.json"))
}

/// Poison-tolerant mutex lock (same rationale as the cache's lock
/// helpers: entries are always internally consistent).
fn lock_inner<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_models::backbone::AnswerPath;

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "chipvqa-store-unit-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(i: u64) -> CacheKey {
        CacheKey {
            model_fingerprint: 0xfeed ^ i,
            question_id: format!("digital-{i:03}"),
            prompt_hash: 0x1234_5678 + i,
            downsample: 1,
            attempt: 0,
            dataset_fingerprint: 7,
        }
    }

    fn answer(i: u64) -> CachedAnswer {
        CachedAnswer {
            text: format!("answer-{i}"),
            path: AnswerPath::Solved,
            solve_probability: 0.25,
        }
    }

    #[test]
    fn roundtrip_survives_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let store = AnswerStore::open(&dir).expect("opens");
            for i in 0..20 {
                assert!(store.insert(key(i), answer(i)));
            }
            assert_eq!(store.len(), 20);
            store.flush().expect("flushes");
        }
        let store = AnswerStore::open(&dir).expect("reopens");
        assert_eq!(store.len(), 20);
        for i in 0..20 {
            assert_eq!(store.lookup(&key(i)), Some(answer(i)));
        }
        assert!(store.lookup(&key(99)).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (20, 1));
        assert_eq!(stats.lifetime_inserts, 20, "lifetime counters persist");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_produces_multiple_segments_and_compaction_reclaims() {
        let dir = tmp_dir("rotate");
        let config = StoreConfig {
            segment_max_bytes: 512,
            ..StoreConfig::default()
        };
        let store = AnswerStore::open_with(&dir, config).expect("opens");
        for i in 0..40 {
            store.insert(key(i), answer(i));
        }
        // supersede half the keys so compaction has dead weight to drop
        for i in 0..20 {
            store.insert(key(i), answer(i + 100));
        }
        store.flush().expect("flushes");
        assert!(store.segment_paths().len() > 1, "rotation happened");
        let before = store.total_bytes();
        assert!(store.dead_ratio() > 0.0);
        let reclaimed = store.compact().expect("compacts");
        assert!(reclaimed > 0);
        assert_eq!(store.total_bytes(), before - reclaimed);
        assert_eq!(store.dead_ratio(), 0.0);
        assert_eq!(store.len(), 40);
        for i in 0..20 {
            assert_eq!(store.lookup(&key(i)), Some(answer(i + 100)));
        }
        for i in 20..40 {
            assert_eq!(store.lookup(&key(i)), Some(answer(i)));
        }
        // generation untouched: no live data was lost
        assert_eq!(store.generation(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_bounds_size_and_bumps_generation() {
        let dir = tmp_dir("evict");
        let config = StoreConfig {
            segment_max_bytes: 400,
            max_bytes: 1600,
            ..StoreConfig::default()
        };
        let store = AnswerStore::open_with(&dir, config).expect("opens");
        for i in 0..200 {
            store.insert(key(i), answer(i));
        }
        store.flush().expect("flushes");
        assert!(store.total_bytes() <= 1600 + 400, "bounded (active slack)");
        assert!(store.len() < 200, "old entries evicted");
        assert!(store.generation() > 0, "eviction bumps the generation");
        assert!(store.stats().evicted > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_answers_are_refused_in_release_too() {
        let dir = tmp_dir("guard");
        let store = AnswerStore::open(&dir).expect("opens");
        let bad = CachedAnswer {
            text: format!("oops{}", crate::fault::TRUNCATION_MARKER),
            path: AnswerPath::Failed,
            solve_probability: 0.0,
        };
        let accepted =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.insert(key(1), bad)));
        // debug builds assert; release builds refuse quietly
        match accepted {
            Ok(accepted) => {
                assert!(!accepted);
                assert_eq!(store.stats().rejected, 1);
            }
            Err(_) => {
                if !cfg!(debug_assertions) {
                    panic!("insert panicked in a release build");
                }
            }
        }
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_writer_is_locked_out_but_reader_is_not() {
        let dir = tmp_dir("lock");
        let store = AnswerStore::open(&dir).expect("opens");
        store.insert(key(1), answer(1));
        store.flush().expect("flushes");
        let err = AnswerStore::open(&dir).expect_err("second writer refused");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let reader = AnswerStore::open_read_only(&dir).expect("reader opens");
        assert_eq!(reader.lookup(&key(1)), Some(answer(1)));
        assert!(
            !reader.insert(key(2), answer(2)),
            "read-only refuses writes"
        );
        drop(store);
        let again = AnswerStore::open(&dir).expect("lock released on drop");
        assert_eq!(again.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_writer_lock_is_broken_and_tail_recovered() {
        let dir = tmp_dir("crash");
        let store = AnswerStore::open(&dir).expect("opens");
        for i in 0..5 {
            store.insert(key(i), answer(i));
        }
        store.flush().expect("flushed prefix");
        for i in 5..10 {
            store.insert(key(i), answer(i));
        }
        store.simulate_crash(); // unflushed tail lost, lock left behind
        assert!(dir.join("store.lock").exists(), "crash leaves the lock");

        let recovered = AnswerStore::open(&dir).expect("breaks the stale lock");
        assert_eq!(recovered.len(), 5, "flushed prefix survives");
        for i in 0..5 {
            assert_eq!(recovered.lookup(&key(i)), Some(answer(i)));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_repaired_on_open() {
        let dir = tmp_dir("trunc");
        {
            let store = AnswerStore::open(&dir).expect("opens");
            for i in 0..10 {
                store.insert(key(i), answer(i));
            }
        }
        let seg = AnswerStore::open_read_only(&dir)
            .expect("reader")
            .segment_paths()[0]
            .clone();
        let len = fs::metadata(&seg).expect("segment exists").len();
        // chop mid-record
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("writable")
            .set_len(len - 7)
            .expect("truncates");

        let store = AnswerStore::open(&dir).expect("recovers");
        assert_eq!(store.len(), 9, "one record lost to the torn tail");
        assert_eq!(store.stats().recovered_segments, 1);
        assert!(store.stats().recovered_bytes > 0);
        // the repaired file replays cleanly
        let (_, scan) = decode_segment(&store.segment_paths()[0]).expect("decodes");
        assert_eq!(scan.dropped_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pid_reuse_stale_lock_is_broken_on_token_mismatch() {
        let dir = tmp_dir("pidreuse");
        fs::create_dir_all(&dir).expect("mkdir");
        if process_start_token(1).is_some() {
            // pid 1 is always alive, but this start token is from "an
            // older process that used to own pid 1": recycled pid
            fs::write(dir.join("store.lock"), "1 18446744073709551615").expect("plants lock");
            let store = AnswerStore::open(&dir).expect("token mismatch breaks the lock");
            drop(store);
        }

        if let Some(token) = process_start_token(1) {
            // the *real* pid-1 stamp is a live holder: refused
            fs::write(dir.join("store.lock"), format!("1 {token}")).expect("plants lock");
            let err = AnswerStore::open(&dir).expect_err("live holder keeps the lock");
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
            fs::remove_file(dir.join("store.lock")).expect("cleanup");
        }

        // legacy bare-pid stamp of a live pid still blocks
        fs::write(dir.join("store.lock"), "1").expect("plants lock");
        if pid_alive(1) {
            let err = AnswerStore::open(&dir).expect_err("legacy live-pid lock holds");
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_writers_coexist_and_exclusive_sees_the_union() {
        let dir = tmp_dir("shared");
        let a = AnswerStore::open_shared(&dir, StoreConfig::default(), Telemetry::disabled())
            .expect("first shared handle");
        let b = AnswerStore::open_shared(&dir, StoreConfig::default(), Telemetry::disabled())
            .expect("second shared handle coexists");
        assert_eq!(a.mode(), StoreMode::Shared);
        for i in 0..5 {
            assert!(a.insert(key(i), answer(i)));
            assert!(b.insert(key(100 + i), answer(100 + i)));
        }
        // a live shared writer excludes an exclusive open
        let err = AnswerStore::open(&dir).expect_err("exclusive refused under shared writers");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(a);
        drop(b);
        let merged = AnswerStore::open(&dir).expect("markers released on drop");
        assert_eq!(merged.len(), 10, "both writers' records replay");
        for i in 0..5 {
            assert_eq!(merged.lookup(&key(i)), Some(answer(i)));
            assert_eq!(merged.lookup(&key(100 + i)), Some(answer(100 + i)));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exclusive_writer_excludes_shared_and_crashed_shared_marker_is_swept() {
        let dir = tmp_dir("sharedx");
        let exclusive = AnswerStore::open(&dir).expect("opens");
        let err = AnswerStore::open_shared(&dir, StoreConfig::default(), Telemetry::disabled())
            .expect_err("shared refused under a live exclusive writer");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(exclusive);

        let shared = AnswerStore::open_shared(&dir, StoreConfig::default(), Telemetry::disabled())
            .expect("shared opens after release");
        shared.insert(key(1), answer(1));
        shared.flush().expect("flushes");
        shared.simulate_crash(); // marker left behind, holder "dead"
        let markers = shared_markers(&fs::canonicalize(&dir).expect("canon")).expect("lists");
        assert_eq!(markers.len(), 1, "crash leaves the marker");
        let again = AnswerStore::open(&dir).expect("stale shared marker is swept");
        assert_eq!(again.lookup(&key(1)), Some(answer(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_mode_never_compacts_evicts_or_writes_meta() {
        let dir = tmp_dir("sharedro");
        let config = StoreConfig {
            segment_max_bytes: 256,
            max_bytes: 512, // would trigger eviction in exclusive mode
            compact_dead_ratio: 0.0,
        };
        let store = AnswerStore::open_shared(&dir, config, Telemetry::disabled()).expect("opens");
        for i in 0..50 {
            assert!(store.insert(key(i), answer(i)));
        }
        store.flush().expect("flushes");
        assert_eq!(store.len(), 50, "nothing evicted");
        assert_eq!(store.generation(), 0, "generation frozen");
        assert_eq!(store.stats().evicted, 0);
        assert_eq!(store.compact().expect("no-op"), 0);
        assert!(
            !dir.join("meta.json").exists(),
            "shared flush skips meta.json"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_segment_rejects_bit_flips() {
        let dir = tmp_dir("flip");
        {
            let store = AnswerStore::open(&dir).expect("opens");
            for i in 0..6 {
                store.insert(key(i), answer(i));
            }
        }
        let seg = {
            let r = AnswerStore::open_read_only(&dir).expect("reader");
            r.segment_paths()[0].clone()
        };
        let mut bytes = fs::read(&seg).expect("reads");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&seg, &bytes).expect("writes");
        let (records, scan) = decode_segment(&seg).expect("scans");
        assert!(records.len() < 6, "the flipped record (and tail) dropped");
        assert!(scan.dropped_bytes > 0);
        let store = AnswerStore::open(&dir).expect("recovers");
        assert_eq!(store.len(), records.len());
        let _ = fs::remove_dir_all(&dir);
    }
}

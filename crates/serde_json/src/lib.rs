//! Offline, vendored stand-in for [`serde_json`]: JSON text rendering
//! and parsing over the workspace `serde` crate's [`Value`] tree.
//!
//! Provides the call surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Error`] and [`Value`] — with
//! serde_json-compatible conventions (shortest round-trip float
//! formatting, `\uXXXX` escapes, nested-object pretty printing).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors serde_json's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a parse error for malformed JSON, or a shape error when the
/// JSON does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns a shape error when the tree does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

// -------------------------------------------------------------- rendering

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's Debug for f64 is the shortest round-trip representation
        // and always keeps a decimal point or exponent (float-ness
        // survives the round trip, like serde_json/ryu).
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    let nl = |out: &mut String, depth: usize| {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                nl(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            nl(out, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            nl(out, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast-forward over plain UTF-8
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("bad \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for json in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn float_debug_formatting_keeps_floatness() {
        let v = Value::F64(3.0);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn nested_roundtrip_compact_and_pretty() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::I64(1), Value::Null])),
            ("b c".into(), Value::Str("x\"y\\z\n".into())),
            ("d".into(), Value::Obj(vec![])),
        ]);
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value(&s).unwrap(), v);
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1u64, 2, u64::MAX];
        let s = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(from_str::<bool>("7").is_err());
    }
}

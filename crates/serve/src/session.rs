//! Session identity, lifecycle states, requests and reports.
//!
//! A session is one evaluation request — a model set × a
//! [`DatasetSpec`] × [`EvalOptions`] — owned by a tenant. Its state
//! machine is strictly
//!
//! ```text
//! Queued → Admitted → Running → { Done | Cancelled | Failed }
//! ```
//!
//! plus the short-circuit `Queued → Cancelled` for sessions cancelled
//! (or shut down) before a runner ever picked them up. Terminal states
//! never change again; [`SessionState::is_terminal`] is the contract
//! waiters rely on.

use chipvqa_core::spec::DatasetSpec;
use chipvqa_eval::harness::{EvalOptions, EvalReport};
use chipvqa_models::ModelProfile;
use serde::{Deserialize, Serialize};

/// Opaque session identity, unique within one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s-{:06}", self.0)
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// Accepted by admission control, waiting for a run slot.
    Queued,
    /// Claimed by a runner; a tenant run slot is reserved.
    Admitted,
    /// Being evaluated on the shared worker pool.
    Running,
    /// Completed; the report is available.
    Done,
    /// Cancelled (by request or by service shutdown). The session's
    /// checkpoint is retained, so it can be resumed.
    Cancelled,
    /// Terminally failed (invalid request, checkpoint mismatch).
    Failed,
}

impl SessionState {
    /// Stable short label (telemetry events, progress streams).
    pub fn label(self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Admitted => "admitted",
            SessionState::Running => "running",
            SessionState::Done => "done",
            SessionState::Cancelled => "cancelled",
            SessionState::Failed => "failed",
        }
    }

    /// Whether the state never changes again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionState::Done | SessionState::Cancelled | SessionState::Failed
        )
    }
}

impl std::fmt::Display for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One evaluation request: which models, over which collection, with
/// which options — on behalf of which tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Quota/breaker accounting unit. Free-form; empty is a valid
    /// (anonymous) tenant.
    pub tenant: String,
    /// The models to evaluate, in report order. An empty set is
    /// admitted but fails at run time (and counts against the tenant's
    /// breaker — malformed requests are a tenant fault).
    pub models: Vec<ModelProfile>,
    /// The collection to evaluate on.
    pub spec: DatasetSpec,
    /// Evaluation options.
    pub options: EvalOptions,
    /// Run the session under a chaos [`FaultPlan`](chipvqa_eval::FaultPlan)
    /// supervisor. `None` (the default, and what old clients send) is an
    /// unsupervised run.
    #[serde(default)]
    pub fault_plan: Option<chipvqa_eval::FaultPlan>,
    /// Evaluate through the streaming intake path with this shard
    /// length instead of materializing the collection. Streamed
    /// sessions produce reports byte-identical to their batch
    /// equivalents (supervised or not); they cancel at model
    /// granularity and resume from the start — determinism makes the
    /// restart converge to the same bytes.
    #[serde(default)]
    pub stream_shard_len: Option<usize>,
}

impl SessionRequest {
    /// A single-model request over the default (paper) collection.
    pub fn single(tenant: impl Into<String>, model: ModelProfile) -> Self {
        SessionRequest {
            tenant: tenant.into(),
            models: vec![model],
            spec: DatasetSpec::default(),
            options: EvalOptions::default(),
            fault_plan: None,
            stream_shard_len: None,
        }
    }

    /// Replaces the spec.
    pub fn with_spec(mut self, spec: DatasetSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Places the session under a chaos supervisor.
    pub fn with_fault_plan(mut self, plan: chipvqa_eval::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Routes the session through the streaming intake path.
    pub fn with_streaming(mut self, shard_len: usize) -> Self {
        assert!(shard_len >= 1, "shard_len must be >= 1");
        self.stream_shard_len = Some(shard_len);
        self
    }
}

/// The finished product of a [`Done`](SessionState::Done) session: one
/// [`EvalReport`] per requested model, in request order.
///
/// `cache_stats` is cleared on every report: the service's answer cache
/// is a *cross-session* plane, so its traffic counters are service
/// metadata, not a property of any one session — and clearing them is
/// what makes a session report byte-comparable to its batch-mode
/// equivalent (`chipvqa_eval::harness::evaluate` per model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Per-model reports, in request order.
    pub reports: Vec<EvalReport>,
}

impl SessionReport {
    /// Wraps finished reports, clearing the run-metadata `cache_stats`.
    pub fn new(mut reports: Vec<EvalReport>) -> Self {
        for report in &mut reports {
            report.cache_stats = None;
        }
        SessionReport { reports }
    }

    /// Canonical JSON encoding — the byte-identity currency of the
    /// serving contract. Two sessions over the same request (cold, warm,
    /// cancelled-and-resumed, any worker count) serialize identically.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("session report serializes")
    }
}

/// Why a session-level operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No session with that id exists in this service.
    UnknownSession(SessionId),
    /// The operation needs a non-terminal session but it already ended.
    AlreadyTerminal(SessionId, SessionState),
    /// Resume requires a [`Cancelled`](SessionState::Cancelled) session.
    NotResumable(SessionId, SessionState),
    /// The session holds no report (not [`Done`](SessionState::Done)).
    NoReport(SessionId, SessionState),
    /// A wait deadline expired before the session reached a terminal
    /// state.
    Timeout(SessionId),
    /// Admission control shed the (re)submission.
    Shed(crate::admission::ShedReason),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "unknown session {id}"),
            SessionError::AlreadyTerminal(id, s) => {
                write!(f, "session {id} already terminal ({s})")
            }
            SessionError::NotResumable(id, s) => write!(
                f,
                "session {id} is {s}; only cancelled sessions can be resumed"
            ),
            SessionError::NoReport(id, s) => {
                write!(f, "session {id} has no report (state {s})")
            }
            SessionError::Timeout(id) => write!(f, "timed out waiting for session {id}"),
            SessionError::Shed(reason) => write!(f, "shed: {reason}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<crate::admission::ShedReason> for SessionError {
    fn from(reason: crate::admission::ShedReason) -> Self {
        SessionError::Shed(reason)
    }
}

/// Point-in-time view of one session, safe to hand to clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session.
    pub id: SessionId,
    /// Owning tenant.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: SessionState,
    /// Shards completed so far.
    pub shards_done: usize,
    /// Total shards the session's grid needs (0 until admitted).
    pub shards_total: usize,
    /// Nanoseconds spent queued (set once admitted).
    pub queue_wait_ns: Option<u64>,
    /// Nanoseconds from submission to the terminal state (set once
    /// terminal) — the end-to-end latency the load generator reports.
    pub total_ns: Option<u64>,
    /// Terminal failure description, for [`Failed`](SessionState::Failed)
    /// sessions.
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_models::ModelZoo;

    #[test]
    fn state_machine_labels_and_terminality() {
        let all = [
            SessionState::Queued,
            SessionState::Admitted,
            SessionState::Running,
            SessionState::Done,
            SessionState::Cancelled,
            SessionState::Failed,
        ];
        let labels: Vec<&str> = all.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "queued",
                "admitted",
                "running",
                "done",
                "cancelled",
                "failed"
            ]
        );
        for s in all {
            assert_eq!(
                s.is_terminal(),
                matches!(
                    s,
                    SessionState::Done | SessionState::Cancelled | SessionState::Failed
                )
            );
        }
    }

    #[test]
    fn request_roundtrips_through_json() {
        let req = SessionRequest::single("acme", ModelZoo::gpt4o())
            .with_spec(DatasetSpec::scaled(3))
            .with_options(EvalOptions {
                attempts: 2,
                downsample: 1,
            })
            .with_fault_plan(chipvqa_eval::FaultPlan::uniform(42, 0.05))
            .with_streaming(17);
        let json = serde_json::to_string(&req).expect("serializes");
        let back: SessionRequest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, req);
    }

    #[test]
    fn old_client_requests_without_chaos_fields_still_parse() {
        // A pre-chaos client omits `fault_plan` and `stream_shard_len`
        // entirely; both must default to None (unsupervised batch).
        let req = SessionRequest::single("legacy", ModelZoo::gpt4o());
        let mut value: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&req).expect("serializes"))
                .expect("parses");
        if let serde_json::Value::Obj(fields) = &mut value {
            fields.retain(|(k, _)| k != "fault_plan" && k != "stream_shard_len");
        }
        let back: SessionRequest =
            serde_json::from_str(&serde_json::to_string(&value).expect("serializes"))
                .expect("old-shape request parses");
        assert_eq!(back, req);
        assert!(back.fault_plan.is_none());
        assert!(back.stream_shard_len.is_none());
    }

    #[test]
    fn session_report_clears_cache_stats() {
        use chipvqa_core::ChipVqa;
        use chipvqa_eval::harness::evaluate;
        use chipvqa_models::VlmPipeline;

        let bench = ChipVqa::standard();
        let mut report = evaluate(
            &VlmPipeline::new(ModelZoo::gpt4o()),
            &bench,
            EvalOptions::default(),
        );
        report.cache_stats = Some(chipvqa_eval::CacheStats::default());
        let wrapped = SessionReport::new(vec![report.clone()]);
        assert!(wrapped.reports[0].cache_stats.is_none());
        report.cache_stats = None;
        assert_eq!(
            wrapped.canonical_json(),
            serde_json::to_string(&SessionReport {
                reports: vec![report]
            })
            .expect("serializes")
        );
    }
}

//! The resident evaluation service.
//!
//! [`EvalService`] owns a fixed pool of **runner** threads, an
//! [`AdmissionController`] guarding a bounded run queue, one shared
//! [`AnswerCache`] (optionally backed by a persistent
//! [`AnswerStore`](chipvqa_eval::AnswerStore)), a [`ProgressHub`]
//! broadcasting per-shard events, and a heartbeat thread watching for
//! stalls. Sessions are submitted with [`EvalService::submit`], move
//! through Queued → Admitted → Running → terminal, and can be
//! cancelled and resumed at shard-batch granularity.
//!
//! ## Determinism
//!
//! A session runs on the checkpointed grid path
//! ([`ParallelExecutor::evaluate_grid_resumable`]) in batches of
//! `shard_batch` shards, checking its cancel flag between batches.
//! Cancellation therefore never tears a shard: the retained
//! [`Checkpoint`] holds only whole-shard results, and a resumed
//! session replays the identical plan, so its report is byte-identical
//! to an uninterrupted run — the same merge-is-positional argument the
//! fleet subsystem relies on. The shared cache plane adds speed, never
//! content: answers are keyed on (model fingerprint, question, prompt,
//! resolution), so concurrent sessions over the same model share
//! inference without observing each other.
//!
//! ## Backpressure
//!
//! Submissions are never silently dropped and never block: they are
//! queued, or shed immediately with a structured
//! [`ShedReason`]. See [`crate::admission`] for the policy.
//!
//! ## Shutdown
//!
//! [`EvalService::shutdown`] (also run on drop) stops admission, asks
//! in-flight sessions to cancel at their next batch boundary, joins
//! every runner (executor workers are scoped threads — joining the
//! runner joins them transitively) and the heartbeat, cancels the
//! still-queued backlog, and flushes the answer store. No torn tail:
//! a store written through a graceful shutdown recovers zero segments
//! on reopen.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use chipvqa_eval::cache::AnswerCache;
use chipvqa_eval::checkpoint::Checkpoint;
use chipvqa_eval::executor::ParallelExecutor;
use chipvqa_eval::judge::RuleJudge;
use chipvqa_eval::store::AnswerStore;
use chipvqa_eval::CacheStats;
use chipvqa_models::VlmPipeline;
use serde::{Deserialize, Serialize};

use crate::admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, SessionOutcome, ShedReason,
};
use crate::progress::{session_progress_telemetry, ProgressEvent, ProgressHub};
use crate::session::{
    SessionError, SessionId, SessionReport, SessionRequest, SessionSnapshot, SessionState,
};

/// Service tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor workers per running session.
    pub workers: usize,
    /// Concurrent session runners (sessions evaluated at once).
    pub runners: usize,
    /// Admission policy (queue bound, quotas, breakers).
    pub admission: AdmissionConfig,
    /// Shards evaluated per resumable step; the cancel flag is checked
    /// between steps, so this is the cancellation (and shutdown)
    /// granularity.
    pub shard_batch: usize,
    /// Optional pause between steps — a pacing knob for tests and load
    /// shaping; zero (the default) runs flat out.
    pub step_delay: Duration,
    /// Heartbeat cadence (stall detection, liveness counter).
    pub heartbeat_interval: Duration,
    /// A running session with no shard progress for this long gets a
    /// [`ProgressEvent::Stalled`] from the heartbeat.
    pub stall_after: Duration,
    /// Back the shared answer cache with a persistent
    /// [`AnswerStore`](chipvqa_eval::AnswerStore) at this directory.
    pub store_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            runners: 2,
            admission: AdmissionConfig::default(),
            shard_batch: 4,
            step_delay: Duration::ZERO,
            heartbeat_interval: Duration::from_millis(25),
            stall_after: Duration::from_secs(5),
            store_dir: None,
        }
    }
}

impl ServiceConfig {
    /// Panics on degenerate configurations.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "workers must be >= 1");
        assert!(self.runners >= 1, "runners must be >= 1");
        assert!(self.shard_batch >= 1, "shard_batch must be >= 1");
        assert!(
            self.heartbeat_interval > Duration::ZERO,
            "heartbeat_interval must be positive"
        );
        self.admission.validate();
    }
}

/// Point-in-time service counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Sessions accepted by [`EvalService::submit`].
    pub submitted: u64,
    /// Sessions that reached [`SessionState::Done`].
    pub completed: u64,
    /// Sessions that reached [`SessionState::Cancelled`].
    pub cancelled: u64,
    /// Sessions that reached [`SessionState::Failed`].
    pub failed: u64,
    /// Successful [`EvalService::resume`] calls.
    pub resumed: u64,
    /// Sessions currently queued.
    pub queue_depth: usize,
    /// Sessions currently running.
    pub running: usize,
    /// Heartbeat ticks since start.
    pub heartbeats: u64,
    /// Admission counters (sheds by reason, breaker trips).
    pub admission: AdmissionStats,
}

/// One tracked session.
struct SessionEntry {
    request: SessionRequest,
    state: SessionState,
    /// Set to ask the runner to stop at the next batch boundary.
    cancel: Arc<AtomicBool>,
    /// Retained across cancellation; consumed on the next run.
    checkpoint: Option<Checkpoint>,
    report: Option<SessionReport>,
    error: Option<String>,
    shards_done: Arc<AtomicUsize>,
    shards_total: usize,
    /// Bumped by the progress sink on every shard; the heartbeat's
    /// stall detector watches it.
    progress_epoch: Arc<AtomicU64>,
    submitted_at: Instant,
    queue_wait_ns: Option<u64>,
    total_ns: Option<u64>,
}

impl SessionEntry {
    fn snapshot(&self, id: SessionId) -> SessionSnapshot {
        SessionSnapshot {
            id,
            tenant: self.request.tenant.clone(),
            state: self.state,
            shards_done: self.shards_done.load(Ordering::SeqCst),
            shards_total: self.shards_total,
            queue_wait_ns: self.queue_wait_ns,
            total_ns: self.total_ns,
            error: self.error.clone(),
        }
    }
}

/// State under the single service lock.
struct State {
    admission: AdmissionController,
    sessions: HashMap<SessionId, SessionEntry>,
    next_id: u64,
    submitted: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    resumed: u64,
}

/// Everything the runner and heartbeat threads share with the handle.
struct Shared {
    config: ServiceConfig,
    state: Mutex<State>,
    /// Signalled when the queue may have admittable work (submit,
    /// resume, a freed run slot, shutdown).
    work_cv: Condvar,
    /// Signalled on every terminal transition (for [`EvalService::wait`]).
    done_cv: Condvar,
    /// Signalled to wake the heartbeat early (shutdown).
    hb_gate: Mutex<()>,
    hb_cv: Condvar,
    stop: AtomicBool,
    hub: Arc<ProgressHub>,
    cache: Arc<AnswerCache>,
    heartbeats: AtomicU64,
}

/// Poison-tolerant lock (a panicking runner must not wedge the
/// service handle).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    fn publish_state(&self, session: SessionId, state: SessionState) {
        self.hub.publish(ProgressEvent::State { session, state });
    }
}

/// The resident evaluation service. See the module docs.
pub struct EvalService {
    shared: Arc<Shared>,
    runners: Vec<std::thread::JoinHandle<()>>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl EvalService {
    /// Starts a service with default tuning (no persistent store).
    pub fn new() -> EvalService {
        EvalService::start(ServiceConfig::default()).expect("no store configured: cannot fail")
    }

    /// Starts runners and the heartbeat. Fails only when the
    /// configured answer store cannot be opened.
    pub fn start(config: ServiceConfig) -> std::io::Result<EvalService> {
        config.validate();
        let mut cache = AnswerCache::new();
        if let Some(dir) = &config.store_dir {
            cache = cache.with_store(Arc::new(AnswerStore::open(dir)?));
        }
        let runners = config.runners;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                admission: AdmissionController::new(config.admission.clone()),
                sessions: HashMap::new(),
                next_id: 1,
                submitted: 0,
                completed: 0,
                cancelled: 0,
                failed: 0,
                resumed: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            hb_gate: Mutex::new(()),
            hb_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            hub: Arc::new(ProgressHub::new()),
            cache: Arc::new(cache),
            heartbeats: AtomicU64::new(0),
            config,
        });
        let runner_handles = (0..runners)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn runner")
            })
            .collect();
        let heartbeat = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-heartbeat".to_string())
                .spawn(move || heartbeat_loop(&shared))
                .expect("spawn heartbeat")
        };
        Ok(EvalService {
            shared,
            runners: runner_handles,
            heartbeat: Some(heartbeat),
        })
    }

    /// Submits a session. Returns immediately: the id on acceptance, a
    /// structured [`ShedReason`] otherwise — never blocks, never
    /// silently drops.
    pub fn submit(&self, request: SessionRequest) -> Result<SessionId, ShedReason> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(ShedReason::ShuttingDown);
        }
        let mut st = lock(&self.shared.state);
        let id = SessionId(st.next_id);
        st.admission.offer(id, &request.tenant)?;
        st.next_id += 1;
        st.submitted += 1;
        st.sessions.insert(
            id,
            SessionEntry {
                request,
                state: SessionState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                checkpoint: None,
                report: None,
                error: None,
                shards_done: Arc::new(AtomicUsize::new(0)),
                shards_total: 0,
                progress_epoch: Arc::new(AtomicU64::new(0)),
                submitted_at: Instant::now(),
                queue_wait_ns: None,
                total_ns: None,
            },
        );
        self.shared.publish_state(id, SessionState::Queued);
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Asks a session to stop. Queued sessions cancel immediately;
    /// admitted/running sessions cancel at their next shard-batch
    /// boundary (their checkpoint is retained for [`resume`](Self::resume)).
    pub fn cancel(&self, id: SessionId) -> Result<(), SessionError> {
        let mut st = lock(&self.shared.state);
        let entry = st
            .sessions
            .get(&id)
            .ok_or(SessionError::UnknownSession(id))?;
        if entry.state.is_terminal() {
            return Err(SessionError::AlreadyTerminal(id, entry.state));
        }
        if entry.state == SessionState::Queued {
            st.admission.remove_queued(id);
            let entry = st.sessions.get_mut(&id).expect("present above");
            entry.state = SessionState::Cancelled;
            entry.total_ns = Some(entry.submitted_at.elapsed().as_nanos() as u64);
            st.cancelled += 1;
            self.shared.publish_state(id, SessionState::Cancelled);
            drop(st);
            self.shared.done_cv.notify_all();
        } else {
            entry.cancel.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Re-queues a cancelled session through admission control. The
    /// retained checkpoint makes the rerun skip completed shards, and
    /// the final report is byte-identical to an uninterrupted run.
    pub fn resume(&self, id: SessionId) -> Result<(), SessionError> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(SessionError::Shed(ShedReason::ShuttingDown));
        }
        let mut st = lock(&self.shared.state);
        let entry = st
            .sessions
            .get(&id)
            .ok_or(SessionError::UnknownSession(id))?;
        if entry.state != SessionState::Cancelled {
            return Err(SessionError::NotResumable(id, entry.state));
        }
        let tenant = entry.request.tenant.clone();
        st.admission.offer(id, &tenant)?;
        let entry = st.sessions.get_mut(&id).expect("present above");
        entry.state = SessionState::Queued;
        entry.cancel.store(false, Ordering::SeqCst);
        entry.submitted_at = Instant::now();
        entry.queue_wait_ns = None;
        entry.total_ns = None;
        st.resumed += 1;
        self.shared.publish_state(id, SessionState::Queued);
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(())
    }

    /// Blocks until the session reaches a terminal state, up to
    /// `timeout`.
    pub fn wait(&self, id: SessionId, timeout: Duration) -> Result<SessionState, SessionError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared.state);
        loop {
            let state = st
                .sessions
                .get(&id)
                .ok_or(SessionError::UnknownSession(id))?
                .state;
            if state.is_terminal() {
                return Ok(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SessionError::Timeout(id));
            }
            st = self
                .shared
                .done_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// The session's current state.
    pub fn state(&self, id: SessionId) -> Result<SessionState, SessionError> {
        Ok(self.snapshot(id)?.state)
    }

    /// A point-in-time view of the session.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot, SessionError> {
        let st = lock(&self.shared.state);
        st.sessions
            .get(&id)
            .map(|e| e.snapshot(id))
            .ok_or(SessionError::UnknownSession(id))
    }

    /// The finished report of a [`Done`](SessionState::Done) session.
    pub fn report(&self, id: SessionId) -> Result<SessionReport, SessionError> {
        let st = lock(&self.shared.state);
        let entry = st
            .sessions
            .get(&id)
            .ok_or(SessionError::UnknownSession(id))?;
        entry
            .report
            .clone()
            .ok_or(SessionError::NoReport(id, entry.state))
    }

    /// Subscribes to the progress stream (full backlog, then live).
    pub fn subscribe(&self) -> Receiver<ProgressEvent> {
        self.shared.hub.subscribe()
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        let st = lock(&self.shared.state);
        ServiceStats {
            submitted: st.submitted,
            completed: st.completed,
            cancelled: st.cancelled,
            failed: st.failed,
            resumed: st.resumed,
            queue_depth: st.admission.queue_depth(),
            running: st.admission.running_total(),
            heartbeats: self.shared.heartbeats.load(Ordering::SeqCst),
            admission: st.admission.stats().clone(),
        }
    }

    /// Traffic counters of the shared answer cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Eviction generation of the persistent store, if one is
    /// configured.
    pub fn store_generation(&self) -> Option<u64> {
        self.shared.cache.store().map(|store| store.generation())
    }

    /// The service's tuning.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Graceful stop: no new admissions, in-flight sessions cancel at
    /// their next batch boundary (checkpoints retained), every runner
    /// and the heartbeat are joined, the queued backlog is cancelled,
    /// and the answer store is flushed. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        self.shared.hb_cv.notify_all();
        for handle in self.runners.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        // Runners are gone: cancel whatever never got admitted.
        let drained = {
            let mut st = lock(&self.shared.state);
            let drained = st.admission.drain_queue();
            for (id, _) in &drained {
                if let Some(entry) = st.sessions.get_mut(id) {
                    entry.state = SessionState::Cancelled;
                    entry.total_ns = Some(entry.submitted_at.elapsed().as_nanos() as u64);
                    st.cancelled += 1;
                }
            }
            drained
        };
        for (id, _) in drained {
            self.shared.publish_state(id, SessionState::Cancelled);
        }
        self.shared.done_cv.notify_all();
        self.shared.cache.flush_store()
    }
}

impl Default for EvalService {
    fn default() -> Self {
        EvalService::new()
    }
}

impl Drop for EvalService {
    /// Drop-guard: dropping the handle is a graceful shutdown, so no
    /// executor worker or heartbeat thread outlives the service and
    /// the store tail is flushed even when the owner forgets to call
    /// [`EvalService::shutdown`].
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// One runner: admit → run → settle, until shutdown.
fn runner_loop(shared: &Shared) {
    loop {
        let admitted = {
            let mut st = lock(&shared.state);
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(next) = st.admission.admit_next() {
                    break Some(next);
                }
                st = shared
                    .work_cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        };
        let Some((id, tenant)) = admitted else { return };
        run_session(shared, id, &tenant);
        // A freed run slot may unblock a quota-skipped queue entry.
        shared.work_cv.notify_all();
    }
}

/// Runs one admitted session to a terminal state.
fn run_session(shared: &Shared, id: SessionId, tenant: &str) {
    // Claim the entry's run context under the lock, then work unlocked.
    let (request, cancel, taken_checkpoint, shards_done, epoch) = {
        let mut st = lock(&shared.state);
        let entry = st.sessions.get_mut(&id).expect("admitted session exists");
        entry.state = SessionState::Admitted;
        entry.queue_wait_ns = Some(entry.submitted_at.elapsed().as_nanos() as u64);
        shared.publish_state(id, SessionState::Admitted);
        (
            entry.request.clone(),
            Arc::clone(&entry.cancel),
            entry.checkpoint.take(),
            Arc::clone(&entry.shards_done),
            Arc::clone(&entry.progress_epoch),
        )
    };

    if request.models.is_empty() {
        finish_failed(shared, id, tenant, "session has no models".to_string());
        return;
    }
    let pipes: Vec<VlmPipeline> = request
        .models
        .iter()
        .cloned()
        .map(VlmPipeline::new)
        .collect();

    if let Some(shard_len) = request.stream_shard_len {
        run_session_streamed(
            shared,
            id,
            tenant,
            &request,
            &pipes,
            shard_len,
            &cancel,
            &shards_done,
            &epoch,
        );
        return;
    }

    let bench = request.spec.build();
    let options = request.options;

    // Bind or re-validate the checkpoint: a resumed session must still
    // match its models, bench, options, spec and store epoch.
    let mut checkpoint = match taken_checkpoint {
        Some(ckpt) => {
            let valid = match shared.cache.store() {
                Some(store) => {
                    ckpt.validate_for_spec_with_store(&pipes, &bench, options, &request.spec, store)
                }
                None => ckpt.validate_for_spec(&pipes, &bench, options, &request.spec),
            };
            if let Err(e) = valid {
                finish_failed(shared, id, tenant, format!("resume refused: {e}"));
                return;
            }
            ckpt
        }
        None => {
            let mut ckpt = Checkpoint::for_spec(&pipes, &bench, options, &request.spec);
            if let Some(store) = shared.cache.store() {
                ckpt.bind_store_generation(store);
            }
            ckpt
        }
    };

    let shards_total = checkpoint.total_shards(&bench);
    shards_done.store(checkpoint.completed_shards(), Ordering::SeqCst);
    {
        let mut st = lock(&shared.state);
        let entry = st.sessions.get_mut(&id).expect("admitted session exists");
        entry.shards_total = shards_total;
        entry.state = SessionState::Running;
        shared.publish_state(id, SessionState::Running);
    }

    let telemetry = session_progress_telemetry(
        Arc::clone(&shared.hub),
        id,
        shards_total,
        shards_done,
        epoch,
    );
    let executor = ParallelExecutor::new(shared.config.workers)
        .with_cache(Arc::clone(&shared.cache))
        .with_telemetry(telemetry);
    let judge = RuleJudge::new();

    loop {
        if cancel.load(Ordering::SeqCst) || shared.stop.load(Ordering::SeqCst) {
            finish_cancelled(shared, id, tenant, Some(checkpoint));
            return;
        }
        match executor.evaluate_grid_resumable(
            &pipes,
            &bench,
            options,
            &judge,
            &mut checkpoint,
            Some(shared.config.shard_batch),
        ) {
            Err(e) => {
                finish_failed(shared, id, tenant, e.to_string());
                return;
            }
            Ok(Some(reports)) => {
                finish_done(shared, id, tenant, SessionReport::new(reports));
                return;
            }
            Ok(None) => {
                if shared.config.step_delay > Duration::ZERO {
                    std::thread::sleep(shared.config.step_delay);
                }
            }
        }
    }
}

/// Runs a streamed (optionally chaos-supervised) session: one
/// [`ParallelExecutor::evaluate_spec_stream`] per model over the lazy
/// [`ShardStream`](chipvqa_core::spec::ShardStream), never
/// materializing the collection. The cancel flag is checked between
/// models; a cancelled streamed session retains no checkpoint —
/// resuming restarts it, and determinism (the windowed breaker's
/// decisions are a pure function of plan seed, model fingerprint and
/// question position) converges the rerun to the same bytes an
/// uninterrupted run would have produced.
///
/// Chaos sessions share the service's answer-cache plane safely:
/// answers are keyed to the spec fingerprint, and the supervised
/// inference path caches only clean (fault-free) answers.
#[allow(clippy::too_many_arguments)]
fn run_session_streamed(
    shared: &Shared,
    id: SessionId,
    tenant: &str,
    request: &SessionRequest,
    pipes: &[VlmPipeline],
    shard_len: usize,
    cancel: &AtomicBool,
    shards_done: &Arc<AtomicUsize>,
    epoch: &Arc<AtomicU64>,
) {
    if shard_len == 0 {
        finish_failed(
            shared,
            id,
            tenant,
            "stream_shard_len must be >= 1".to_string(),
        );
        return;
    }
    let shards_per_model = request.spec.total().div_ceil(shard_len);
    let shards_total = shards_per_model * pipes.len();
    shards_done.store(0, Ordering::SeqCst);
    {
        let mut st = lock(&shared.state);
        let entry = st.sessions.get_mut(&id).expect("admitted session exists");
        entry.shards_total = shards_total;
        entry.state = SessionState::Running;
        shared.publish_state(id, SessionState::Running);
    }

    let telemetry = session_progress_telemetry(
        Arc::clone(&shared.hub),
        id,
        shards_total,
        Arc::clone(shards_done),
        Arc::clone(epoch),
    );
    let mut executor = ParallelExecutor::new(shared.config.workers)
        .with_cache(Arc::clone(&shared.cache))
        .with_telemetry(telemetry);
    if let Some(plan) = &request.fault_plan {
        executor = executor.with_supervisor(chipvqa_eval::Supervisor::new(plan.clone()));
    }

    let mut reports = Vec::with_capacity(pipes.len());
    for pipe in pipes {
        if cancel.load(Ordering::SeqCst) || shared.stop.load(Ordering::SeqCst) {
            finish_cancelled(shared, id, tenant, None);
            return;
        }
        let (report, _stats) =
            executor.evaluate_spec_stream(pipe, &request.spec, shard_len, request.options);
        reports.push(report);
        // The streamed executor traces `stream.shard` spans, which the
        // progress sink (watching `executor.shard`) ignores — so tick
        // progress here, at model granularity.
        shards_done.fetch_add(shards_per_model, Ordering::SeqCst);
        epoch.fetch_add(1, Ordering::SeqCst);
    }
    finish_done(shared, id, tenant, SessionReport::new(reports));
}

fn finish_done(shared: &Shared, id: SessionId, tenant: &str, report: SessionReport) {
    let mut st = lock(&shared.state);
    let entry = st.sessions.get_mut(&id).expect("running session exists");
    entry.state = SessionState::Done;
    entry.report = Some(report);
    entry.checkpoint = None;
    entry.total_ns = Some(entry.submitted_at.elapsed().as_nanos() as u64);
    st.completed += 1;
    st.admission.settle(tenant, SessionOutcome::Success);
    shared.publish_state(id, SessionState::Done);
    drop(st);
    shared.done_cv.notify_all();
}

fn finish_cancelled(shared: &Shared, id: SessionId, tenant: &str, checkpoint: Option<Checkpoint>) {
    let mut st = lock(&shared.state);
    let entry = st.sessions.get_mut(&id).expect("running session exists");
    entry.state = SessionState::Cancelled;
    entry.checkpoint = checkpoint;
    entry.total_ns = Some(entry.submitted_at.elapsed().as_nanos() as u64);
    st.cancelled += 1;
    st.admission.settle(tenant, SessionOutcome::Neutral);
    shared.publish_state(id, SessionState::Cancelled);
    drop(st);
    shared.done_cv.notify_all();
}

fn finish_failed(shared: &Shared, id: SessionId, tenant: &str, error: String) {
    let mut st = lock(&shared.state);
    let entry = st.sessions.get_mut(&id).expect("running session exists");
    entry.state = SessionState::Failed;
    entry.error = Some(error);
    entry.total_ns = Some(entry.submitted_at.elapsed().as_nanos() as u64);
    st.failed += 1;
    st.admission.settle(tenant, SessionOutcome::Failure);
    shared.publish_state(id, SessionState::Failed);
    drop(st);
    shared.done_cv.notify_all();
}

/// Heartbeat: periodic liveness tick plus stall detection over the
/// sessions' progress epochs.
fn heartbeat_loop(shared: &Shared) {
    let mut watched: HashMap<SessionId, (u64, Instant)> = HashMap::new();
    loop {
        {
            let gate = lock(&shared.hb_gate);
            let _ = shared
                .hb_cv
                .wait_timeout(gate, shared.config.heartbeat_interval)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        shared.heartbeats.fetch_add(1, Ordering::SeqCst);
        let now = Instant::now();
        let stalled: Vec<(SessionId, u64)> = {
            let st = lock(&shared.state);
            watched.retain(|id, _| {
                st.sessions
                    .get(id)
                    .is_some_and(|e| e.state == SessionState::Running)
            });
            let mut stalled = Vec::new();
            for (id, entry) in &st.sessions {
                if entry.state != SessionState::Running {
                    continue;
                }
                let epoch = entry.progress_epoch.load(Ordering::SeqCst);
                let slot = watched.entry(*id).or_insert((epoch, now));
                if slot.0 != epoch {
                    *slot = (epoch, now);
                } else if now.duration_since(slot.1) >= shared.config.stall_after {
                    stalled.push((*id, now.duration_since(slot.1).as_millis() as u64));
                    // restart the window so one stall is one event per
                    // window, not one per heartbeat tick
                    slot.1 = now;
                }
            }
            stalled
        };
        for (session, idle_ms) in stalled {
            shared
                .hub
                .publish(ProgressEvent::Stalled { session, idle_ms });
        }
    }
}

//! Admission control: bounded run queue, per-tenant quotas, and
//! per-tenant circuit breakers.
//!
//! Every submission passes through [`AdmissionController::offer`],
//! which either queues the session or sheds it with a structured
//! [`ShedReason`]. Three independent gates apply, in order:
//!
//! 1. **tenant breaker** — a [`CircuitBreaker`] per tenant (the same
//!    three-state machine the supervised executor uses per model).
//!    Consecutive session *failures* trip it open; while open,
//!    submissions from that tenant shed without touching the queue,
//!    and after the cooldown a half-open probe admits a trial session.
//!    Success closes it again. A misbehaving tenant thus cannot grind
//!    the service with requests that always fail.
//! 2. **in-flight limit** — a tenant with too many sessions queued or
//!    running is shed ([`ShedReason::TenantSaturated`]) before it can
//!    monopolize the bounded queue.
//! 3. **queue capacity** — the run queue is bounded; when the service
//!    as a whole is saturated, submissions shed with
//!    [`ShedReason::QueueFull`] instead of growing an unbounded
//!    backlog.
//!
//! Dispatch is FIFO *per eligibility*: [`AdmissionController::admit_next`]
//! picks the oldest queued session whose tenant is below its
//! *running* quota, skipping over-quota tenants so one heavy tenant
//! cannot starve the rest of the queue.
//!
//! The controller is plain state — the service serializes access under
//! its own lock — so every method is `&mut self` and cheap.

use std::collections::{HashMap, VecDeque};

use chipvqa_eval::supervisor::{BreakerConfig, BreakerState, CircuitBreaker};
use serde::{Deserialize, Serialize};

use crate::session::SessionId;

/// Tuning for the admission controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Bounded run-queue capacity (queued sessions across all tenants).
    pub queue_capacity: usize,
    /// Maximum sessions of one tenant *running* concurrently; queued
    /// sessions above this wait, they are not shed.
    pub tenant_running_quota: usize,
    /// Maximum sessions of one tenant in flight (queued + running)
    /// before further submissions shed with
    /// [`ShedReason::TenantSaturated`].
    pub tenant_in_flight_limit: usize,
    /// Per-tenant circuit-breaker tuning (session failures trip it).
    pub breaker: BreakerConfig,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 32,
            tenant_running_quota: 2,
            tenant_in_flight_limit: 8,
            breaker: BreakerConfig::default(),
        }
    }
}

impl AdmissionConfig {
    /// Panics on degenerate configurations.
    pub fn validate(&self) {
        assert!(self.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(
            self.tenant_running_quota >= 1,
            "tenant_running_quota must be >= 1"
        );
        assert!(
            self.tenant_in_flight_limit >= 1,
            "tenant_in_flight_limit must be >= 1"
        );
        self.breaker.validate();
    }
}

/// Why a submission was shed. Serialized verbatim into rejection
/// responses — the "well-formed shed" contract the load generator and
/// the CI soak job assert on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The bounded run queue is at capacity.
    QueueFull {
        /// Current queue depth (== capacity when shed).
        depth: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// The tenant has too many sessions in flight.
    TenantSaturated {
        /// The over-limit tenant.
        tenant: String,
        /// Queued + running sessions the tenant already has.
        in_flight: usize,
        /// Configured in-flight limit.
        limit: usize,
    },
    /// The tenant's circuit breaker is open (recent sessions failed).
    TenantBreakerOpen {
        /// The tripped tenant.
        tenant: String,
    },
    /// The service is shutting down; nothing new is admitted.
    ShuttingDown,
}

impl ShedReason {
    /// Stable short label (telemetry counters, shed responses).
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull { .. } => "queue_full",
            ShedReason::TenantSaturated { .. } => "tenant_saturated",
            ShedReason::TenantBreakerOpen { .. } => "tenant_breaker_open",
            ShedReason::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull { depth, capacity } => {
                write!(f, "run queue full ({depth}/{capacity})")
            }
            ShedReason::TenantSaturated {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` saturated ({in_flight}/{limit} in flight)"
            ),
            ShedReason::TenantBreakerOpen { tenant } => {
                write!(f, "tenant `{tenant}` circuit breaker open")
            }
            ShedReason::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// How an admitted session ended, for breaker accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Completed; closes/heals the tenant's breaker.
    Success,
    /// Terminally failed; counts toward tripping the breaker.
    Failure,
    /// Cancelled; neither success nor failure — no breaker effect.
    Neutral,
}

/// Cumulative admission counters (serialized into service stats).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Submissions offered (accepted or shed).
    pub offered: u64,
    /// Submissions accepted into the queue.
    pub accepted: u64,
    /// Sessions dispatched to a runner.
    pub admitted: u64,
    /// Sheds because the queue was full.
    pub shed_queue_full: u64,
    /// Sheds because a tenant hit its in-flight limit.
    pub shed_tenant_saturated: u64,
    /// Sheds because a tenant's breaker was open.
    pub shed_breaker_open: u64,
    /// Breaker trips across all tenants.
    pub breaker_trips: u64,
}

impl AdmissionStats {
    /// Total sheds, any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_tenant_saturated + self.shed_breaker_open
    }
}

/// Bounded-queue admission controller with per-tenant quotas and
/// breakers. See the module docs for the policy.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// FIFO of queued sessions (id, tenant).
    queue: VecDeque<(SessionId, String)>,
    /// Running sessions per tenant.
    running: HashMap<String, usize>,
    /// Lazily created per-tenant breakers.
    breakers: HashMap<String, CircuitBreaker>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// An empty controller.
    pub fn new(config: AdmissionConfig) -> Self {
        config.validate();
        AdmissionController {
            config,
            queue: VecDeque::new(),
            running: HashMap::new(),
            breakers: HashMap::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Offers a session for admission: queues it or sheds it with a
    /// structured reason. Gate order: breaker, tenant in-flight limit,
    /// queue capacity.
    pub fn offer(&mut self, id: SessionId, tenant: &str) -> Result<(), ShedReason> {
        self.stats.offered += 1;
        let before = self.breaker_mut(tenant).state();
        if !self.breaker_mut(tenant).allow() {
            self.stats.shed_breaker_open += 1;
            return Err(ShedReason::TenantBreakerOpen {
                tenant: tenant.to_string(),
            });
        }
        // allow() may have flipped Open → HalfOpen; that transition is
        // the probe the shed budget paid for, so the probe proceeds.
        let _ = before;
        let in_flight = self.tenant_in_flight(tenant);
        if in_flight >= self.config.tenant_in_flight_limit {
            self.stats.shed_tenant_saturated += 1;
            return Err(ShedReason::TenantSaturated {
                tenant: tenant.to_string(),
                in_flight,
                limit: self.config.tenant_in_flight_limit,
            });
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.shed_queue_full += 1;
            return Err(ShedReason::QueueFull {
                depth: self.queue.len(),
                capacity: self.config.queue_capacity,
            });
        }
        self.queue.push_back((id, tenant.to_string()));
        self.stats.accepted += 1;
        Ok(())
    }

    /// Dispatches the oldest queued session whose tenant is below its
    /// running quota, reserving a run slot for it. `None` when nothing
    /// is eligible (empty queue, or every queued tenant is at quota).
    pub fn admit_next(&mut self) -> Option<(SessionId, String)> {
        let idx = self.queue.iter().position(|(_, tenant)| {
            self.running.get(tenant).copied().unwrap_or(0) < self.config.tenant_running_quota
        })?;
        let (id, tenant) = self.queue.remove(idx).expect("index from position");
        *self.running.entry(tenant.clone()).or_insert(0) += 1;
        self.stats.admitted += 1;
        Some((id, tenant))
    }

    /// Releases an admitted session's run slot and settles its breaker
    /// accounting.
    pub fn settle(&mut self, tenant: &str, outcome: SessionOutcome) {
        if let Some(n) = self.running.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.running.remove(tenant);
            }
        }
        let trips_before = self.breaker_mut(tenant).trips();
        match outcome {
            SessionOutcome::Success => self.breaker_mut(tenant).record_success(),
            SessionOutcome::Failure => self.breaker_mut(tenant).record_failure(),
            SessionOutcome::Neutral => {}
        }
        let trips_after = self.breaker_mut(tenant).trips();
        self.stats.breaker_trips += u64::from(trips_after - trips_before);
    }

    /// Removes a still-queued session (cancellation before dispatch).
    /// `false` when the session is not in the queue.
    pub fn remove_queued(&mut self, id: SessionId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|(qid, _)| *qid != id);
        self.queue.len() != before
    }

    /// Empties the queue (shutdown), returning the abandoned sessions
    /// in FIFO order.
    pub fn drain_queue(&mut self) -> Vec<(SessionId, String)> {
        self.queue.drain(..).collect()
    }

    /// Queued sessions, all tenants.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Running sessions, all tenants.
    pub fn running_total(&self) -> usize {
        self.running.values().sum()
    }

    /// Queued + running sessions of one tenant.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.queue.iter().filter(|(_, t)| t == tenant).count()
            + self.running.get(tenant).copied().unwrap_or(0)
    }

    /// The tenant's breaker state (`Closed` if never seen).
    pub fn breaker_state(&self, tenant: &str) -> BreakerState {
        self.breakers
            .get(tenant)
            .map(CircuitBreaker::state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// The controller's tuning.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn breaker_mut(&mut self, tenant: &str) -> &mut CircuitBreaker {
        let config = self.config.breaker;
        self.breakers
            .entry(tenant.to_string())
            .or_insert_with(|| CircuitBreaker::new(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(queue: usize, quota: usize, in_flight: usize) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            queue_capacity: queue,
            tenant_running_quota: quota,
            tenant_in_flight_limit: in_flight,
            breaker: BreakerConfig::default(),
        })
    }

    #[test]
    fn queue_full_sheds_with_depth() {
        let mut ac = controller(2, 4, 16);
        assert!(ac.offer(SessionId(1), "a").is_ok());
        assert!(ac.offer(SessionId(2), "b").is_ok());
        let shed = ac.offer(SessionId(3), "c").unwrap_err();
        assert_eq!(
            shed,
            ShedReason::QueueFull {
                depth: 2,
                capacity: 2
            }
        );
        assert_eq!(shed.label(), "queue_full");
        assert_eq!(ac.stats().shed_queue_full, 1);
        assert_eq!(ac.stats().shed_total(), 1);
    }

    #[test]
    fn tenant_in_flight_limit_sheds_before_queue_fills() {
        let mut ac = controller(16, 4, 2);
        assert!(ac.offer(SessionId(1), "hog").is_ok());
        assert!(ac.offer(SessionId(2), "hog").is_ok());
        let shed = ac.offer(SessionId(3), "hog").unwrap_err();
        assert!(matches!(
            shed,
            ShedReason::TenantSaturated {
                in_flight: 2,
                limit: 2,
                ..
            }
        ));
        // other tenants are unaffected
        assert!(ac.offer(SessionId(4), "quiet").is_ok());
        // a running session still counts toward the tenant's in-flight
        let (id, tenant) = ac.admit_next().expect("eligible");
        assert_eq!((id, tenant.as_str()), (SessionId(1), "hog"));
        assert_eq!(ac.tenant_in_flight("hog"), 2);
        assert!(ac.offer(SessionId(5), "hog").is_err());
        // settling one frees a slot
        ac.settle("hog", SessionOutcome::Success);
        assert!(ac.offer(SessionId(5), "hog").is_ok());
    }

    #[test]
    fn admit_next_skips_over_quota_tenants_fifo_otherwise() {
        let mut ac = controller(16, 1, 8);
        assert!(ac.offer(SessionId(1), "a").is_ok());
        assert!(ac.offer(SessionId(2), "a").is_ok());
        assert!(ac.offer(SessionId(3), "b").is_ok());
        // oldest eligible first
        assert_eq!(ac.admit_next().unwrap().0, SessionId(1));
        // tenant a is at quota (1 running): its next queued is skipped
        assert_eq!(ac.admit_next().unwrap().0, SessionId(3));
        // both tenants at quota: nothing eligible although queue non-empty
        assert_eq!(ac.admit_next(), None);
        assert_eq!(ac.queue_depth(), 1);
        assert_eq!(ac.running_total(), 2);
        // releasing a's slot unblocks its queued session
        ac.settle("a", SessionOutcome::Success);
        assert_eq!(ac.admit_next().unwrap().0, SessionId(2));
    }

    #[test]
    fn failures_trip_the_tenant_breaker_then_probe_heals() {
        let breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown: 3,
            probe_successes: 1,
        };
        let mut ac = AdmissionController::new(AdmissionConfig {
            queue_capacity: 16,
            tenant_running_quota: 4,
            tenant_in_flight_limit: 16,
            breaker,
        });
        for id in [1u64, 2] {
            assert!(ac.offer(SessionId(id), "flaky").is_ok());
            ac.admit_next().expect("eligible");
            ac.settle("flaky", SessionOutcome::Failure);
        }
        assert_eq!(ac.breaker_state("flaky"), BreakerState::Open);
        assert_eq!(ac.stats().breaker_trips, 1);
        // open: sheds for `cooldown` offers, each a structured rejection
        for id in [3u64, 4, 5] {
            assert_eq!(
                ac.offer(SessionId(id), "flaky").unwrap_err(),
                ShedReason::TenantBreakerOpen {
                    tenant: "flaky".to_string()
                }
            );
        }
        // cooldown paid: half-open probe admits one trial session
        assert!(ac.offer(SessionId(6), "flaky").is_ok());
        assert_eq!(ac.breaker_state("flaky"), BreakerState::HalfOpen);
        ac.admit_next().expect("probe dispatches");
        ac.settle("flaky", SessionOutcome::Success);
        assert_eq!(ac.breaker_state("flaky"), BreakerState::Closed);
        // other tenants were never affected
        assert!(ac.offer(SessionId(7), "steady").is_ok());
        assert_eq!(ac.stats().shed_breaker_open, 3);
    }

    #[test]
    fn cancelled_sessions_are_breaker_neutral() {
        let breaker = BreakerConfig {
            failure_threshold: 1,
            cooldown: 2,
            probe_successes: 1,
        };
        let mut ac = AdmissionController::new(AdmissionConfig {
            breaker,
            ..AdmissionConfig::default()
        });
        assert!(ac.offer(SessionId(1), "t").is_ok());
        ac.admit_next().expect("eligible");
        ac.settle("t", SessionOutcome::Neutral);
        assert_eq!(ac.breaker_state("t"), BreakerState::Closed);
        assert_eq!(ac.stats().breaker_trips, 0);
    }

    #[test]
    fn remove_queued_and_drain() {
        let mut ac = controller(8, 2, 8);
        for id in 1..=3u64 {
            assert!(ac.offer(SessionId(id), "t").is_ok());
        }
        assert!(ac.remove_queued(SessionId(2)));
        assert!(!ac.remove_queued(SessionId(2)));
        let drained = ac.drain_queue();
        assert_eq!(
            drained
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<SessionId>>(),
            vec![SessionId(1), SessionId(3)]
        );
        assert_eq!(ac.queue_depth(), 0);
    }

    #[test]
    fn shed_reasons_serialize_structured() {
        let reasons = vec![
            ShedReason::QueueFull {
                depth: 4,
                capacity: 4,
            },
            ShedReason::TenantSaturated {
                tenant: "acme".to_string(),
                in_flight: 8,
                limit: 8,
            },
            ShedReason::TenantBreakerOpen {
                tenant: "acme".to_string(),
            },
            ShedReason::ShuttingDown,
        ];
        for reason in reasons {
            let json = serde_json::to_string(&reason).expect("serializes");
            let back: ShedReason = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, reason);
            assert!(!reason.label().is_empty());
            assert!(!reason.to_string().is_empty());
        }
    }
}

//! Resident evaluation service for the ChipVQA reproduction.
//!
//! Everything below PR 7 is batch: `table2` runs once and exits, fleet
//! workers coordinate through the filesystem. This crate is the serving
//! layer the ROADMAP's north star needs — a long-lived process that
//! accepts overlapping evaluation requests, applies backpressure, and
//! keeps the batch system's determinism guarantees:
//!
//! - [`session`] — the [`Session`](session::SessionRequest) abstraction:
//!   one request of (model set × `DatasetSpec` × `EvalOptions`) with the
//!   lifecycle Queued → Admitted → Running → {Done, Cancelled, Failed},
//!   cancellable and resumable with byte-identical reports.
//! - [`admission`] — bounded run queue, per-tenant running quotas and
//!   in-flight limits, and per-tenant circuit breakers; saturation sheds
//!   with structured [`ShedReason`](admission::ShedReason)s instead of
//!   queueing unboundedly or hanging.
//! - [`service`] — [`EvalService`](service::EvalService): runner pool
//!   over [`ParallelExecutor`](chipvqa_eval::ParallelExecutor), shared
//!   answer-cache plane (optionally store-backed) for cross-session
//!   batching, heartbeat/stall detection, graceful drop-guard shutdown.
//! - [`progress`] — per-shard [`ProgressEvent`](progress::ProgressEvent)
//!   stream sourced from the executor's existing telemetry spans.
//! - [`latency`] — p50/p95/p99 summaries the `chipvqa-load` generator
//!   writes to `BENCH_service.json`.

pub mod admission;
pub mod latency;
pub mod progress;
pub mod service;
pub mod session;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats, ShedReason};
pub use latency::LatencySummary;
pub use progress::{ProgressEvent, ProgressHub};
pub use service::{EvalService, ServiceConfig, ServiceStats};
pub use session::{
    SessionError, SessionId, SessionReport, SessionRequest, SessionSnapshot, SessionState,
};

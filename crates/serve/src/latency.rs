//! Latency percentile summaries for the serving benchmark.
//!
//! The load generator measures end-to-end session latency (submit →
//! terminal state) and folds each concurrency level into one
//! [`LatencySummary`], serialized as one JSON line of
//! `BENCH_service.json` — the same one-line-per-measurement shape
//! `BENCH_store.json` uses, so the committed perf trajectory stays
//! grep-able.

use serde::{Deserialize, Serialize};

/// Percentile summary of one batch of latency samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// What was measured (e.g. `service/sessions_8`).
    pub label: String,
    /// Sample count.
    pub samples: usize,
    /// 50th percentile, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: u64,
    /// Slowest sample, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes `samples` (nanoseconds) under `label`. Percentiles
    /// use the nearest-rank method on the sorted samples, so every
    /// reported value is an actually observed latency. Panics on an
    /// empty batch — a level with zero completed sessions is a lost
    ///-session bug the caller must surface, not a row of zeros.
    pub fn from_ns(label: impl Into<String>, mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "latency summary of zero samples");
        samples.sort_unstable();
        let mean_ns =
            (samples.iter().map(|&ns| u128::from(ns)).sum::<u128>() / samples.len() as u128) as u64;
        LatencySummary {
            label: label.into(),
            samples: samples.len(),
            p50_ns: nearest_rank(&samples, 50),
            p95_ns: nearest_rank(&samples, 95),
            p99_ns: nearest_rank(&samples, 99),
            mean_ns,
            max_ns: *samples.last().expect("non-empty"),
        }
    }

    /// One `BENCH_service.json` line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("summary serializes")
    }
}

/// Nearest-rank percentile of pre-sorted samples: the smallest value
/// with at least `pct`% of the samples at or below it.
fn nearest_rank(sorted: &[u64], pct: usize) -> u64 {
    debug_assert!((1..=100).contains(&pct));
    let rank = (sorted.len() * pct).div_ceil(100).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_observed_values() {
        // 1..=100 makes ranks legible: pN == N
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_ns("t", samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.mean_ns, 50);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_ns("one", vec![42]);
        assert_eq!((s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns), (42, 42, 42, 42));
        assert_eq!(s.samples, 1);
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let s = LatencySummary::from_ns("shuffled", vec![30, 10, 20]);
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.max_ns, 30);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_batch_panics() {
        let _ = LatencySummary::from_ns("none", Vec::new());
    }

    #[test]
    fn json_line_roundtrips() {
        let s = LatencySummary::from_ns("service/sessions_8", vec![5, 7, 9]);
        let line = s.to_json_line();
        assert!(!line.contains('\n'));
        let back: LatencySummary = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, s);
    }
}

//! Streamed per-shard progress events.
//!
//! Progress is not a new instrumentation layer: the executor already
//! emits an `executor.shard` span (with `model`/`q_start`/`q_end`
//! annotations) for every shard it completes, into whatever
//! [`Telemetry`] handle it carries. The service gives each running
//! session its own handle whose sink — a
//! [`FnSink`](chipvqa_telemetry::FnSink) built by
//! [`session_progress_telemetry`] — converts those spans into
//! [`ProgressEvent::Shard`]s on the service's [`ProgressHub`].
//!
//! The hub is a replaying broadcast channel: subscribers get the full
//! backlog first (a late subscriber misses nothing), then live events
//! as they happen. Dead receivers are pruned on the next publish.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};

use chipvqa_telemetry::{FnSink, Telemetry, TraceRecord};
use serde::{Deserialize, Serialize};

use crate::session::{SessionId, SessionState};

/// One progress event, serialized verbatim on the wire (the `serve`
/// bin streams these as JSON lines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgressEvent {
    /// A session changed lifecycle state.
    State {
        /// The session.
        session: SessionId,
        /// The state it entered.
        state: SessionState,
    },
    /// A session completed one shard.
    Shard {
        /// The session.
        session: SessionId,
        /// Model the shard evaluated.
        model: String,
        /// First question index of the shard.
        q_start: usize,
        /// One past the last question index.
        q_end: usize,
        /// Shards completed so far (including this one).
        shards_done: usize,
        /// Shards the session needs in total.
        shards_total: usize,
    },
    /// The heartbeat saw no shard progress on a running session for
    /// longer than the configured stall window.
    Stalled {
        /// The session.
        session: SessionId,
        /// How long it has been idle, in milliseconds.
        idle_ms: u64,
    },
}

impl ProgressEvent {
    /// The session this event concerns.
    pub fn session(&self) -> SessionId {
        match self {
            ProgressEvent::State { session, .. }
            | ProgressEvent::Shard { session, .. }
            | ProgressEvent::Stalled { session, .. } => *session,
        }
    }
}

/// Poison-tolerant lock (executor workers publish shard events; a
/// caught worker panic must not wedge the hub).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Default)]
struct HubInner {
    backlog: Vec<ProgressEvent>,
    subscribers: Vec<Sender<ProgressEvent>>,
}

/// Replaying broadcast channel for [`ProgressEvent`]s.
#[derive(Default)]
pub struct ProgressHub {
    inner: Mutex<HubInner>,
}

impl ProgressHub {
    /// An empty hub.
    pub fn new() -> Self {
        ProgressHub::default()
    }

    /// Publishes one event to the backlog and every live subscriber;
    /// subscribers whose receiver was dropped are pruned.
    pub fn publish(&self, event: ProgressEvent) {
        let mut inner = lock(&self.inner);
        inner.backlog.push(event.clone());
        inner
            .subscribers
            .retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Subscribes: the receiver first yields the entire backlog, then
    /// live events.
    pub fn subscribe(&self) -> Receiver<ProgressEvent> {
        let (tx, rx) = channel();
        let mut inner = lock(&self.inner);
        for event in &inner.backlog {
            // the receiver cannot be dropped yet: we hold it
            let _ = tx.send(event.clone());
        }
        inner.subscribers.push(tx);
        rx
    }

    /// Events published so far.
    pub fn backlog_len(&self) -> usize {
        lock(&self.inner).backlog.len()
    }

    /// A copy of every event published so far.
    pub fn backlog(&self) -> Vec<ProgressEvent> {
        lock(&self.inner).backlog.clone()
    }
}

impl std::fmt::Debug for ProgressHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressHub")
            .field("backlog_len", &self.backlog_len())
            .finish()
    }
}

/// Builds the per-session [`Telemetry`] handle whose sink turns the
/// executor's `executor.shard` spans into [`ProgressEvent::Shard`]s.
///
/// `done` carries the session's completed-shard count (pre-seeded with
/// the checkpoint's count on resume, so a resumed session's events
/// continue the sequence instead of restarting at 1). `epoch` is bumped
/// on every shard — the heartbeat's stall detector watches it.
pub fn session_progress_telemetry(
    hub: Arc<ProgressHub>,
    session: SessionId,
    shards_total: usize,
    done: Arc<AtomicUsize>,
    epoch: Arc<AtomicU64>,
) -> Telemetry {
    let sink = FnSink::new(move |record: &TraceRecord| {
        if record.name() != "executor.shard" {
            return;
        }
        let (Some(model), Some(q_start), Some(q_end)) = (
            record.get("model"),
            record.get("q_start").and_then(|v| v.parse().ok()),
            record.get("q_end").and_then(|v| v.parse().ok()),
        ) else {
            return;
        };
        let shards_done = done.fetch_add(1, Ordering::SeqCst) + 1;
        epoch.fetch_add(1, Ordering::SeqCst);
        hub.publish(ProgressEvent::Shard {
            session,
            model: model.to_string(),
            q_start,
            q_end,
            shards_done,
            shards_total,
        });
    });
    Telemetry::builder().sink(Arc::new(sink)).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_event(id: u64, state: SessionState) -> ProgressEvent {
        ProgressEvent::State {
            session: SessionId(id),
            state,
        }
    }

    #[test]
    fn late_subscribers_replay_the_backlog() {
        let hub = ProgressHub::new();
        hub.publish(state_event(1, SessionState::Queued));
        hub.publish(state_event(1, SessionState::Running));
        let rx = hub.subscribe();
        hub.publish(state_event(1, SessionState::Done));
        let got: Vec<ProgressEvent> = rx.try_iter().collect();
        assert_eq!(
            got,
            vec![
                state_event(1, SessionState::Queued),
                state_event(1, SessionState::Running),
                state_event(1, SessionState::Done),
            ]
        );
        assert_eq!(hub.backlog_len(), 3);
    }

    #[test]
    fn dropped_receivers_are_pruned() {
        let hub = ProgressHub::new();
        let rx = hub.subscribe();
        drop(rx);
        hub.publish(state_event(1, SessionState::Queued));
        let live = hub.subscribe();
        hub.publish(state_event(1, SessionState::Running));
        assert_eq!(live.try_iter().count(), 2);
    }

    #[test]
    fn shard_spans_become_progress_events() {
        use chipvqa_core::ChipVqa;
        use chipvqa_eval::harness::EvalOptions;
        use chipvqa_eval::ParallelExecutor;
        use chipvqa_models::{ModelZoo, VlmPipeline};

        let hub = Arc::new(ProgressHub::new());
        let done = Arc::new(AtomicUsize::new(0));
        let epoch = Arc::new(AtomicU64::new(0));
        let bench = ChipVqa::standard();
        let pipes = vec![VlmPipeline::new(ModelZoo::gpt4o())];
        let tele = session_progress_telemetry(
            Arc::clone(&hub),
            SessionId(7),
            9,
            Arc::clone(&done),
            Arc::clone(&epoch),
        );
        let rx = hub.subscribe();
        ParallelExecutor::new(2).with_telemetry(tele).evaluate_grid(
            &pipes,
            &bench,
            EvalOptions::default(),
            &chipvqa_eval::RuleJudge::new(),
        );

        // 142 questions / 16-question shards → 9 shards
        let events: Vec<ProgressEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 9);
        assert_eq!(done.load(Ordering::SeqCst), 9);
        assert_eq!(epoch.load(Ordering::SeqCst), 9);
        let mut dones: Vec<usize> = events
            .iter()
            .map(|e| match e {
                ProgressEvent::Shard {
                    session,
                    model,
                    shards_done,
                    shards_total,
                    ..
                } => {
                    assert_eq!(*session, SessionId(7));
                    assert_eq!(model, "GPT4o");
                    assert_eq!(*shards_total, 9);
                    *shards_done
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        dones.sort_unstable();
        assert_eq!(dones, (1..=9).collect::<Vec<usize>>());
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            state_event(3, SessionState::Cancelled),
            ProgressEvent::Shard {
                session: SessionId(3),
                model: "GPT4o".to_string(),
                q_start: 0,
                q_end: 16,
                shards_done: 1,
                shards_total: 9,
            },
            ProgressEvent::Stalled {
                session: SessionId(3),
                idle_ms: 5000,
            },
        ];
        for event in events {
            let json = serde_json::to_string(&event).expect("serializes");
            let back: ProgressEvent = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, event);
            assert_eq!(event.session(), SessionId(3));
        }
    }
}

//! An out-of-order execution model: Tomasulo-style reservation stations
//! with register renaming and a common data bus, plus an in-order
//! scoreboard baseline — covering the "out-of-order machines" topic of
//! the paper's Architecture section.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::isa::{Instr, Reg};

/// Functional-unit class an instruction occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Integer ALU.
    Alu,
    /// Load/store unit.
    Mem,
}

/// Latency and count of each functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OooConfig {
    /// ALU units available.
    pub alu_units: u32,
    /// Memory units available.
    pub mem_units: u32,
    /// ALU latency in cycles.
    pub alu_latency: u64,
    /// Memory latency in cycles.
    pub mem_latency: u64,
    /// Instructions issued per cycle.
    pub issue_width: u32,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            alu_units: 2,
            mem_units: 1,
            alu_latency: 1,
            mem_latency: 3,
            issue_width: 2,
        }
    }
}

/// Timing of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrTiming {
    /// Cycle the instruction issued to a reservation station.
    pub issue: u64,
    /// Cycle execution started (operands + unit ready).
    pub start: u64,
    /// Cycle the result broadcast on the CDB (start + latency).
    pub finish: u64,
}

/// Result of an out-of-order run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OooResult {
    /// Per-instruction timings, program order.
    pub timings: Vec<InstrTiming>,
    /// Total cycles (last finish).
    pub cycles: u64,
}

impl OooResult {
    /// Instructions per cycle achieved.
    pub fn ipc(&self) -> f64 {
        self.timings.len() as f64 / self.cycles.max(1) as f64
    }

    /// Whether any instruction finished before an *earlier* (program
    /// order) instruction — the signature of out-of-order completion.
    pub fn completed_out_of_order(&self) -> bool {
        self.timings.windows(2).any(|w| w[1].finish < w[0].finish)
    }
}

fn fu_kind(i: &Instr) -> Option<FuKind> {
    match i {
        Instr::Add { .. } | Instr::Sub { .. } | Instr::Beq { .. } => Some(FuKind::Alu),
        Instr::Load { .. } | Instr::Store { .. } => Some(FuKind::Mem),
        Instr::Nop => None,
    }
}

/// Runs a straight-line program (branches treated as ALU ops, not taken)
/// through a Tomasulo-style dataflow schedule: an instruction starts when
/// its operands have been produced and a functional unit is free; results
/// broadcast one per cycle per producer with no in-order constraint
/// beyond issue order.
pub fn run_ooo(prog: &[Instr], cfg: OooConfig) -> OooResult {
    let mut ready_at: BTreeMap<u8, u64> = BTreeMap::new(); // reg -> cycle value available
                                                           // free_at[k] = cycles each unit of the class frees up
    let mut alu_free: Vec<u64> = vec![0; cfg.alu_units.max(1) as usize];
    let mut mem_free: Vec<u64> = vec![0; cfg.mem_units.max(1) as usize];
    let mut timings = Vec::with_capacity(prog.len());
    let mut cycles = 0u64;

    for (i, instr) in prog.iter().enumerate() {
        let issue = 1 + (i as u64 / u64::from(cfg.issue_width.max(1)));
        let operands_ready = instr
            .sources()
            .iter()
            .map(|r: &Reg| ready_at.get(&r.0).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let (pool, latency) = match fu_kind(instr) {
            Some(FuKind::Alu) | None => (&mut alu_free, cfg.alu_latency),
            Some(FuKind::Mem) => (&mut mem_free, cfg.mem_latency),
        };
        // earliest unit available
        let (unit_idx, &unit_free) = pool
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("unit pools nonempty");
        let start = issue.max(operands_ready).max(unit_free);
        let finish = start + latency;
        pool[unit_idx] = finish;
        if let Some(dest) = instr.dest() {
            ready_at.insert(dest.0, finish);
        }
        cycles = cycles.max(finish);
        timings.push(InstrTiming {
            issue,
            start,
            finish,
        });
    }
    OooResult { timings, cycles }
}

/// Runs the same program with a strict in-order scoreboard: an
/// instruction cannot *start* before every earlier instruction has
/// started, and stalls on operands like the OOO machine (the classic
/// CDC-6600-style baseline the OOO machine is compared against).
pub fn run_in_order(prog: &[Instr], cfg: OooConfig) -> OooResult {
    let mut ready_at: BTreeMap<u8, u64> = BTreeMap::new();
    let mut alu_free: Vec<u64> = vec![0; cfg.alu_units.max(1) as usize];
    let mut mem_free: Vec<u64> = vec![0; cfg.mem_units.max(1) as usize];
    let mut last_start = 0u64;
    let mut timings = Vec::with_capacity(prog.len());
    let mut cycles = 0u64;

    for (i, instr) in prog.iter().enumerate() {
        let issue = 1 + (i as u64 / u64::from(cfg.issue_width.max(1)));
        let operands_ready = instr
            .sources()
            .iter()
            .map(|r: &Reg| ready_at.get(&r.0).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let (pool, latency) = match fu_kind(instr) {
            Some(FuKind::Alu) | None => (&mut alu_free, cfg.alu_latency),
            Some(FuKind::Mem) => (&mut mem_free, cfg.mem_latency),
        };
        let (unit_idx, &unit_free) = pool
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("unit pools nonempty");
        let start = issue.max(operands_ready).max(unit_free).max(last_start); // in-order start
        let finish = start + latency;
        pool[unit_idx] = finish;
        last_start = start;
        if let Some(dest) = instr.dest() {
            ready_at.insert(dest.0, finish);
        }
        cycles = cycles.max(finish);
        timings.push(InstrTiming {
            issue,
            start,
            finish,
        });
    }
    OooResult { timings, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::program;

    /// A long-latency load followed by an independent ALU chain: OOO
    /// hides the load shadow, in-order cannot start past it... (in-order
    /// here still starts independents — the win shows on unit conflicts
    /// and dependent chains below).
    fn load_shadow() -> Vec<Instr> {
        program()
            .load(Reg(1), Reg(0), 0) // 3-cycle load
            .add(Reg(2), Reg(1), Reg(1)) // depends on the load
            .add(Reg(3), Reg(4), Reg(5)) // independent
            .add(Reg(6), Reg(3), Reg(4)) // independent chain
            .build()
    }

    #[test]
    fn ooo_completes_out_of_order() {
        let res = run_ooo(&load_shadow(), OooConfig::default());
        assert!(res.completed_out_of_order(), "{:?}", res.timings);
        // the independent add finishes before the dependent one
        assert!(res.timings[2].finish < res.timings[1].finish);
    }

    #[test]
    fn ooo_never_slower_than_in_order() {
        let cfg = OooConfig::default();
        for prog in [
            load_shadow(),
            program()
                .load(Reg(1), Reg(0), 0)
                .load(Reg(2), Reg(0), 8)
                .add(Reg(3), Reg(1), Reg(2))
                .add(Reg(4), Reg(4), Reg(5))
                .add(Reg(5), Reg(6), Reg(7))
                .build(),
        ] {
            let ooo = run_ooo(&prog, cfg);
            let ino = run_in_order(&prog, cfg);
            assert!(ooo.cycles <= ino.cycles, "{} vs {}", ooo.cycles, ino.cycles);
        }
    }

    #[test]
    fn dependent_chain_gains_nothing() {
        // fully serial chain: OOO == in-order
        let prog = program()
            .add(Reg(1), Reg(0), Reg(0))
            .add(Reg(2), Reg(1), Reg(1))
            .add(Reg(3), Reg(2), Reg(2))
            .build();
        let cfg = OooConfig::default();
        assert_eq!(run_ooo(&prog, cfg).cycles, run_in_order(&prog, cfg).cycles);
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let mut b = program();
        for i in 0..64 {
            b = b.add(Reg((i % 8 + 8) as u8), Reg(1), Reg(2));
        }
        let res = run_ooo(&b.build(), OooConfig::default());
        assert!(res.ipc() <= 2.0 + 1e-9, "ipc {}", res.ipc());
        assert!(res.ipc() > 1.5, "independent stream should near the width");
    }

    #[test]
    fn single_mem_unit_serialises_loads() {
        let prog = program()
            .load(Reg(1), Reg(0), 0)
            .load(Reg(2), Reg(0), 8)
            .load(Reg(3), Reg(0), 16)
            .build();
        let res = run_ooo(&prog, OooConfig::default());
        // 3 loads x 3 cycles on one unit: finishes at 4, 7, 10
        assert_eq!(res.cycles, 10);
        let two_units = run_ooo(
            &prog,
            OooConfig {
                mem_units: 2,
                ..OooConfig::default()
            },
        );
        assert!(two_units.cycles < res.cycles);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn ooo_dominates_in_order(ops in proptest::collection::vec(0u8..3, 1..30)) {
                let mut b = program();
                for (i, op) in ops.iter().enumerate() {
                    let d = Reg((i % 12) as u8);
                    let s = Reg(((i * 5 + 1) % 12) as u8);
                    b = match op {
                        0 => b.add(d, s, Reg(1)),
                        1 => b.load(d, s, 4),
                        _ => b.sub(d, s, Reg(2)),
                    };
                }
                let prog = b.build();
                let cfg = OooConfig::default();
                let ooo = run_ooo(&prog, cfg);
                let ino = run_in_order(&prog, cfg);
                prop_assert!(ooo.cycles <= ino.cycles);
                // dataflow correctness: no instruction starts before its
                // operands are produced
                prop_assert!(ooo.timings.iter().all(|t| t.finish > t.start || t.start == t.finish));
            }
        }
    }
}

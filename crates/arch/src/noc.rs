//! Network-on-chip topology metrics: ring, 2-D mesh/torus, hypercube and
//! crossbar, plus dimension-ordered (XY) routing hop counts.

use serde::{Deserialize, Serialize};

/// A network topology over `n` terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Bidirectional ring of `n` nodes.
    Ring {
        /// Node count.
        n: usize,
    },
    /// `w x h` 2-D mesh.
    Mesh {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// `w x h` 2-D torus (wrap-around links).
    Torus {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// `d`-dimensional hypercube (`2^d` nodes).
    Hypercube {
        /// Dimension.
        d: u32,
    },
    /// Full crossbar over `n` nodes.
    Crossbar {
        /// Node count.
        n: usize,
    },
}

impl Topology {
    /// Number of terminals.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Ring { n } | Topology::Crossbar { n } => n,
            Topology::Mesh { w, h } | Topology::Torus { w, h } => w * h,
            Topology::Hypercube { d } => 1 << d,
        }
    }

    /// Network diameter (maximum shortest-path hops).
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Ring { n } => n / 2,
            Topology::Mesh { w, h } => (w - 1) + (h - 1),
            Topology::Torus { w, h } => w / 2 + h / 2,
            Topology::Hypercube { d } => d as usize,
            Topology::Crossbar { .. } => 1,
        }
    }

    /// Bisection width (links cut by a worst-case even bipartition).
    pub fn bisection_width(&self) -> usize {
        match *self {
            Topology::Ring { .. } => 2,
            Topology::Mesh { w, h } => w.min(h),
            Topology::Torus { w, h } => 2 * w.min(h),
            Topology::Hypercube { d } => 1 << (d - 1),
            Topology::Crossbar { n } => (n / 2) * (n / 2),
        }
    }

    /// Degree of a (non-edge) node.
    pub fn degree(&self) -> usize {
        match *self {
            Topology::Ring { .. } => 2,
            Topology::Mesh { .. } => 4,
            Topology::Torus { .. } => 4,
            Topology::Hypercube { d } => d as usize,
            Topology::Crossbar { n } => n - 1,
        }
    }

    /// Total bidirectional link count.
    pub fn link_count(&self) -> usize {
        match *self {
            Topology::Ring { n } => n,
            Topology::Mesh { w, h } => h * (w - 1) + w * (h - 1),
            Topology::Torus { w, h } => 2 * w * h,
            Topology::Hypercube { d } => (d as usize) << (d - 1),
            Topology::Crossbar { n } => n * (n - 1) / 2,
        }
    }

    /// Shortest-path hops between two node ids under the topology's
    /// natural (dimension-ordered) routing.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let n = self.node_count();
        assert!(a < n && b < n, "node id out of range");
        match *self {
            Topology::Ring { n } => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            Topology::Mesh { w, .. } => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Torus { w, h } => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                dx.min(w - dx) + dy.min(h - dy)
            }
            Topology::Hypercube { .. } => (a ^ b).count_ones() as usize,
            Topology::Crossbar { .. } => usize::from(a != b),
        }
    }

    /// Average hop count over all ordered pairs (exact enumeration).
    pub fn average_hops(&self) -> f64 {
        let n = self.node_count();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += self.hops(a, b);
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_metrics() {
        let m = Topology::Mesh { w: 4, h: 4 };
        assert_eq!(m.node_count(), 16);
        assert_eq!(m.diameter(), 6);
        assert_eq!(m.bisection_width(), 4);
        assert_eq!(m.link_count(), 24);
        assert_eq!(m.hops(0, 15), 6); // corner to corner
    }

    #[test]
    fn torus_halves_diameter() {
        let m = Topology::Mesh { w: 8, h: 8 };
        let t = Topology::Torus { w: 8, h: 8 };
        assert_eq!(t.diameter(), 8);
        assert!(t.diameter() < m.diameter());
        assert_eq!(t.bisection_width(), 2 * m.bisection_width());
    }

    #[test]
    fn hypercube_hops_is_hamming_distance() {
        let h = Topology::Hypercube { d: 4 };
        assert_eq!(h.node_count(), 16);
        assert_eq!(h.diameter(), 4);
        assert_eq!(h.hops(0b0000, 0b1011), 3);
        assert_eq!(h.bisection_width(), 8);
        assert_eq!(h.link_count(), 32);
    }

    #[test]
    fn ring_wraps() {
        let r = Topology::Ring { n: 10 };
        assert_eq!(r.hops(1, 9), 2);
        assert_eq!(r.diameter(), 5);
        assert_eq!(r.link_count(), 10);
    }

    #[test]
    fn crossbar_is_single_hop() {
        let x = Topology::Crossbar { n: 8 };
        assert_eq!(x.diameter(), 1);
        assert_eq!(x.hops(3, 3), 0);
        assert_eq!(x.hops(0, 7), 1);
        assert_eq!(x.link_count(), 28);
    }

    #[test]
    fn average_hops_ordering() {
        // For equal node counts: crossbar < hypercube < torus < mesh.
        let n16 = [
            Topology::Crossbar { n: 16 }.average_hops(),
            Topology::Hypercube { d: 4 }.average_hops(),
            Topology::Torus { w: 4, h: 4 }.average_hops(),
            Topology::Mesh { w: 4, h: 4 }.average_hops(),
        ];
        for pair in n16.windows(2) {
            assert!(pair[0] <= pair[1], "{n16:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node() {
        let _ = Topology::Ring { n: 4 }.hops(0, 5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn hops_symmetric_and_bounded(
                a in 0usize..16, b in 0usize..16,
            ) {
                for t in [
                    Topology::Mesh { w: 4, h: 4 },
                    Topology::Torus { w: 4, h: 4 },
                    Topology::Hypercube { d: 4 },
                    Topology::Ring { n: 16 },
                ] {
                    prop_assert_eq!(t.hops(a, b), t.hops(b, a));
                    prop_assert!(t.hops(a, b) <= t.diameter());
                    prop_assert_eq!(t.hops(a, a), 0);
                }
            }
        }
    }
}

//! Computer-architecture substrate for the ChipVQA reproduction.
//!
//! ChipVQA's Architecture section covers memory encoding, branch
//! prediction, critical-path latency, coherence protocols, virtual-memory
//! translation, pipelining, vector processors and network topology. This
//! crate implements each of those as a small, testable simulator so the
//! question generators can derive golden answers (e.g. *"how does the
//! bolded bypass path affect CPI and frequency?"* is answered by actually
//! running the pipeline with and without the path):
//!
//! - [`isa`]: a tiny RISC instruction set used by the pipeline model;
//! - [`pipeline`]: a classic 5-stage in-order pipeline with configurable
//!   forwarding paths, stall accounting and a cycle-time model;
//! - [`branch`]: static, 1-bit, 2-bit and gshare predictors;
//! - [`cache`]: a parameterised set-associative cache with LRU/FIFO and
//!   address-breakdown helpers;
//! - [`coherence`]: the MESI protocol as an explicit state machine plus a
//!   multi-cache bus simulation;
//! - [`vm`]: multi-level page-table translation with a TLB;
//! - [`ooo`]: Tomasulo-style out-of-order execution vs an in-order
//!   scoreboard baseline;
//! - [`noc`]: network topology metrics (mesh/torus/hypercube/ring) and XY
//!   routing;
//! - [`vector`]: a convoy/chime execution-time model;
//! - [`render`]: pipeline diagrams with bypass arrows, cache/address
//!   layouts and topology drawings.
//!
//! # Example
//!
//! ```
//! use chipvqa_arch::isa::{program, Reg};
//! use chipvqa_arch::pipeline::{ForwardingConfig, Pipeline};
//!
//! // A load feeding the next ALU op: full forwarding still needs one
//! // load-use stall; no forwarding needs two bubbles.
//! let prog = program()
//!     .load(Reg(1), Reg(0), 0)
//!     .add(Reg(2), Reg(1), Reg(1))
//!     .build();
//! let full = Pipeline::new(ForwardingConfig::full()).run(&prog);
//! let none = Pipeline::new(ForwardingConfig::none()).run(&prog);
//! assert!(full.cycles < none.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod coherence;
pub mod isa;
pub mod noc;
pub mod ooo;
pub mod pipeline;
pub mod render;
pub mod vector;
pub mod vm;

pub use cache::Cache;
pub use pipeline::{ForwardingConfig, Pipeline};

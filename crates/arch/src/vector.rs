//! A convoy/chime execution-time model for vector processors
//! (Hennessy–Patterson style).

use serde::{Deserialize, Serialize};

/// A vector functional unit class (determines convoy structural hazards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VecUnit {
    /// Load/store unit.
    Memory,
    /// FP add pipeline.
    Add,
    /// FP multiply pipeline.
    Multiply,
}

/// One vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VecInstr {
    /// The functional unit it occupies.
    pub unit: VecUnit,
    /// Destination vector register.
    pub dest: u8,
    /// Source vector registers.
    pub srcs: [Option<u8>; 2],
}

/// A vector machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorMachine {
    /// Vector register length (elements per instruction).
    pub vector_length: u32,
    /// Parallel lanes.
    pub lanes: u32,
    /// Pipeline start-up overhead per convoy, in cycles.
    pub startup_cycles: u32,
    /// Whether chaining is supported (dependent instructions may share a
    /// convoy).
    pub chaining: bool,
}

impl VectorMachine {
    /// Groups instructions into convoys: instructions that can begin in
    /// the same chime. A structural hazard (same unit) always splits;
    /// a data dependence splits only without chaining.
    pub fn convoys(&self, program: &[VecInstr]) -> Vec<Vec<VecInstr>> {
        let mut convoys: Vec<Vec<VecInstr>> = Vec::new();
        let mut current: Vec<VecInstr> = Vec::new();
        for &instr in program {
            let structural = current.iter().any(|c| c.unit == instr.unit);
            let data_dep = current
                .iter()
                .any(|c| instr.srcs.iter().flatten().any(|&s| s == c.dest));
            if structural || (data_dep && !self.chaining) || current.is_empty() {
                if !current.is_empty() {
                    convoys.push(std::mem::take(&mut current));
                }
                current.push(instr);
            } else {
                current.push(instr);
            }
        }
        if !current.is_empty() {
            convoys.push(current);
        }
        convoys
    }

    /// Total execution cycles: each convoy costs one chime
    /// (`ceil(VL / lanes)` cycles) plus start-up.
    pub fn execution_cycles(&self, program: &[VecInstr]) -> u64 {
        let chime = u64::from(self.vector_length.div_ceil(self.lanes));
        let convoys = self.convoys(program);
        convoys.len() as u64 * (chime + u64::from(self.startup_cycles))
    }

    /// Cycles per element (the classic figure of merit).
    pub fn cycles_per_element(&self, program: &[VecInstr]) -> f64 {
        self.execution_cycles(program) as f64 / f64::from(self.vector_length)
    }
}

/// The DAXPY kernel (`Y = a*X + Y`) as vector instructions.
pub fn daxpy() -> Vec<VecInstr> {
    vec![
        VecInstr {
            unit: VecUnit::Memory,
            dest: 1,
            srcs: [None, None],
        }, // LV V1, X
        VecInstr {
            unit: VecUnit::Multiply,
            dest: 2,
            srcs: [Some(1), None],
        }, // MULVS V2, V1, a
        VecInstr {
            unit: VecUnit::Memory,
            dest: 3,
            srcs: [None, None],
        }, // LV V3, Y
        VecInstr {
            unit: VecUnit::Add,
            dest: 4,
            srcs: [Some(2), Some(3)],
        }, // ADDV V4, V2, V3
        VecInstr {
            unit: VecUnit::Memory,
            dest: 5,
            srcs: [Some(4), None],
        }, // SV V4 -> Y
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(chaining: bool, lanes: u32) -> VectorMachine {
        VectorMachine {
            vector_length: 64,
            lanes,
            startup_cycles: 12,
            chaining,
        }
    }

    #[test]
    fn daxpy_convoy_count_matches_textbook() {
        // Without chaining DAXPY needs 4 convoys: LV | MULVS, LV | ADDV | SV
        // (MULVS depends on the first LV, so it can't share; second LV can
        // pair with MULVS). With chaining: 3 convoys (memory unit reuse
        // still splits loads/store).
        let m = machine(false, 1);
        let convoys = m.convoys(&daxpy());
        assert_eq!(convoys.len(), 4, "{convoys:?}");
        let c = machine(true, 1);
        assert_eq!(c.convoys(&daxpy()).len(), 3);
    }

    #[test]
    fn chaining_reduces_cycles() {
        let without = machine(false, 1).execution_cycles(&daxpy());
        let with = machine(true, 1).execution_cycles(&daxpy());
        assert!(with < without, "{with} vs {without}");
    }

    #[test]
    fn lanes_divide_chime() {
        let one = machine(true, 1).execution_cycles(&daxpy());
        let four = machine(true, 4).execution_cycles(&daxpy());
        // 3 convoys: (64+12)*3 = 228 vs (16+12)*3 = 84
        assert_eq!(one, 228);
        assert_eq!(four, 84);
    }

    #[test]
    fn single_instruction_is_one_convoy() {
        let m = machine(true, 1);
        let p = vec![VecInstr {
            unit: VecUnit::Add,
            dest: 1,
            srcs: [None, None],
        }];
        assert_eq!(m.convoys(&p).len(), 1);
        assert!((m.cycles_per_element(&p) - 76.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn structural_hazard_always_splits() {
        let m = machine(true, 1);
        let p = vec![
            VecInstr {
                unit: VecUnit::Add,
                dest: 1,
                srcs: [None, None],
            },
            VecInstr {
                unit: VecUnit::Add,
                dest: 2,
                srcs: [None, None],
            },
        ];
        assert_eq!(m.convoys(&p).len(), 2);
    }
}

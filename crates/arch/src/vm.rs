//! Virtual-memory translation: multi-level page tables and a small TLB.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Page-table geometry: `levels` levels of `bits_per_level` index bits
/// over `page_bits` pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmConfig {
    /// log2 of the page size (12 → 4 KiB pages).
    pub page_bits: u32,
    /// Index bits consumed by each page-table level.
    pub bits_per_level: u32,
    /// Number of levels walked root-first.
    pub levels: u32,
}

impl VmConfig {
    /// Total virtual-address bits this configuration translates.
    pub fn va_bits(&self) -> u32 {
        self.page_bits + self.bits_per_level * self.levels
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        1 << self.page_bits
    }

    /// Splits a virtual address into `(level indices root-first, offset)`.
    pub fn split(&self, va: u64) -> (Vec<u64>, u64) {
        let offset = va & (self.page_size() - 1);
        let vpn = va >> self.page_bits;
        let mask = (1u64 << self.bits_per_level) - 1;
        let idx: Vec<u64> = (0..self.levels)
            .rev()
            .map(|l| (vpn >> (l * self.bits_per_level)) & mask)
            .collect();
        (idx, offset)
    }
}

/// Outcome of a translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Translation {
    /// Hit in the TLB: physical address, no walk.
    TlbHit {
        /// Resulting physical address.
        pa: u64,
    },
    /// TLB miss, successful walk: physical address and memory accesses
    /// spent walking (= number of levels).
    Walked {
        /// Resulting physical address.
        pa: u64,
        /// Page-table memory accesses performed.
        walk_accesses: u32,
    },
    /// Page fault: no mapping.
    Fault,
}

/// A process address space: sparse page table plus TLB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    config: VmConfig,
    /// VPN → PPN.
    mappings: HashMap<u64, u64>,
    tlb: Vec<(u64, u64)>, // (vpn, ppn), LRU order: back = MRU
    tlb_capacity: usize,
    /// TLB hits observed.
    pub tlb_hits: u64,
    /// TLB misses observed.
    pub tlb_misses: u64,
}

/// Error for unaligned mapping requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnalignedError;

impl fmt::Display for UnalignedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address not page-aligned")
    }
}

impl std::error::Error for UnalignedError {}

impl AddressSpace {
    /// Creates an empty address space with a `tlb_capacity`-entry
    /// fully-associative LRU TLB.
    pub fn new(config: VmConfig, tlb_capacity: usize) -> Self {
        AddressSpace {
            config,
            mappings: HashMap::new(),
            tlb: Vec::new(),
            tlb_capacity: tlb_capacity.max(1),
            tlb_hits: 0,
            tlb_misses: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> VmConfig {
        self.config
    }

    /// Maps virtual page starting at `va` to the physical page at `pa`.
    ///
    /// # Errors
    ///
    /// [`UnalignedError`] if either address is not page-aligned.
    pub fn map(&mut self, va: u64, pa: u64) -> Result<(), UnalignedError> {
        let mask = self.config.page_size() - 1;
        if va & mask != 0 || pa & mask != 0 {
            return Err(UnalignedError);
        }
        self.mappings
            .insert(va >> self.config.page_bits, pa >> self.config.page_bits);
        Ok(())
    }

    /// Translates a virtual address, updating the TLB.
    pub fn translate(&mut self, va: u64) -> Translation {
        let vpn = va >> self.config.page_bits;
        let offset = va & (self.config.page_size() - 1);
        if let Some(pos) = self.tlb.iter().position(|&(v, _)| v == vpn) {
            let entry = self.tlb.remove(pos);
            self.tlb.push(entry);
            self.tlb_hits += 1;
            return Translation::TlbHit {
                pa: (entry.1 << self.config.page_bits) | offset,
            };
        }
        self.tlb_misses += 1;
        match self.mappings.get(&vpn) {
            Some(&ppn) => {
                if self.tlb.len() == self.tlb_capacity {
                    self.tlb.remove(0);
                }
                self.tlb.push((vpn, ppn));
                Translation::Walked {
                    pa: (ppn << self.config.page_bits) | offset,
                    walk_accesses: self.config.levels,
                }
            }
            None => Translation::Fault,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv39ish() -> VmConfig {
        VmConfig {
            page_bits: 12,
            bits_per_level: 9,
            levels: 3,
        }
    }

    #[test]
    fn va_split_matches_geometry() {
        let cfg = sv39ish();
        assert_eq!(cfg.va_bits(), 39);
        let va = (5u64 << 30) | (17 << 21) | (511 << 12) | 0xABC;
        let (idx, off) = cfg.split(va);
        assert_eq!(idx, vec![5, 17, 511]);
        assert_eq!(off, 0xABC);
    }

    #[test]
    fn translate_hits_after_walk() {
        let cfg = sv39ish();
        let mut asp = AddressSpace::new(cfg, 4);
        asp.map(0x4000_0000, 0x8000_0000).unwrap();
        match asp.translate(0x4000_0123) {
            Translation::Walked { pa, walk_accesses } => {
                assert_eq!(pa, 0x8000_0123);
                assert_eq!(walk_accesses, 3);
            }
            other => panic!("expected walk, got {other:?}"),
        }
        match asp.translate(0x4000_0FFF) {
            Translation::TlbHit { pa } => assert_eq!(pa, 0x8000_0FFF),
            other => panic!("expected TLB hit, got {other:?}"),
        }
        assert_eq!(asp.tlb_hits, 1);
        assert_eq!(asp.tlb_misses, 1);
    }

    #[test]
    fn unmapped_faults() {
        let mut asp = AddressSpace::new(sv39ish(), 4);
        assert_eq!(asp.translate(0xdead_b000), Translation::Fault);
    }

    #[test]
    fn unaligned_map_rejected() {
        let mut asp = AddressSpace::new(sv39ish(), 4);
        assert!(asp.map(0x1001, 0x2000).is_err());
        assert!(asp.map(0x1000, 0x2008).is_err());
    }

    #[test]
    fn tlb_evicts_lru() {
        let mut asp = AddressSpace::new(sv39ish(), 2);
        for i in 0..3u64 {
            asp.map(i << 12, (i + 100) << 12).unwrap();
        }
        asp.translate(0 << 12); // TLB: [0]
        asp.translate(1 << 12); // TLB: [0,1]
        asp.translate(0); // refresh 0 -> [1,0]
        asp.translate(2 << 12); // evict 1 -> [0,2]
        assert!(matches!(asp.translate(0), Translation::TlbHit { .. }));
        assert!(matches!(asp.translate(1 << 12), Translation::Walked { .. }));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn offset_preserved(vpn in 0u64..(1 << 27), ppn in 0u64..(1 << 27), off in 0u64..4096) {
                let mut asp = AddressSpace::new(sv39ish(), 8);
                asp.map(vpn << 12, ppn << 12).unwrap();
                match asp.translate((vpn << 12) | off) {
                    Translation::Walked { pa, .. } | Translation::TlbHit { pa } => {
                        prop_assert_eq!(pa & 0xFFF, off);
                        prop_assert_eq!(pa >> 12, ppn);
                    }
                    Translation::Fault => prop_assert!(false, "mapped page faulted"),
                }
            }
        }
    }
}

//! A parameterised set-associative cache simulator with LRU/FIFO
//! replacement, plus the address-breakdown helpers behind "memory
//! encoding" questions (tag/index/offset widths).

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used.
    Lru,
    /// First-in-first-out.
    Fifo,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Ways per set (1 = direct-mapped).
    pub associativity: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

/// Error constructing a cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadGeometryError(String);

impl fmt::Display for BadGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry: {}", self.0)
    }
}

impl std::error::Error for BadGeometryError {}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / self.associativity
    }

    /// Bits of block offset.
    pub fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// Bits of set index.
    pub fn index_bits(&self) -> u32 {
        self.num_sets().trailing_zeros()
    }

    /// Bits of tag for an `addr_bits`-bit address space.
    pub fn tag_bits(&self, addr_bits: u32) -> u32 {
        addr_bits - self.index_bits() - self.offset_bits()
    }

    fn validate(&self) -> Result<(), BadGeometryError> {
        let check = |cond: bool, msg: &str| {
            if cond {
                Ok(())
            } else {
                Err(BadGeometryError(msg.to_string()))
            }
        };
        check(
            self.block_bytes.is_power_of_two(),
            "block size not a power of two",
        )?;
        check(self.size_bytes.is_power_of_two(), "size not a power of two")?;
        check(self.associativity >= 1, "associativity must be at least 1")?;
        check(
            self.size_bytes >= self.block_bytes * self.associativity,
            "capacity smaller than one set",
        )?;
        check(
            (self.size_bytes / self.block_bytes / self.associativity).is_power_of_two(),
            "set count not a power of two",
        )?;
        Ok(())
    }
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions caused by capacity/conflict.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Average memory access time given hit latency and miss penalty (in
    /// cycles).
    pub fn amat(&self, hit_cycles: f64, miss_penalty: f64) -> f64 {
        hit_cycles + self.miss_rate() * miss_penalty
    }
}

/// A set-associative cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    // per-set queue of tags: front = replacement victim order
    sets: Vec<VecDeque<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Errors
    ///
    /// [`BadGeometryError`] when sizes are not powers of two or the
    /// capacity can't hold one full set.
    pub fn new(config: CacheConfig) -> Result<Self, BadGeometryError> {
        config.validate()?;
        let sets = vec![VecDeque::new(); config.num_sets() as usize];
        Ok(Cache {
            config,
            sets,
            stats: CacheStats::default(),
        })
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let block = addr / self.config.block_bytes;
        let set_idx = (block % self.config.num_sets()) as usize;
        let tag = block / self.config.num_sets();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            self.stats.hits += 1;
            if self.config.replacement == Replacement::Lru {
                // move to MRU position (back)
                set.remove(pos);
                set.push_back(tag);
            }
            true
        } else {
            self.stats.misses += 1;
            if set.len() as u64 == self.config.associativity {
                set.pop_front();
                self.stats.evictions += 1;
            }
            set.push_back(tag);
            false
        }
    }

    /// Runs a full address trace and returns the stats.
    pub fn run_trace(&mut self, addrs: &[u64]) -> CacheStats {
        for &a in addrs {
            self.access(a);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, block: u64, ways: u64) -> CacheConfig {
        CacheConfig {
            size_bytes: size,
            block_bytes: block,
            associativity: ways,
            replacement: Replacement::Lru,
        }
    }

    #[test]
    fn address_breakdown() {
        // 32 KiB, 64 B blocks, 4-way: 128 sets -> 7 index bits, 6 offset.
        let c = cfg(32 * 1024, 64, 4);
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.offset_bits(), 6);
        assert_eq!(c.index_bits(), 7);
        assert_eq!(c.tag_bits(32), 19);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(cfg(1024, 64, 2)).unwrap();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x104)); // same block
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        // two blocks mapping to the same set thrash a direct-mapped cache
        let mut dm = Cache::new(cfg(1024, 64, 1)).unwrap();
        let sets = dm.config().num_sets();
        let a = 0u64;
        let b = sets * 64; // same index, different tag
        for _ in 0..10 {
            dm.access(a);
            dm.access(b);
        }
        assert_eq!(dm.stats().hits, 0, "ping-pong conflict misses");
        // a 2-way cache holds both
        let mut two = Cache::new(cfg(1024, 64, 2)).unwrap();
        for _ in 0..10 {
            two.access(a);
            two.access(b);
        }
        assert_eq!(two.stats().misses, 2);
    }

    #[test]
    fn lru_vs_fifo_distinguishable() {
        // Access pattern where LRU keeps the re-referenced block but FIFO
        // evicts it: A B A C A — 2-way set.
        let pattern = |repl| {
            let mut c = Cache::new(CacheConfig {
                replacement: repl,
                ..cfg(128, 64, 2)
            })
            .unwrap();
            let s = c.config().num_sets();
            let (a, b, d) = (0, s * 64, 2 * s * 64);
            c.access(a);
            c.access(b);
            c.access(a); // LRU refreshes A; FIFO does not
            c.access(d); // evicts B (LRU) or A (FIFO)
            c.access(a)
        };
        assert!(pattern(Replacement::Lru), "LRU keeps A");
        assert!(!pattern(Replacement::Fifo), "FIFO evicted A");
    }

    #[test]
    fn streaming_misses_every_block() {
        let mut c = Cache::new(cfg(4096, 64, 4)).unwrap();
        let trace: Vec<u64> = (0..1000u64).map(|i| i * 64 * 2).collect();
        let stats = c.run_trace(&trace);
        assert_eq!(stats.misses, 1000);
        assert!((stats.amat(1.0, 100.0) - 101.0).abs() < 1e-9);
    }

    #[test]
    fn bad_geometry_rejected() {
        assert!(Cache::new(cfg(1000, 64, 1)).is_err()); // size not pow2
        assert!(Cache::new(cfg(1024, 48, 1)).is_err()); // block not pow2
        assert!(Cache::new(cfg(64, 64, 4)).is_err()); // capacity < one set
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn stats_invariants(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
                let mut c = Cache::new(cfg(2048, 64, 2)).unwrap();
                let stats = c.run_trace(&addrs);
                prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
                prop_assert!(stats.evictions <= stats.misses);
            }

            #[test]
            fn bigger_cache_never_misses_more_under_lru(
                addrs in proptest::collection::vec(0u64..65_536, 1..400),
            ) {
                // LRU has the stack property for fully-associative caches.
                let small = CacheConfig {
                    size_bytes: 512, block_bytes: 64,
                    associativity: 8, replacement: Replacement::Lru,
                };
                let big = CacheConfig {
                    size_bytes: 1024, block_bytes: 64,
                    associativity: 16, replacement: Replacement::Lru,
                };
                let s = Cache::new(small).unwrap().run_trace(&addrs);
                let b = Cache::new(big).unwrap().run_trace(&addrs);
                prop_assert!(b.misses <= s.misses);
            }
        }
    }
}

//! A tiny RISC instruction set for the pipeline and predictor models.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An architectural register (`x0`..`x31`-style; `Reg(0)` is a normal
/// register here, not hard-wired zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `rd = ra + rb`
    Add {
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = ra - rb`
    Sub {
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = mem[ra + offset]`
    Load {
        /// Destination.
        rd: Reg,
        /// Address base.
        ra: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// `mem[ra + offset] = rs`
    Store {
        /// Value source.
        rs: Reg,
        /// Address base.
        ra: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Branch if `ra == rb` (resolution modelled in EX).
    Beq {
        /// First comparand.
        ra: Reg,
        /// Second comparand.
        rb: Reg,
        /// Relative target (instruction index delta).
        target: i32,
    },
    /// No operation.
    Nop,
}

impl Instr {
    /// Destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Add { rd, .. } | Instr::Sub { rd, .. } | Instr::Load { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Source registers read by this instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Instr::Add { ra, rb, .. } | Instr::Sub { ra, rb, .. } | Instr::Beq { ra, rb, .. } => {
                vec![*ra, *rb]
            }
            Instr::Load { ra, .. } => vec![*ra],
            Instr::Store { rs, ra, .. } => vec![*rs, *ra],
            Instr::Nop => Vec::new(),
        }
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Whether this is a branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Beq { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Add { rd, ra, rb } => write!(f, "add {rd}, {ra}, {rb}"),
            Instr::Sub { rd, ra, rb } => write!(f, "sub {rd}, {ra}, {rb}"),
            Instr::Load { rd, ra, offset } => write!(f, "ld {rd}, {offset}({ra})"),
            Instr::Store { rs, ra, offset } => write!(f, "st {rs}, {offset}({ra})"),
            Instr::Beq { ra, rb, target } => write!(f, "beq {ra}, {rb}, {target:+}"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

/// Fluent builder for short programs.
///
/// # Example
///
/// ```
/// use chipvqa_arch::isa::{program, Reg};
///
/// let prog = program()
///     .load(Reg(1), Reg(0), 8)
///     .add(Reg(2), Reg(1), Reg(1))
///     .store(Reg(2), Reg(0), 16)
///     .build();
/// assert_eq!(prog.len(), 3);
/// ```
pub fn program() -> ProgramBuilder {
    ProgramBuilder { instrs: Vec::new() }
}

/// Builder returned by [`program`].
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
}

impl ProgramBuilder {
    /// Appends an `add`.
    pub fn add(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.instrs.push(Instr::Add { rd, ra, rb });
        self
    }

    /// Appends a `sub`.
    pub fn sub(mut self, rd: Reg, ra: Reg, rb: Reg) -> Self {
        self.instrs.push(Instr::Sub { rd, ra, rb });
        self
    }

    /// Appends a load.
    pub fn load(mut self, rd: Reg, ra: Reg, offset: i32) -> Self {
        self.instrs.push(Instr::Load { rd, ra, offset });
        self
    }

    /// Appends a store.
    pub fn store(mut self, rs: Reg, ra: Reg, offset: i32) -> Self {
        self.instrs.push(Instr::Store { rs, ra, offset });
        self
    }

    /// Appends a `beq`.
    pub fn beq(mut self, ra: Reg, rb: Reg, target: i32) -> Self {
        self.instrs.push(Instr::Beq { ra, rb, target });
        self
    }

    /// Appends a `nop`.
    pub fn nop(mut self) -> Self {
        self.instrs.push(Instr::Nop);
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Vec<Instr> {
        self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_and_sources() {
        let i = Instr::Add {
            rd: Reg(3),
            ra: Reg(1),
            rb: Reg(2),
        };
        assert_eq!(i.dest(), Some(Reg(3)));
        assert_eq!(i.sources(), vec![Reg(1), Reg(2)]);
        let s = Instr::Store {
            rs: Reg(5),
            ra: Reg(6),
            offset: 0,
        };
        assert_eq!(s.dest(), None);
        assert!(s.sources().contains(&Reg(5)));
    }

    #[test]
    fn builder_produces_program() {
        let p = program()
            .load(Reg(1), Reg(0), 0)
            .add(Reg(2), Reg(1), Reg(1))
            .beq(Reg(2), Reg(0), -2)
            .nop()
            .build();
        assert_eq!(p.len(), 4);
        assert!(p[2].is_branch());
        assert!(p[0].is_load());
    }

    #[test]
    fn display_formats() {
        let i = Instr::Load {
            rd: Reg(1),
            ra: Reg(2),
            offset: 4,
        };
        assert_eq!(i.to_string(), "ld r1, 4(r2)");
    }
}

//! Branch predictors: static, 1-bit, 2-bit saturating and gshare.

use serde::{Deserialize, Serialize};

/// A branch outcome stream element.
pub type Taken = bool;

/// A dynamic branch predictor.
pub trait Predictor {
    /// Predicts the outcome of the branch at `pc`.
    fn predict(&self, pc: u64) -> Taken;
    /// Trains with the actual outcome.
    fn update(&mut self, pc: u64, taken: Taken);
    /// Human-readable name.
    fn name(&self) -> &'static str;
}

/// Always predicts one fixed direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticPredictor {
    /// The fixed prediction.
    pub taken: bool,
}

impl Predictor for StaticPredictor {
    fn predict(&self, _pc: u64) -> Taken {
        self.taken
    }
    fn update(&mut self, _pc: u64, _taken: Taken) {}
    fn name(&self) -> &'static str {
        if self.taken {
            "always-taken"
        } else {
            "always-not-taken"
        }
    }
}

/// 1-bit last-outcome predictor with a direct-mapped table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneBitPredictor {
    table: Vec<bool>,
}

impl OneBitPredictor {
    /// Creates a predictor with `entries` table slots (rounded up to a
    /// power of two).
    pub fn new(entries: usize) -> Self {
        OneBitPredictor {
            table: vec![false; entries.next_power_of_two().max(1)],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.table.len() - 1)
    }
}

impl Predictor for OneBitPredictor {
    fn predict(&self, pc: u64) -> Taken {
        self.table[self.index(pc)]
    }
    fn update(&mut self, pc: u64, taken: Taken) {
        let i = self.index(pc);
        self.table[i] = taken;
    }
    fn name(&self) -> &'static str {
        "1-bit"
    }
}

/// 2-bit saturating-counter predictor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoBitPredictor {
    table: Vec<u8>, // 0..=3; >=2 predicts taken
}

impl TwoBitPredictor {
    /// Creates a predictor with `entries` counters initialised to weakly
    /// not-taken (01).
    pub fn new(entries: usize) -> Self {
        TwoBitPredictor {
            table: vec![1; entries.next_power_of_two().max(1)],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.table.len() - 1)
    }
}

impl Predictor for TwoBitPredictor {
    fn predict(&self, pc: u64) -> Taken {
        self.table[self.index(pc)] >= 2
    }
    fn update(&mut self, pc: u64, taken: Taken) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
    fn name(&self) -> &'static str {
        "2-bit"
    }
}

/// Gshare: global history XOR pc indexes a 2-bit counter table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GsharePredictor {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` counters and
    /// `history_bits` bits of global history.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        GsharePredictor {
            table: vec![1; entries.next_power_of_two().max(2)],
            history: 0,
            history_bits: history_bits.min(24),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = self.table.len() - 1;
        ((pc ^ self.history) as usize) & mask
    }
}

impl Predictor for GsharePredictor {
    fn predict(&self, pc: u64) -> Taken {
        self.table[self.index(pc)] >= 2
    }
    fn update(&mut self, pc: u64, taken: Taken) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & ((1u64 << self.history_bits) - 1);
    }
    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// Runs a predictor over a `(pc, taken)` trace, returning the prediction
/// accuracy in `[0, 1]`.
pub fn accuracy<P: Predictor>(pred: &mut P, trace: &[(u64, Taken)]) -> f64 {
    if trace.is_empty() {
        return 1.0;
    }
    let mut hits = 0usize;
    for &(pc, taken) in trace {
        if pred.predict(pc) == taken {
            hits += 1;
        }
        pred.update(pc, taken);
    }
    hits as f64 / trace.len() as f64
}

/// Generates the classic loop-branch trace: `iters` iterations of a loop
/// executed `trips` times (taken `iters-1` times then not-taken, at a
/// fixed pc).
pub fn loop_trace(pc: u64, iters: usize, trips: usize) -> Vec<(u64, Taken)> {
    let mut t = Vec::with_capacity(iters * trips);
    for _ in 0..trips {
        for i in 0..iters {
            t.push((pc, i + 1 < iters));
        }
    }
    t
}

/// Generates an alternating-pattern trace correlated with a second branch
/// (defeats per-pc predictors, rewards global history).
pub fn correlated_trace(len: usize) -> Vec<(u64, Taken)> {
    // Branch A alternates; branch B equals the last outcome of A.
    let mut t = Vec::with_capacity(len * 2);
    let mut a = false;
    for _ in 0..len {
        a = !a;
        t.push((0x40, a));
        t.push((0x80, a));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_predictor_on_biased_trace() {
        let trace = loop_trace(0x10, 10, 20);
        let acc = accuracy(&mut StaticPredictor { taken: true }, &trace);
        assert!((acc - 0.9).abs() < 1e-9, "{acc}");
    }

    #[test]
    fn one_bit_double_misprediction_on_loops() {
        // 1-bit mispredicts twice per trip (last iteration + first of the
        // next trip): accuracy = 1 - 2/iters for long runs.
        let trace = loop_trace(0x10, 10, 100);
        let acc = accuracy(&mut OneBitPredictor::new(16), &trace);
        assert!((acc - 0.8).abs() < 0.02, "{acc}");
    }

    #[test]
    fn two_bit_single_misprediction_on_loops() {
        let trace = loop_trace(0x10, 10, 100);
        let acc = accuracy(&mut TwoBitPredictor::new(16), &trace);
        assert!(acc > 0.88, "{acc}");
        // strictly better than 1-bit on the same trace
        let one = accuracy(&mut OneBitPredictor::new(16), &trace);
        assert!(acc > one);
    }

    #[test]
    fn gshare_learns_correlation() {
        let trace = correlated_trace(500);
        let g = accuracy(&mut GsharePredictor::new(1024, 8), &trace);
        let two = accuracy(&mut TwoBitPredictor::new(1024), &trace);
        assert!(g > 0.9, "gshare {g}");
        assert!(two < 0.6, "2-bit can't learn alternation: {two}");
    }

    #[test]
    fn empty_trace_is_vacuously_perfect() {
        assert_eq!(accuracy(&mut TwoBitPredictor::new(4), &[]), 1.0);
    }

    #[test]
    fn table_aliasing_is_harmless_for_indexing() {
        let mut p = TwoBitPredictor::new(3); // rounds to 4
        p.update(0, true);
        p.update(4, true); // aliases with 0
        assert!(p.predict(0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn accuracy_bounded(outcomes in proptest::collection::vec(any::<bool>(), 1..200)) {
                let trace: Vec<(u64, bool)> =
                    outcomes.iter().enumerate().map(|(i, &t)| ((i % 7) as u64, t)).collect();
                for acc in [
                    accuracy(&mut OneBitPredictor::new(8), &trace),
                    accuracy(&mut TwoBitPredictor::new(8), &trace),
                    accuracy(&mut GsharePredictor::new(64, 6), &trace),
                ] {
                    prop_assert!((0.0..=1.0).contains(&acc));
                }
            }
        }
    }
}

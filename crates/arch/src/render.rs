//! Procedural drawings of architecture visuals: pipeline diagrams with
//! bypass arrows, address/cache layouts, MESI state diagrams and NoC
//! topologies.

use chipvqa_raster::{Annotated, Pixmap, Region, BLACK, GRAY};

use crate::cache::CacheConfig;
use crate::noc::Topology;
use crate::pipeline::ForwardingConfig;

const STROKE: i64 = 2;
const TEXT: i64 = 2;

/// Renders the 5-stage pipeline datapath with the enabled bypass paths
/// drawn as bold arrows (the paper's motivating Architecture example).
pub fn render_pipeline(cfg: ForwardingConfig) -> Annotated {
    let mut img = Pixmap::new(560, 240);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let stages = ["IF", "ID", "EX", "MEM", "WB"];
    let bw = 72i64;
    let bh = 48i64;
    let y = 80i64;
    let xs: Vec<i64> = (0..5).map(|i| 24 + i * (bw + 32)).collect();
    for (i, name) in stages.iter().enumerate() {
        img.draw_rect(xs[i], y, bw, bh, STROKE, BLACK);
        img.draw_text(xs[i] + 20, y + 16, name, TEXT, BLACK);
        if i + 1 < stages.len() {
            img.draw_arrow(xs[i] + bw, y + bh / 2, xs[i + 1], y + bh / 2, STROKE, BLACK);
        }
        marks.push((
            format!("{name} stage"),
            Region::new(xs[i] as usize, y as usize, bw as usize, bh as usize),
        ));
    }
    // Bypass arcs drawn above (EX->EX from EX/MEM latch) and below.
    if cfg.ex_to_ex {
        img.draw_polyline(
            &[
                (xs[2] + bw + 10, y),
                (xs[2] + bw + 10, y - 34),
                (xs[2] + bw / 2, y - 34),
            ],
            3,
            BLACK,
        );
        img.draw_arrow(xs[2] + bw / 2, y - 34, xs[2] + bw / 2, y - 2, 3, BLACK);
        img.draw_text(xs[2] - 10, y - 52, "EX-EX bypass", TEXT, BLACK);
        marks.push((
            "bold bypass path: EX/MEM latch back to ALU input".to_string(),
            Region::new((xs[2] - 12) as usize, (y - 56) as usize, 170, 56),
        ));
    }
    if cfg.mem_to_ex {
        img.draw_polyline(
            &[
                (xs[3] + bw + 10, y + bh),
                (xs[3] + bw + 10, y + bh + 36),
                (xs[2] + bw / 2, y + bh + 36),
            ],
            3,
            BLACK,
        );
        img.draw_arrow(
            xs[2] + bw / 2,
            y + bh + 36,
            xs[2] + bw / 2,
            y + bh + 2,
            3,
            BLACK,
        );
        img.draw_text(xs[2] - 10, y + bh + 44, "MEM-EX bypass", TEXT, BLACK);
        marks.push((
            "bold bypass path: load unit output to ALU input".to_string(),
            Region::new((xs[2] - 12) as usize, (y + bh + 2) as usize, 200, 60),
        ));
    }
    if cfg.mem_to_mem {
        img.draw_dashed_line(
            xs[4] + 10,
            y + bh / 2,
            xs[3] + bw / 2,
            y + bh - 2,
            2,
            GRAY,
            4,
            3,
        );
        marks.push((
            "MEM-MEM store-data forwarding path".to_string(),
            Region::new(xs[3] as usize, (y + bh / 2) as usize, 120, 30),
        ));
    }
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders the tag/index/offset breakdown of an address for a cache
/// geometry (the "memory encoding" visual).
pub fn render_address_breakdown(cfg: CacheConfig, addr_bits: u32) -> Annotated {
    let mut img = Pixmap::new(520, 160);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let tag = cfg.tag_bits(addr_bits);
    let index = cfg.index_bits();
    let offset = cfg.offset_bits();
    let total = f64::from(addr_bits);
    let x0 = 30i64;
    let width = 440f64;
    let y = 60i64;
    let mut x = x0;
    for (name, bits) in [("TAG", tag), ("INDEX", index), ("OFFSET", offset)] {
        let w = (width * f64::from(bits) / total) as i64;
        img.draw_rect(x, y, w, 44, STROKE, BLACK);
        img.draw_text(x + 6, y + 8, name, TEXT, BLACK);
        img.draw_text(x + 6, y + 26, &format!("{bits}b"), TEXT, BLACK);
        marks.push((
            format!("{name} field: {bits} bits"),
            Region::new(x as usize, y as usize, w.max(20) as usize, 44),
        ));
        x += w;
    }
    img.draw_text(
        x0,
        20,
        &format!(
            "{}B cache, {}B blocks, {}-way",
            cfg.size_bytes, cfg.block_bytes, cfg.associativity
        ),
        TEXT,
        BLACK,
    );
    marks.push((
        "cache geometry caption".to_string(),
        Region::new(x0 as usize, 16, 400, 24),
    ));
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders the four-state MESI diagram with labelled transitions.
pub fn render_mesi_diagram() -> Annotated {
    let mut img = Pixmap::new(420, 340);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let centers = [
        ("M", 110i64, 80i64),
        ("E", 310, 80),
        ("S", 110, 250),
        ("I", 310, 250),
    ];
    for (name, cx, cy) in centers {
        img.draw_circle(cx, cy, 34, STROKE, BLACK);
        img.draw_text(cx - 5, cy - 6, name, 3, BLACK);
        marks.push((
            format!("state {name}"),
            Region::new((cx - 34) as usize, (cy - 34) as usize, 68, 68),
        ));
    }
    // a few canonical labelled edges
    img.draw_arrow(276, 80, 144, 80, STROKE, BLACK); // E -> M
    img.draw_text(180, 58, "PrWr", TEXT, BLACK);
    marks.push((
        "edge E->M on processor write (silent)".to_string(),
        Region::new(150, 54, 120, 30),
    ));
    img.draw_arrow(286, 226, 134, 104, STROKE, BLACK); // I -> M
    img.draw_text(196, 180, "PrWr/BusRdX", TEXT, BLACK);
    marks.push((
        "edge I->M on write miss (BusRdX)".to_string(),
        Region::new(190, 172, 160, 26),
    ));
    img.draw_arrow(110, 114, 110, 216, STROKE, BLACK); // M -> S
    img.draw_text(14, 160, "BusRd/Flush", TEXT, BLACK);
    marks.push((
        "edge M->S on snooped read (flush)".to_string(),
        Region::new(10, 152, 150, 26),
    ));
    img.draw_arrow(144, 250, 276, 250, STROKE, BLACK); // S -> I
    img.draw_text(180, 258, "BusRdX", TEXT, BLACK);
    marks.push((
        "edge S->I on remote write".to_string(),
        Region::new(174, 252, 100, 26),
    ));
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders a topology as a node/link diagram (meshes and tori draw as
/// grids, rings as circles, hypercubes as two nested squares, crossbars as
/// a bipartite fan).
pub fn render_topology(t: Topology) -> Annotated {
    let mut img = Pixmap::new(420, 360);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let node = |img: &mut Pixmap, x: i64, y: i64| {
        img.fill_circle(x, y, 7, BLACK);
    };
    match t {
        Topology::Mesh { w, h } | Topology::Torus { w, h } => {
            let step = 64i64;
            let (ox, oy) = (60i64, 60i64);
            for r in 0..h as i64 {
                for c in 0..w as i64 {
                    let (x, y) = (ox + c * step, oy + r * step);
                    if c + 1 < w as i64 {
                        img.draw_line(x, y, x + step, y, STROKE, BLACK);
                    }
                    if r + 1 < h as i64 {
                        img.draw_line(x, y, x, y + step, STROKE, BLACK);
                    }
                    node(&mut img, x, y);
                }
            }
            if matches!(t, Topology::Torus { .. }) {
                for r in 0..h as i64 {
                    img.draw_dashed_line(
                        ox,
                        oy + r * step,
                        ox + (w as i64 - 1) * step,
                        oy + r * step - 16,
                        1,
                        GRAY,
                        3,
                        3,
                    );
                }
                marks.push((
                    "wrap-around links (torus)".to_string(),
                    Region::new(40, 20, 340, 40),
                ));
            }
            marks.push((
                format!("{}x{} grid of routers", w, h),
                Region::new(40, 40, 360, 300),
            ));
        }
        Topology::Ring { n } => {
            let (cx, cy, r) = (210i64, 180i64, 120f64);
            let pos = |i: usize| -> (i64, i64) {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (cx + (r * a.cos()) as i64, cy + (r * a.sin()) as i64)
            };
            for i in 0..n {
                let (x0, y0) = pos(i);
                let (x1, y1) = pos((i + 1) % n);
                img.draw_line(x0, y0, x1, y1, STROKE, BLACK);
                node(&mut img, x0, y0);
            }
            marks.push((format!("ring of {n} nodes"), Region::new(60, 40, 300, 280)));
        }
        Topology::Hypercube { d } => {
            // draw the d=3 projection (two squares + struts); higher d
            // falls back to the same projection with a caption.
            let inner = [(150i64, 130i64), (270, 130), (270, 250), (150, 250)];
            let outer = [(90i64, 70i64), (330, 70), (330, 310), (90, 310)];
            for k in 0..4 {
                let (a, b) = (inner[k], inner[(k + 1) % 4]);
                img.draw_line(a.0, a.1, b.0, b.1, STROKE, BLACK);
                let (c, e) = (outer[k], outer[(k + 1) % 4]);
                img.draw_line(c.0, c.1, e.0, e.1, STROKE, BLACK);
                img.draw_line(a.0, a.1, c.0, c.1, STROKE, BLACK);
                node(&mut img, a.0, a.1);
                node(&mut img, c.0, c.1);
            }
            img.draw_text(100, 20, &format!("{d}-cube"), TEXT, BLACK);
            marks.push((
                format!("hypercube dimension {d}"),
                Region::new(80, 14, 120, 28),
            ));
        }
        Topology::Crossbar { n } => {
            for i in 0..n.min(8) as i64 {
                let y = 40 + i * 36;
                img.draw_line(40, y, 380, y, STROKE, BLACK);
                img.draw_line(60 + i * 40, 20, 60 + i * 40, 340, STROKE, BLACK);
                node(&mut img, 60 + i * 40, y);
            }
            marks.push((format!("{n}x{n} crossbar"), Region::new(30, 10, 360, 330)));
        }
    }
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Replacement;

    #[test]
    fn pipeline_bypass_arrows_marked() {
        let vis = render_pipeline(ForwardingConfig::full());
        assert!(vis
            .marks
            .iter()
            .any(|m| m.label.contains("load unit output")));
        assert!(vis.marks.iter().any(|m| m.label.contains("EX stage")));
        let bare = render_pipeline(ForwardingConfig::none());
        assert!(bare.marks.iter().all(|m| !m.label.contains("bypass")));
        assert!(vis.image.ink_pixels() > bare.image.ink_pixels());
    }

    #[test]
    fn address_breakdown_fields_sum() {
        let cfg = CacheConfig {
            size_bytes: 32 * 1024,
            block_bytes: 64,
            associativity: 4,
            replacement: Replacement::Lru,
        };
        let vis = render_address_breakdown(cfg, 32);
        assert!(vis
            .marks
            .iter()
            .any(|m| m.label.contains("TAG field: 19 bits")));
        assert!(vis
            .marks
            .iter()
            .any(|m| m.label.contains("INDEX field: 7 bits")));
        assert!(vis
            .marks
            .iter()
            .any(|m| m.label.contains("OFFSET field: 6 bits")));
    }

    #[test]
    fn mesi_diagram_has_four_states() {
        let vis = render_mesi_diagram();
        for s in ["state M", "state E", "state S", "state I"] {
            assert!(vis.marks.iter().any(|m| m.label == s), "{s}");
        }
    }

    #[test]
    fn topologies_render() {
        for t in [
            Topology::Mesh { w: 4, h: 4 },
            Topology::Torus { w: 4, h: 4 },
            Topology::Ring { n: 8 },
            Topology::Hypercube { d: 3 },
            Topology::Crossbar { n: 6 },
        ] {
            let vis = render_topology(t);
            assert!(vis.image.ink_pixels() > 100, "{t:?}");
            assert!(!vis.marks.is_empty(), "{t:?}");
        }
    }
}

//! The MESI cache-coherence protocol: the per-line state machine and a
//! multi-cache snooping-bus simulation.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// MESI line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mesi {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole clean copy.
    Exclusive,
    /// Shared: clean, possibly other copies.
    Shared,
    /// Invalid.
    Invalid,
}

impl fmt::Display for Mesi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mesi::Modified => "M",
            Mesi::Exclusive => "E",
            Mesi::Shared => "S",
            Mesi::Invalid => "I",
        })
    }
}

/// Processor-side events on a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuOp {
    /// Local read.
    Read,
    /// Local write.
    Write,
}

/// Bus (snooped) events on a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusOp {
    /// Another cache reads (BusRd).
    BusRd,
    /// Another cache reads-for-ownership (BusRdX).
    BusRdX,
}

/// What a transition does on the bus / memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// No bus traffic.
    None,
    /// Issue BusRd (read miss).
    IssueBusRd,
    /// Issue BusRdX (write miss / upgrade).
    IssueBusRdX,
    /// Flush the dirty line to memory (writeback).
    Flush,
}

/// CPU-side MESI transition: next state and the bus action the cache must
/// take. `others_have_copy` tells a read miss whether to load Exclusive or
/// Shared.
pub fn cpu_transition(state: Mesi, op: CpuOp, others_have_copy: bool) -> (Mesi, Action) {
    use Action::*;
    use Mesi::*;
    match (state, op) {
        (Modified, _) => (Modified, None),
        (Exclusive, CpuOp::Read) => (Exclusive, None),
        (Exclusive, CpuOp::Write) => (Modified, None), // silent upgrade
        (Shared, CpuOp::Read) => (Shared, None),
        (Shared, CpuOp::Write) => (Modified, IssueBusRdX),
        (Invalid, CpuOp::Read) => {
            if others_have_copy {
                (Shared, IssueBusRd)
            } else {
                (Exclusive, IssueBusRd)
            }
        }
        (Invalid, CpuOp::Write) => (Modified, IssueBusRdX),
    }
}

/// Snoop-side MESI transition: next state and any flush required.
pub fn snoop_transition(state: Mesi, op: BusOp) -> (Mesi, Action) {
    use Action::*;
    use Mesi::*;
    match (state, op) {
        (Modified, BusOp::BusRd) => (Shared, Flush),
        (Modified, BusOp::BusRdX) => (Invalid, Flush),
        (Exclusive, BusOp::BusRd) => (Shared, None),
        (Exclusive, BusOp::BusRdX) => (Invalid, None),
        (Shared, BusOp::BusRd) => (Shared, None),
        (Shared, BusOp::BusRdX) => (Invalid, None),
        (Invalid, _) => (Invalid, None),
    }
}

/// A multi-core system of private caches on a snooping bus, tracking one
/// state per (core, line).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BusSystem {
    cores: usize,
    lines: HashMap<(usize, u64), Mesi>,
    /// Writebacks (flushes) performed.
    pub flushes: u64,
    /// Bus transactions issued.
    pub bus_transactions: u64,
    /// Invalidation messages delivered.
    pub invalidations: u64,
}

impl BusSystem {
    /// Creates a system with `cores` private caches.
    pub fn new(cores: usize) -> Self {
        BusSystem {
            cores,
            ..BusSystem::default()
        }
    }

    /// Current state of `line` in `core`'s cache.
    pub fn state(&self, core: usize, line: u64) -> Mesi {
        self.lines
            .get(&(core, line))
            .copied()
            .unwrap_or(Mesi::Invalid)
    }

    /// Performs a processor access and propagates snoops.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, line: u64, op: CpuOp) {
        assert!(core < self.cores, "core index out of range");
        let others_have_copy =
            (0..self.cores).any(|c| c != core && self.state(c, line) != Mesi::Invalid);
        let (next, action) = cpu_transition(self.state(core, line), op, others_have_copy);
        match action {
            Action::IssueBusRd => {
                self.bus_transactions += 1;
                for c in 0..self.cores {
                    if c == core {
                        continue;
                    }
                    let (s, a) = snoop_transition(self.state(c, line), BusOp::BusRd);
                    if a == Action::Flush {
                        self.flushes += 1;
                    }
                    self.lines.insert((c, line), s);
                }
            }
            Action::IssueBusRdX => {
                self.bus_transactions += 1;
                for c in 0..self.cores {
                    if c == core {
                        continue;
                    }
                    let before = self.state(c, line);
                    let (s, a) = snoop_transition(before, BusOp::BusRdX);
                    if a == Action::Flush {
                        self.flushes += 1;
                    }
                    if before != Mesi::Invalid {
                        self.invalidations += 1;
                    }
                    self.lines.insert((c, line), s);
                }
            }
            Action::Flush => self.flushes += 1,
            Action::None => {}
        }
        self.lines.insert((core, line), next);
    }

    /// Protocol invariant: at most one M/E copy, and M/E excludes any
    /// other valid copy.
    pub fn check_invariants(&self) -> bool {
        let mut by_line: HashMap<u64, Vec<Mesi>> = HashMap::new();
        for (&(_, line), &s) in &self.lines {
            by_line.entry(line).or_default().push(s);
        }
        by_line.values().all(|states| {
            let exclusive_like = states
                .iter()
                .filter(|s| matches!(s, Mesi::Modified | Mesi::Exclusive))
                .count();
            let valid = states.iter().filter(|s| **s != Mesi::Invalid).count();
            exclusive_like <= 1 && (exclusive_like == 0 || valid == 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_miss_alone_loads_exclusive() {
        let mut sys = BusSystem::new(2);
        sys.access(0, 0x40, CpuOp::Read);
        assert_eq!(sys.state(0, 0x40), Mesi::Exclusive);
        assert_eq!(sys.bus_transactions, 1);
    }

    #[test]
    fn second_reader_demotes_to_shared() {
        let mut sys = BusSystem::new(2);
        sys.access(0, 0x40, CpuOp::Read);
        sys.access(1, 0x40, CpuOp::Read);
        assert_eq!(sys.state(0, 0x40), Mesi::Shared);
        assert_eq!(sys.state(1, 0x40), Mesi::Shared);
    }

    #[test]
    fn silent_exclusive_to_modified_upgrade() {
        let mut sys = BusSystem::new(2);
        sys.access(0, 0x40, CpuOp::Read);
        let before = sys.bus_transactions;
        sys.access(0, 0x40, CpuOp::Write);
        assert_eq!(sys.state(0, 0x40), Mesi::Modified);
        assert_eq!(sys.bus_transactions, before, "E->M is silent");
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut sys = BusSystem::new(4);
        for c in 0..4 {
            sys.access(c, 0x80, CpuOp::Read);
        }
        sys.access(0, 0x80, CpuOp::Write);
        assert_eq!(sys.state(0, 0x80), Mesi::Modified);
        for c in 1..4 {
            assert_eq!(sys.state(c, 0x80), Mesi::Invalid);
        }
        assert_eq!(sys.invalidations, 3);
    }

    #[test]
    fn dirty_line_flushes_on_remote_read() {
        let mut sys = BusSystem::new(2);
        sys.access(0, 0xC0, CpuOp::Write); // M in core 0
        sys.access(1, 0xC0, CpuOp::Read);
        assert_eq!(sys.flushes, 1);
        assert_eq!(sys.state(0, 0xC0), Mesi::Shared);
        assert_eq!(sys.state(1, 0xC0), Mesi::Shared);
    }

    #[test]
    fn ping_pong_write_sharing_costs_bus_traffic() {
        let mut sys = BusSystem::new(2);
        for i in 0..10 {
            sys.access(i % 2, 0x100, CpuOp::Write);
        }
        // every write after the first invalidates the other copy
        assert!(sys.invalidations >= 9);
        assert!(sys.flushes >= 9, "dirty hand-offs flush each time");
    }

    #[test]
    fn transition_table_spot_checks() {
        assert_eq!(
            cpu_transition(Mesi::Shared, CpuOp::Write, true),
            (Mesi::Modified, Action::IssueBusRdX)
        );
        assert_eq!(
            snoop_transition(Mesi::Modified, BusOp::BusRd),
            (Mesi::Shared, Action::Flush)
        );
        assert_eq!(
            snoop_transition(Mesi::Invalid, BusOp::BusRdX),
            (Mesi::Invalid, Action::None)
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn invariants_hold_over_random_traces(
                ops in proptest::collection::vec((0usize..4, 0u64..4, any::<bool>()), 1..300),
            ) {
                let mut sys = BusSystem::new(4);
                for (core, line, write) in ops {
                    let op = if write { CpuOp::Write } else { CpuOp::Read };
                    sys.access(core, line * 64, op);
                    prop_assert!(sys.check_invariants(), "invariant violated");
                }
            }
        }
    }
}

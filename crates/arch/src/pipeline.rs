//! A classic 5-stage in-order pipeline (IF–ID–EX–MEM–WB) with
//! configurable forwarding paths, stall accounting and a cycle-time
//! model.
//!
//! The model answers ChipVQA-style questions like *"a bolded bypass path
//! connects the load unit output to the ALU input — how does it affect
//! CPI and frequency?"* by actually running programs under different
//! [`ForwardingConfig`]s: bypasses reduce stall cycles (CPI ↓) but add
//! mux/wire delay to the cycle time (frequency ↓), and the crossover is a
//! measurable property of the workload.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::isa::{Instr, Reg};

/// Which forwarding (bypass) paths exist in the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingConfig {
    /// EX/MEM → EX: ALU result usable by the immediately following
    /// instruction.
    pub ex_to_ex: bool,
    /// MEM/WB → EX: load data (and older ALU results) usable with one
    /// bubble.
    pub mem_to_ex: bool,
    /// MEM/WB → MEM: load data forwarded directly to a dependent store's
    /// memory stage.
    pub mem_to_mem: bool,
}

impl ForwardingConfig {
    /// All paths present (the standard fully-bypassed pipeline).
    pub fn full() -> Self {
        ForwardingConfig {
            ex_to_ex: true,
            mem_to_ex: true,
            mem_to_mem: true,
        }
    }

    /// No forwarding: values only through the register file
    /// (write-first-half / read-second-half).
    pub fn none() -> Self {
        ForwardingConfig {
            ex_to_ex: false,
            mem_to_ex: false,
            mem_to_mem: false,
        }
    }

    /// Cycle time in nanoseconds: a 1.0 ns base stage delay plus the
    /// mux/wire cost of every enabled bypass. These are the "frequency
    /// side" of the bypass trade-off.
    pub fn cycle_time_ns(&self) -> f64 {
        let mut t = 1.0;
        if self.ex_to_ex {
            t += 0.05;
        }
        if self.mem_to_ex {
            t += 0.08;
        }
        if self.mem_to_mem {
            t += 0.03;
        }
        t
    }

    /// Clock frequency in GHz implied by [`Self::cycle_time_ns`].
    pub fn frequency_ghz(&self) -> f64 {
        1.0 / self.cycle_time_ns()
    }
}

impl Default for ForwardingConfig {
    fn default() -> Self {
        ForwardingConfig::full()
    }
}

/// Timing and architectural outcome of running a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total cycles from first fetch to last write-back.
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// Stall cycles charged to data hazards (including load-use).
    pub data_stalls: u64,
    /// Bubbles injected by taken branches (2 per taken branch, EX
    /// resolution).
    pub control_bubbles: u64,
    /// Final register file.
    pub regs: Vec<i64>,
    /// Final memory contents (address → value).
    pub memory: BTreeMap<i64, i64>,
}

impl RunResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions.max(1) as f64
    }

    /// Wall-clock execution time under `cfg`'s cycle time, in ns.
    pub fn execution_time_ns(&self, cfg: ForwardingConfig) -> f64 {
        self.cycles as f64 * cfg.cycle_time_ns()
    }
}

/// What kind of producer wrote a register (affects when the value is
/// forwardable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProducerKind {
    Alu,
    Load,
}

/// The pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pipeline {
    config: ForwardingConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given bypass configuration.
    pub fn new(config: ForwardingConfig) -> Self {
        Pipeline { config }
    }

    /// The bypass configuration.
    pub fn config(&self) -> ForwardingConfig {
        self.config
    }

    /// Runs `prog` with default initial state: `regs[i] = i`, empty
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if execution exceeds 100 000 dynamic instructions (runaway
    /// loop guard).
    pub fn run(&self, prog: &[Instr]) -> RunResult {
        let regs: Vec<i64> = (0..32).collect();
        self.run_with_state(prog, regs, BTreeMap::new())
    }

    /// Runs with explicit initial registers and memory.
    ///
    /// Branches are resolved in EX with predict-not-taken, costing two
    /// bubbles when taken. The register file is written in the first half
    /// of WB and read in the second half of ID.
    ///
    /// # Panics
    ///
    /// Panics if `regs.len() != 32` or execution exceeds 100 000 dynamic
    /// instructions.
    pub fn run_with_state(
        &self,
        prog: &[Instr],
        mut regs: Vec<i64>,
        mut memory: BTreeMap<i64, i64>,
    ) -> RunResult {
        assert_eq!(regs.len(), 32, "register file must have 32 entries");
        let cfg = self.config;
        let mut pc: i64 = 0;
        let mut retired = 0u64;
        let mut data_stalls = 0u64;
        let mut control_bubbles = 0u64;
        // EX-stage cycle of the previous instruction; first instr reaches
        // EX in cycle 3 (IF=1, ID=2, EX=3).
        let mut prev_ex: u64 = 2;
        let mut last_ex: u64 = 2;
        // Per-register producer info: (kind, ex cycle of producer).
        let mut producer: Vec<Option<(ProducerKind, u64)>> = vec![None; 32];
        // Earliest cycle the next fetch group may reach EX (raised by
        // taken-branch redirects).
        let mut redirect_floor: u64 = 3;

        while (0..prog.len() as i64).contains(&pc) {
            assert!(retired < 100_000, "dynamic instruction limit exceeded");
            let instr = prog[pc as usize];
            let earliest = (prev_ex + 1).max(redirect_floor);
            let mut ex = earliest;

            // Data hazards on each source.
            for src in instr.sources() {
                let Some((kind, p_ex)) = producer[src.0 as usize] else {
                    continue;
                };
                // Stores consume their data register late (at MEM) when a
                // MEM→MEM path exists.
                let is_store_data = instr.is_store()
                    && matches!(instr, Instr::Store { rs, .. } if rs == src)
                    && cfg.mem_to_mem;
                let ready_ex = match kind {
                    ProducerKind::Alu => {
                        if cfg.ex_to_ex {
                            p_ex + 1
                        } else if cfg.mem_to_ex {
                            p_ex + 2
                        } else {
                            p_ex + 3
                        }
                    }
                    ProducerKind::Load => {
                        if is_store_data {
                            p_ex + 1
                        } else if cfg.mem_to_ex {
                            p_ex + 2
                        } else {
                            p_ex + 3
                        }
                    }
                };
                ex = ex.max(ready_ex);
            }
            data_stalls += ex - earliest;

            // Functional execution.
            let r = |reg: Reg| regs[reg.0 as usize];
            let mut next_pc = pc + 1;
            match instr {
                Instr::Add { rd, ra, rb } => {
                    regs[rd.0 as usize] = r(ra).wrapping_add(r(rb));
                    producer[rd.0 as usize] = Some((ProducerKind::Alu, ex));
                }
                Instr::Sub { rd, ra, rb } => {
                    regs[rd.0 as usize] = r(ra).wrapping_sub(r(rb));
                    producer[rd.0 as usize] = Some((ProducerKind::Alu, ex));
                }
                Instr::Load { rd, ra, offset } => {
                    let addr = r(ra) + i64::from(offset);
                    regs[rd.0 as usize] = memory.get(&addr).copied().unwrap_or(0);
                    producer[rd.0 as usize] = Some((ProducerKind::Load, ex));
                }
                Instr::Store { rs, ra, offset } => {
                    let addr = r(ra) + i64::from(offset);
                    memory.insert(addr, r(rs));
                }
                Instr::Beq { ra, rb, target } => {
                    if r(ra) == r(rb) {
                        next_pc = pc + i64::from(target);
                        control_bubbles += 2;
                        redirect_floor = ex + 3; // IF/ID of the redirect
                    }
                }
                Instr::Nop => {}
            }

            retired += 1;
            prev_ex = ex;
            last_ex = ex;
            pc = next_pc;
        }

        RunResult {
            cycles: last_ex + 2, // MEM + WB after the last EX
            instructions: retired,
            data_stalls,
            control_bubbles,
            regs,
            memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{program, Reg};

    fn independent_program(n: usize) -> Vec<Instr> {
        let mut b = program();
        for i in 0..n {
            let d = ((i % 8) + 8) as u8;
            b = b.add(Reg(d), Reg(1), Reg(2));
        }
        b.build()
    }

    #[test]
    fn ideal_cpi_approaches_one() {
        let prog = independent_program(100);
        let res = Pipeline::new(ForwardingConfig::full()).run(&prog);
        assert_eq!(res.data_stalls, 0);
        assert!(res.cpi() < 1.1, "cpi {}", res.cpi());
        // cycles = n + 4 for a 5-stage pipe
        assert_eq!(res.cycles, 104);
    }

    #[test]
    fn back_to_back_alu_dependency() {
        let prog = program()
            .add(Reg(1), Reg(2), Reg(3))
            .add(Reg(4), Reg(1), Reg(1))
            .build();
        let full = Pipeline::new(ForwardingConfig::full()).run(&prog);
        assert_eq!(full.data_stalls, 0);
        let none = Pipeline::new(ForwardingConfig::none()).run(&prog);
        assert_eq!(none.data_stalls, 2); // wait for WB/ID overlap
    }

    #[test]
    fn load_use_needs_one_bubble_even_with_full_forwarding() {
        let prog = program()
            .load(Reg(1), Reg(0), 0)
            .add(Reg(2), Reg(1), Reg(1))
            .build();
        let full = Pipeline::new(ForwardingConfig::full()).run(&prog);
        assert_eq!(full.data_stalls, 1);
        // Without forwarding the value still reaches the consumer through
        // the WB-first-half / ID-second-half register file: 2 bubbles.
        let none = Pipeline::new(ForwardingConfig::none()).run(&prog);
        assert_eq!(none.data_stalls, 2);
    }

    #[test]
    fn mem_to_mem_helps_load_then_store() {
        let prog = program()
            .load(Reg(1), Reg(0), 0)
            .store(Reg(1), Reg(2), 8)
            .build();
        let with = Pipeline::new(ForwardingConfig::full()).run(&prog);
        assert_eq!(with.data_stalls, 0, "store data arrives via MEM->MEM");
        let without = Pipeline::new(ForwardingConfig {
            mem_to_mem: false,
            ..ForwardingConfig::full()
        })
        .run(&prog);
        assert_eq!(without.data_stalls, 1);
    }

    #[test]
    fn taken_branch_costs_two_bubbles() {
        // beq r0,r0 always taken, skipping one instruction.
        let prog = program()
            .beq(Reg(0), Reg(0), 2)
            .add(Reg(1), Reg(1), Reg(1)) // skipped
            .add(Reg(2), Reg(1), Reg(1))
            .build();
        let res = Pipeline::new(ForwardingConfig::full()).run(&prog);
        assert_eq!(res.control_bubbles, 2);
        assert_eq!(res.instructions, 2);
    }

    #[test]
    fn functional_correctness_loop() {
        // r1 = 5; loop: r1 -= 1 via sub; branch back while r1 != 0.
        // Use regs preset: r1 starts at 1 (default regs[i]=i), r2=2.
        // Compute r3 = r1 + r2 = 3, store to memory.
        let prog = program()
            .add(Reg(3), Reg(1), Reg(2))
            .store(Reg(3), Reg(0), 100)
            .build();
        let res = Pipeline::new(ForwardingConfig::full()).run(&prog);
        assert_eq!(res.memory.get(&100), Some(&3));
        assert_eq!(res.regs[3], 3);
    }

    #[test]
    fn bypass_tradeoff_cpi_vs_frequency() {
        // A dependent chain loves bypasses; CPI improves but cycle time
        // worsens. On a chain-heavy program bypassing still wins overall.
        let mut b = program();
        for _ in 0..50 {
            b = b.add(Reg(1), Reg(1), Reg(2));
        }
        let prog = b.build();
        let full_cfg = ForwardingConfig::full();
        let none_cfg = ForwardingConfig::none();
        let full = Pipeline::new(full_cfg).run(&prog);
        let none = Pipeline::new(none_cfg).run(&prog);
        assert!(full.cpi() < none.cpi());
        assert!(full_cfg.cycle_time_ns() > none_cfg.cycle_time_ns());
        assert!(full.execution_time_ns(full_cfg) < none.execution_time_ns(none_cfg));
    }

    #[test]
    fn independent_code_prefers_no_bypass_clock() {
        // With zero hazards, the bypass-free design is strictly faster in
        // wall clock (same cycles, shorter cycle time) — the crossover the
        // paper's bypass question probes.
        let prog = independent_program(200);
        let full_cfg = ForwardingConfig::full();
        let none_cfg = ForwardingConfig::none();
        let full = Pipeline::new(full_cfg).run(&prog);
        let none = Pipeline::new(none_cfg).run(&prog);
        assert_eq!(full.cycles, none.cycles);
        assert!(none.execution_time_ns(none_cfg) < full.execution_time_ns(full_cfg));
    }

    #[test]
    #[should_panic(expected = "limit exceeded")]
    fn infinite_loop_guard() {
        let prog = program().beq(Reg(0), Reg(0), 0).build();
        let _ = Pipeline::new(ForwardingConfig::full()).run(&prog);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn more_forwarding_never_increases_cycles(
                seed_ops in proptest::collection::vec(0u8..4, 1..40),
            ) {
                // Build a random straight-line program.
                let mut b = program();
                for (i, op) in seed_ops.iter().enumerate() {
                    let d = Reg((i % 8 + 8) as u8);
                    let s1 = Reg((i % 10) as u8);
                    let s2 = Reg(((i * 3) % 12) as u8);
                    b = match op {
                        0 => b.add(d, s1, s2),
                        1 => b.sub(d, s1, s2),
                        2 => b.load(d, s1, 4),
                        _ => b.store(s1, s2, 8),
                    };
                }
                let prog = b.build();
                let full = Pipeline::new(ForwardingConfig::full()).run(&prog);
                let none = Pipeline::new(ForwardingConfig::none()).run(&prog);
                prop_assert!(full.cycles <= none.cycles);
                prop_assert_eq!(full.regs.clone(), none.regs.clone(),
                    "forwarding must not change architectural state");
                prop_assert_eq!(full.memory, none.memory);
            }
        }
    }
}

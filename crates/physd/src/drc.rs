//! Design-rule checking: minimum width and spacing over rectangle sets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geom::Rect;

/// A layer's design rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignRules {
    /// Minimum feature width (both axes).
    pub min_width: i64,
    /// Minimum spacing between distinct shapes.
    pub min_spacing: i64,
}

/// A single DRC violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Shape narrower than the minimum width.
    Width {
        /// Index of the offending shape.
        shape: usize,
        /// Measured width.
        measured: i64,
        /// Required width.
        required: i64,
    },
    /// Two shapes closer than the minimum spacing.
    Spacing {
        /// First shape index.
        a: usize,
        /// Second shape index.
        b: usize,
        /// Measured spacing.
        measured: i64,
        /// Required spacing.
        required: i64,
    },
    /// Two shapes overlap (short).
    Overlap {
        /// First shape index.
        a: usize,
        /// Second shape index.
        b: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Width {
                shape,
                measured,
                required,
            } => write!(f, "shape {shape}: width {measured} < {required}"),
            Violation::Spacing {
                a,
                b,
                measured,
                required,
            } => write!(f, "shapes {a},{b}: spacing {measured} < {required}"),
            Violation::Overlap { a, b } => write!(f, "shapes {a},{b}: overlap"),
        }
    }
}

/// Checks all shapes on one layer against the rules. Overlapping shapes
/// report [`Violation::Overlap`]; distinct shapes closer than
/// `min_spacing` report [`Violation::Spacing`].
pub fn check_layer(shapes: &[Rect], rules: DesignRules) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (i, r) in shapes.iter().enumerate() {
        let measured = r.width().min(r.height());
        if measured < rules.min_width {
            violations.push(Violation::Width {
                shape: i,
                measured,
                required: rules.min_width,
            });
        }
    }
    for i in 0..shapes.len() {
        for j in i + 1..shapes.len() {
            if shapes[i].overlaps(&shapes[j]) {
                violations.push(Violation::Overlap { a: i, b: j });
            } else {
                let s = shapes[i].spacing(&shapes[j]);
                if s < rules.min_spacing {
                    violations.push(Violation::Spacing {
                        a: i,
                        b: j,
                        measured: s,
                        required: rules.min_spacing,
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: DesignRules = DesignRules {
        min_width: 4,
        min_spacing: 3,
    };

    #[test]
    fn clean_layout_passes() {
        let shapes = [Rect::new(0, 0, 10, 10), Rect::new(20, 0, 30, 10)];
        assert!(check_layer(&shapes, RULES).is_empty());
    }

    #[test]
    fn narrow_shape_flagged() {
        let shapes = [Rect::new(0, 0, 2, 20)];
        let v = check_layer(&shapes, RULES);
        assert!(matches!(
            v[0],
            Violation::Width {
                measured: 2,
                required: 4,
                ..
            }
        ));
    }

    #[test]
    fn close_shapes_flagged() {
        let shapes = [Rect::new(0, 0, 10, 10), Rect::new(12, 0, 22, 10)];
        let v = check_layer(&shapes, RULES);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Spacing { measured: 2, .. }));
    }

    #[test]
    fn overlap_is_distinct_from_spacing() {
        let shapes = [Rect::new(0, 0, 10, 10), Rect::new(5, 5, 15, 15)];
        let v = check_layer(&shapes, RULES);
        assert!(v.iter().any(|x| matches!(x, Violation::Overlap { .. })));
    }

    #[test]
    fn exact_rule_distances_pass() {
        let shapes = [Rect::new(0, 0, 4, 10), Rect::new(7, 0, 11, 10)];
        assert!(check_layer(&shapes, RULES).is_empty());
    }

    #[test]
    fn violations_reference_correct_shapes() {
        let shapes = [
            Rect::new(0, 0, 10, 10),
            Rect::new(40, 40, 50, 50),
            Rect::new(11, 0, 21, 10), // 1 apart from shape 0
        ];
        let v = check_layer(&shapes, RULES);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Spacing { a: 0, b: 2, .. }));
    }
}

//! Nets and wirelength estimates.

use serde::{Deserialize, Serialize};

use crate::geom::{Point, Rect};

/// A net: a named set of pin locations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Pin locations.
    pub pins: Vec<Point>,
}

impl Net {
    /// Creates a net.
    pub fn new(name: impl Into<String>, pins: Vec<Point>) -> Self {
        Net {
            name: name.into(),
            pins,
        }
    }

    /// Half-perimeter wirelength (HPWL) — the standard placement
    /// objective. Zero for nets with fewer than two pins.
    pub fn hpwl(&self) -> i64 {
        match Rect::bounding(&self.pins) {
            Some(bb) if self.pins.len() >= 2 => bb.half_perimeter(),
            _ => 0,
        }
    }
}

/// Total HPWL over a netlist.
pub fn total_hpwl(nets: &[Net]) -> i64 {
    nets.iter().map(Net::hpwl).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpwl_of_two_pin_net_is_manhattan() {
        let n = Net::new("a", vec![Point::new(0, 0), Point::new(7, 3)]);
        assert_eq!(n.hpwl(), 10);
    }

    #[test]
    fn hpwl_of_multi_pin_is_bbox() {
        let n = Net::new(
            "b",
            vec![Point::new(0, 0), Point::new(4, 9), Point::new(2, 2)],
        );
        assert_eq!(n.hpwl(), 13);
    }

    #[test]
    fn degenerate_nets() {
        assert_eq!(Net::new("c", vec![]).hpwl(), 0);
        assert_eq!(Net::new("d", vec![Point::new(3, 3)]).hpwl(), 0);
    }

    #[test]
    fn total_sums() {
        let nets = vec![
            Net::new("a", vec![Point::new(0, 0), Point::new(1, 1)]),
            Net::new("b", vec![Point::new(0, 0), Point::new(2, 0)]),
        ];
        assert_eq!(total_hpwl(&nets), 4);
    }
}

//! Standard-cell legalization: an abacus/Tetris-style pass that snaps
//! cells into rows without overlap while minimising displacement.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geom::Point;

/// A standard cell with a global (possibly illegal) position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Cell width in sites.
    pub width: i64,
    /// Global-placement location (x in sites, y in row units).
    pub target: Point,
}

/// Row-based placement region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRegion {
    /// Number of rows.
    pub rows: i64,
    /// Sites per row.
    pub sites_per_row: i64,
}

/// A legalized cell: assigned row and site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedCell {
    /// Instance name.
    pub name: String,
    /// Width in sites.
    pub width: i64,
    /// Legal location.
    pub location: Point,
    /// Manhattan displacement from the global location.
    pub displacement: i64,
}

/// Error legalizing a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Total cell area exceeds region capacity.
    Overfull {
        /// Sites demanded.
        demand: i64,
        /// Sites available.
        capacity: i64,
    },
    /// A single cell is wider than a row.
    CellTooWide {
        /// The offending cell name.
        name: String,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Overfull { demand, capacity } => {
                write!(f, "placement demands {demand} sites, region has {capacity}")
            }
            PlaceError::CellTooWide { name } => write!(f, "cell {name} wider than a row"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// Legalizes `cells` into `region` greedily: cells sorted by x, each
/// packed into the nearest row with space at the closest legal site.
///
/// # Errors
///
/// [`PlaceError::Overfull`] when the cells cannot fit,
/// [`PlaceError::CellTooWide`] when any single cell exceeds the row
/// width.
pub fn legalize(cells: &[Cell], region: PlacementRegion) -> Result<Vec<PlacedCell>, PlaceError> {
    let demand: i64 = cells.iter().map(|c| c.width).sum();
    let capacity = region.rows * region.sites_per_row;
    if demand > capacity {
        return Err(PlaceError::Overfull { demand, capacity });
    }
    if let Some(c) = cells.iter().find(|c| c.width > region.sites_per_row) {
        return Err(PlaceError::CellTooWide {
            name: c.name.clone(),
        });
    }
    // Sort left-to-right (classic Tetris order).
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by_key(|&i| (cells[i].target.x, cells[i].target.y));
    // Per-row fill pointer (next free site).
    let mut fill = vec![0i64; region.rows as usize];
    let mut placed = Vec::with_capacity(cells.len());
    for &i in &order {
        let cell = &cells[i];
        // choose the row minimising displacement given the row's current
        // fill pointer
        let mut best: Option<(i64, i64, i64)> = None; // (cost, row, x)
        for row in 0..region.rows {
            if fill[row as usize] + cell.width > region.sites_per_row {
                continue;
            }
            let x = cell
                .target
                .x
                .clamp(fill[row as usize], region.sites_per_row - cell.width)
                .max(fill[row as usize]);
            let cost = (x - cell.target.x).abs() + (row - cell.target.y).abs();
            if best.is_none_or(|(bc, _, _)| cost < bc) {
                best = Some((cost, row, x));
            }
        }
        let (cost, row, x) = best.ok_or(PlaceError::Overfull { demand, capacity })?;
        fill[row as usize] = x + cell.width;
        placed.push(PlacedCell {
            name: cell.name.clone(),
            width: cell.width,
            location: Point::new(x, row),
            displacement: cost,
        });
    }
    Ok(placed)
}

/// Total displacement of a legalized placement.
pub fn total_displacement(placed: &[PlacedCell]) -> i64 {
    placed.iter().map(|p| p.displacement).sum()
}

/// Checks that no two cells in the same row overlap.
pub fn check_no_overlap(placed: &[PlacedCell]) -> bool {
    let mut by_row: std::collections::HashMap<i64, Vec<(i64, i64)>> =
        std::collections::HashMap::new();
    for p in placed {
        by_row
            .entry(p.location.y)
            .or_default()
            .push((p.location.x, p.location.x + p.width));
    }
    by_row.values_mut().all(|spans| {
        spans.sort();
        spans.windows(2).all(|w| w[0].1 <= w[1].0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, width: i64, x: i64, y: i64) -> Cell {
        Cell {
            name: name.into(),
            width,
            target: Point::new(x, y),
        }
    }

    fn region() -> PlacementRegion {
        PlacementRegion {
            rows: 4,
            sites_per_row: 20,
        }
    }

    #[test]
    fn already_legal_placement_is_unmoved() {
        let cells = vec![cell("a", 4, 0, 0), cell("b", 4, 10, 1)];
        let placed = legalize(&cells, region()).unwrap();
        assert_eq!(total_displacement(&placed), 0);
        assert!(check_no_overlap(&placed));
    }

    #[test]
    fn overlapping_cells_are_separated() {
        let cells = vec![cell("a", 6, 5, 0), cell("b", 6, 5, 0), cell("c", 6, 5, 0)];
        let placed = legalize(&cells, region()).unwrap();
        assert!(check_no_overlap(&placed));
        assert!(total_displacement(&placed) > 0);
    }

    #[test]
    fn overfull_region_rejected() {
        let cells = vec![cell("a", 20, 0, 0); 5];
        assert!(matches!(
            legalize(&cells, region()),
            Err(PlaceError::Overfull { .. })
        ));
    }

    #[test]
    fn too_wide_cell_rejected() {
        let cells = vec![cell("a", 25, 0, 0)];
        assert!(matches!(
            legalize(&cells, region()),
            Err(PlaceError::CellTooWide { .. })
        ));
    }

    #[test]
    fn cells_clamp_into_row_bounds() {
        let cells = vec![cell("edge", 5, 18, 0)];
        let placed = legalize(&cells, region()).unwrap();
        assert!(placed[0].location.x + placed[0].width <= 20);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn legalized_placements_never_overlap(
                specs in proptest::collection::vec((1i64..6, 0i64..20, 0i64..4), 1..16),
            ) {
                let cells: Vec<Cell> = specs
                    .iter()
                    .enumerate()
                    .map(|(i, &(w, x, y))| cell(&format!("c{i}"), w, x, y))
                    .collect();
                if let Ok(placed) = legalize(&cells, region()) {
                    prop_assert!(check_no_overlap(&placed));
                    prop_assert_eq!(placed.len(), cells.len());
                    for p in &placed {
                        prop_assert!(p.location.x >= 0);
                        prop_assert!(p.location.x + p.width <= 20);
                        prop_assert!((0..4).contains(&p.location.y));
                    }
                }
            }
        }
    }
}

//! Buffer insertion on a wire path under the Elmore delay model — a
//! van-Ginneken-style optimisation restricted to a single source-to-sink
//! route (choose which legal stations get buffers to minimise delay).

use serde::{Deserialize, Serialize};

/// Electrical parameters of the wire and buffer library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferLibrary {
    /// Wire resistance per unit length (ohm/unit).
    pub r_wire: f64,
    /// Wire capacitance per unit length (farad/unit).
    pub c_wire: f64,
    /// Buffer output resistance (ohm).
    pub r_buf: f64,
    /// Buffer input capacitance (farad).
    pub c_buf: f64,
    /// Buffer intrinsic delay (seconds).
    pub t_buf: f64,
    /// Driver output resistance (ohm).
    pub r_drv: f64,
    /// Sink input capacitance (farad).
    pub c_sink: f64,
}

impl BufferLibrary {
    /// A representative 45nm-ish library in SI units (kilo-ohms,
    /// femto-farads, picoseconds territory).
    pub fn nominal() -> Self {
        BufferLibrary {
            r_wire: 1.0,     // ohm / um
            c_wire: 0.2e-15, // F / um
            r_buf: 1_000.0,
            c_buf: 1.0e-15,
            t_buf: 20.0e-12,
            r_drv: 1_000.0,
            c_sink: 2.0e-15,
        }
    }
}

/// Elmore delay of one unbuffered segment of length `len` driven by
/// `r_source` into `c_load`:
/// `r_source (c_w·len + c_load) + r_w·len (c_w·len/2 + c_load)`.
pub fn segment_delay(lib: &BufferLibrary, r_source: f64, len: f64, c_load: f64) -> f64 {
    let cw = lib.c_wire * len;
    let rw = lib.r_wire * len;
    r_source * (cw + c_load) + rw * (cw / 2.0 + c_load)
}

/// Delay of a route of length `total` with buffers at the given
/// positions (sorted, in `(0, total)`): a chain of segments, each stage
/// loaded by the next buffer's input (or the sink).
pub fn buffered_delay(lib: &BufferLibrary, total: f64, buffer_positions: &[f64]) -> f64 {
    let mut stations: Vec<f64> = vec![0.0];
    stations.extend(buffer_positions.iter().copied());
    stations.push(total);
    let mut delay = 0.0;
    for (stage, pair) in stations.windows(2).enumerate() {
        let len = pair[1] - pair[0];
        let first = stage == 0;
        let last = stage + 2 == stations.len();
        let r_source = if first { lib.r_drv } else { lib.r_buf };
        let c_load = if last { lib.c_sink } else { lib.c_buf };
        delay += segment_delay(lib, r_source, len, c_load);
        if !first {
            delay += lib.t_buf;
        }
    }
    delay
}

/// Result of the buffering optimisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferingPlan {
    /// Chosen buffer positions along the route.
    pub positions: Vec<f64>,
    /// Resulting Elmore delay (seconds).
    pub delay: f64,
    /// The unbuffered delay for comparison.
    pub unbuffered_delay: f64,
}

impl BufferingPlan {
    /// Speedup over the unbuffered wire.
    pub fn speedup(&self) -> f64 {
        self.unbuffered_delay / self.delay.max(1e-30)
    }
}

/// Chooses the optimal subset of `stations` (legal buffer locations
/// along a route of length `total`) to minimise Elmore delay, by dynamic
/// programming over stations (the single-path van Ginneken recurrence).
///
/// # Panics
///
/// Panics if `total <= 0` or any station lies outside `(0, total)`.
pub fn insert_buffers(lib: &BufferLibrary, total: f64, stations: &[f64]) -> BufferingPlan {
    assert!(total > 0.0, "route length must be positive");
    let mut sts: Vec<f64> = stations.to_vec();
    sts.sort_by(|a, b| a.partial_cmp(b).expect("finite positions"));
    for &s in &sts {
        assert!(s > 0.0 && s < total, "station {s} outside the route");
    }
    let unbuffered = buffered_delay(lib, total, &[]);

    // DP over subsets is exponential; over stations it's O(n^2): best[i]
    // = min delay from station i (with a buffer AT i) to the sink.
    // Implemented back-to-front; then try each choice of first buffer.
    let n = sts.len();
    let mut best_from: Vec<(f64, Vec<f64>)> = vec![(0.0, Vec::new()); n];
    for i in (0..n).rev() {
        // option A: last buffer — drive the sink directly
        let direct = lib.t_buf + segment_delay(lib, lib.r_buf, total - sts[i], lib.c_sink);
        let mut best = (direct, vec![sts[i]]);
        // option B: next buffer at j
        for j in i + 1..n {
            let seg = lib.t_buf + segment_delay(lib, lib.r_buf, sts[j] - sts[i], lib.c_buf);
            let cand = seg + best_from[j].0;
            if cand < best.0 {
                let mut positions = vec![sts[i]];
                positions.extend(best_from[j].1.iter().copied());
                best = (cand, positions);
            }
        }
        best_from[i] = best;
    }

    // choose the first buffer (or none)
    let mut best_plan = BufferingPlan {
        positions: Vec::new(),
        delay: unbuffered,
        unbuffered_delay: unbuffered,
    };
    for i in 0..n {
        let head = segment_delay(lib, lib.r_drv, sts[i], lib.c_buf);
        let delay = head + best_from[i].0;
        if delay < best_plan.delay {
            best_plan = BufferingPlan {
                positions: best_from[i].1.clone(),
                delay,
                unbuffered_delay: unbuffered,
            };
        }
    }
    best_plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> BufferLibrary {
        BufferLibrary::nominal()
    }

    #[test]
    fn unbuffered_delay_quadratic_in_length() {
        let l = lib();
        let d1 = buffered_delay(&l, 1_000.0, &[]);
        let d2 = buffered_delay(&l, 2_000.0, &[]);
        let d4 = buffered_delay(&l, 4_000.0, &[]);
        // wire-dominated growth is superlinear
        assert!(d2 / d1 > 1.8, "{}", d2 / d1);
        assert!(d4 / d2 > d2 / d1 * 0.9);
    }

    #[test]
    fn long_wire_wants_buffers() {
        let l = lib();
        let stations: Vec<f64> = (1..10).map(|i| f64::from(i) * 1_000.0).collect();
        let plan = insert_buffers(&l, 10_000.0, &stations);
        assert!(!plan.positions.is_empty(), "long wires need repeaters");
        assert!(plan.speedup() > 1.5, "speedup {}", plan.speedup());
    }

    #[test]
    fn short_wire_stays_unbuffered() {
        let l = lib();
        let plan = insert_buffers(&l, 50.0, &[25.0]);
        assert!(plan.positions.is_empty(), "{plan:?}");
        assert_eq!(plan.delay, plan.unbuffered_delay);
    }

    #[test]
    fn chosen_plan_matches_direct_evaluation() {
        let l = lib();
        let stations = [2_000.0, 4_000.0, 6_000.0, 8_000.0];
        let plan = insert_buffers(&l, 10_000.0, &stations);
        let check = buffered_delay(&l, 10_000.0, &plan.positions);
        assert!(
            (check - plan.delay).abs() < 1e-18,
            "{check} vs {}",
            plan.delay
        );
    }

    #[test]
    fn plan_is_optimal_over_subsets() {
        // brute-force all subsets of 4 stations and compare
        let l = lib();
        let total = 8_000.0;
        let stations = [1_500.0, 3_200.0, 5_000.0, 6_800.0];
        let plan = insert_buffers(&l, total, &stations);
        let mut best = buffered_delay(&l, total, &[]);
        for mask in 0u32..16 {
            let chosen: Vec<f64> = stations
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &s)| s)
                .collect();
            best = best.min(buffered_delay(&l, total, &chosen));
        }
        assert!(
            (plan.delay - best).abs() < 1e-18,
            "{} vs {best}",
            plan.delay
        );
    }

    #[test]
    #[should_panic(expected = "outside the route")]
    fn station_out_of_range_panics() {
        let _ = insert_buffers(&lib(), 100.0, &[150.0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn buffering_never_hurts(
                total_km in 1.0f64..20.0,
                fracs in proptest::collection::vec(0.05f64..0.95, 0..6),
            ) {
                let l = lib();
                let total = total_km * 1_000.0;
                let mut stations: Vec<f64> = fracs.iter().map(|f| f * total).collect();
                stations.sort_by(|a, b| a.partial_cmp(b).unwrap());
                stations.dedup();
                let plan = insert_buffers(&l, total, &stations);
                prop_assert!(plan.delay <= plan.unbuffered_delay + 1e-18);
                // and the reported delay is reproducible
                let check = buffered_delay(&l, total, &plan.positions);
                prop_assert!((check - plan.delay).abs() < 1e-15);
            }
        }
    }
}

//! Lee-algorithm maze routing: BFS wave propagation over a grid with
//! obstacles, returning shortest rectilinear paths.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geom::Point;

/// A routing grid with blocked cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    width: usize,
    height: usize,
    blocked: Vec<bool>,
}

/// Error routing on a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Source or target outside the grid or on an obstacle.
    BadTerminal,
    /// No path exists.
    Unreachable,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::BadTerminal => write!(f, "terminal outside grid or blocked"),
            RouteError::Unreachable => write!(f, "no route exists"),
        }
    }
}

impl std::error::Error for RouteError {}

impl Grid {
    /// Creates an empty (all-routable) grid.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        Grid {
            width,
            height,
            blocked: vec![false; width * height],
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Marks a cell as an obstacle. Out-of-range coordinates are ignored.
    pub fn block(&mut self, x: usize, y: usize) {
        if x < self.width && y < self.height {
            self.blocked[y * self.width + x] = true;
        }
    }

    /// Blocks a rectangular region (clipped to the grid).
    pub fn block_rect(&mut self, x: usize, y: usize, w: usize, h: usize) {
        for yy in y..(y + h).min(self.height) {
            for xx in x..(x + w).min(self.width) {
                self.blocked[yy * self.width + xx] = true;
            }
        }
    }

    /// Whether a cell is blocked (out-of-range counts as blocked).
    pub fn is_blocked(&self, x: usize, y: usize) -> bool {
        x >= self.width || y >= self.height || self.blocked[y * self.width + x]
    }

    /// Routes from `src` to `dst` with Lee BFS; returns the path
    /// (inclusive of both terminals).
    ///
    /// # Errors
    ///
    /// [`RouteError::BadTerminal`] for blocked/out-of-range terminals,
    /// [`RouteError::Unreachable`] when the wave never reaches `dst`.
    pub fn route(&self, src: Point, dst: Point) -> Result<Vec<Point>, RouteError> {
        let to_idx = |p: Point| -> Option<usize> {
            if p.x < 0 || p.y < 0 {
                return None;
            }
            let (x, y) = (p.x as usize, p.y as usize);
            if self.is_blocked(x, y) {
                None
            } else {
                Some(y * self.width + x)
            }
        };
        let s = to_idx(src).ok_or(RouteError::BadTerminal)?;
        let t = to_idx(dst).ok_or(RouteError::BadTerminal)?;
        let mut prev: Vec<Option<usize>> = vec![None; self.width * self.height];
        let mut seen = vec![false; self.width * self.height];
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(cur) = queue.pop_front() {
            if cur == t {
                break;
            }
            let (cx, cy) = (cur % self.width, cur / self.width);
            let neighbours = [
                (cx.wrapping_sub(1), cy),
                (cx + 1, cy),
                (cx, cy.wrapping_sub(1)),
                (cx, cy + 1),
            ];
            for (nx, ny) in neighbours {
                if self.is_blocked(nx, ny) {
                    continue;
                }
                let ni = ny * self.width + nx;
                if !seen[ni] {
                    seen[ni] = true;
                    prev[ni] = Some(cur);
                    queue.push_back(ni);
                }
            }
        }
        if !seen[t] {
            return Err(RouteError::Unreachable);
        }
        // backtrace
        let mut path = vec![t];
        while let Some(p) = prev[*path.last().expect("nonempty")] {
            path.push(p);
        }
        path.reverse();
        Ok(path
            .into_iter()
            .map(|i| Point::new((i % self.width) as i64, (i / self.width) as i64))
            .collect())
    }

    /// Shortest route length in grid steps, if routable.
    pub fn route_length(&self, src: Point, dst: Point) -> Result<usize, RouteError> {
        Ok(self.route(src, dst)?.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_route_matches_manhattan() {
        let g = Grid::new(20, 20);
        let len = g.route_length(Point::new(2, 3), Point::new(9, 7)).unwrap();
        assert_eq!(len, 11);
    }

    #[test]
    fn detours_around_obstacle() {
        let mut g = Grid::new(20, 20);
        // vertical wall with no gap between x=10 columns, y in 0..15
        g.block_rect(10, 0, 1, 15);
        let len = g.route_length(Point::new(5, 5), Point::new(15, 5)).unwrap();
        assert!(len > 10, "must detour: {len}");
        // detour via y=15: 2*(15-5) + 10 = 30
        assert_eq!(len, 30);
    }

    #[test]
    fn walled_off_is_unreachable() {
        let mut g = Grid::new(10, 10);
        g.block_rect(5, 0, 1, 10);
        assert_eq!(
            g.route(Point::new(0, 0), Point::new(9, 9)),
            Err(RouteError::Unreachable)
        );
    }

    #[test]
    fn blocked_terminal_rejected() {
        let mut g = Grid::new(10, 10);
        g.block(3, 3);
        assert_eq!(
            g.route(Point::new(3, 3), Point::new(0, 0)),
            Err(RouteError::BadTerminal)
        );
        assert_eq!(
            g.route(Point::new(0, 0), Point::new(50, 0)),
            Err(RouteError::BadTerminal)
        );
    }

    #[test]
    fn route_endpoints_and_continuity() {
        let mut g = Grid::new(16, 16);
        g.block_rect(4, 4, 8, 1);
        let path = g.route(Point::new(0, 0), Point::new(15, 15)).unwrap();
        assert_eq!(path.first(), Some(&Point::new(0, 0)));
        assert_eq!(path.last(), Some(&Point::new(15, 15)));
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1, "path must be 4-connected");
        }
    }

    #[test]
    fn self_route_is_empty_length() {
        let g = Grid::new(4, 4);
        assert_eq!(
            g.route_length(Point::new(1, 1), Point::new(1, 1)).unwrap(),
            0
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn route_never_shorter_than_manhattan(
                sx in 0i64..12, sy in 0i64..12,
                tx in 0i64..12, ty in 0i64..12,
                obstacles in proptest::collection::vec((0usize..12, 0usize..12), 0..20),
            ) {
                let mut g = Grid::new(12, 12);
                for (x, y) in obstacles {
                    if (x as i64, y as i64) != (sx, sy) && (x as i64, y as i64) != (tx, ty) {
                        g.block(x, y);
                    }
                }
                let (src, dst) = (Point::new(sx, sy), Point::new(tx, ty));
                if let Ok(len) = g.route_length(src, dst) {
                    prop_assert!(len as i64 >= src.manhattan(dst));
                }
            }
        }
    }
}

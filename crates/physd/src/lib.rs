//! Physical-design substrate for the ChipVQA reproduction.
//!
//! ChipVQA's Physical Design section spans clock trees, routing, standard
//! cells, DRC, placement/legalization, floorplanning and timing. The
//! paper's own example — *"the routing points' coordinates are shown; can
//! you calculate the routing costs for the 2 diagrams and determine which
//! routing topology has lower cost?"* — needs a real router and Steiner
//! tree engine to generate and judge. This crate supplies the stack:
//!
//! - [`geom`]: integer points/rectangles with Manhattan metrics;
//! - [`net`]: nets and half-perimeter wirelength;
//! - [`steiner`]: rectilinear spanning trees (Prim) and a Hanan-grid
//!   1-Steiner heuristic for RSMT;
//! - [`maze`]: Lee BFS maze routing with obstacles;
//! - [`cts`]: H-tree clock distribution, wirelength and skew under a
//!   linear delay model;
//! - [`sta`]: DAG static timing analysis with arrival/required/slack and
//!   useful-skew experiments;
//! - [`place`]: abacus-style row legalization with displacement metrics;
//! - [`drc`]: width/spacing design-rule checks over rectangle sets;
//! - [`floorplan`]: slicing-tree floorplanning with Stockmeyer shape
//!   curves;
//! - [`buffering`]: van-Ginneken-style buffer insertion under Elmore
//!   delay;
//! - [`render`]: layouts, annotated Steiner topologies, clock trees.
//!
//! # Example
//!
//! ```
//! use chipvqa_physd::geom::Point;
//! use chipvqa_physd::steiner::{rsmt_cost, rmst_cost};
//!
//! let pins = [Point::new(0, 0), Point::new(10, 0), Point::new(5, 8)];
//! // Steiner trees never cost more than spanning trees.
//! assert!(rsmt_cost(&pins) <= rmst_cost(&pins));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffering;
pub mod cts;
pub mod drc;
pub mod floorplan;
pub mod geom;
pub mod maze;
pub mod net;
pub mod place;
pub mod render;
pub mod sta;
pub mod steiner;

pub use geom::{Point, Rect};
pub use sta::TimingGraph;

//! Integer geometry: points and rectangles with Manhattan metrics.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An integer lattice point (database units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate.
    pub x: i64,
    /// Y coordinate.
    pub y: i64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to another point.
    pub fn manhattan(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[x1, x2) x [y1, y2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x1: i64,
    /// Bottom edge.
    pub y1: i64,
    /// Right edge (exclusive).
    pub x2: i64,
    /// Top edge (exclusive).
    pub y2: i64,
}

impl Rect {
    /// Creates a rectangle, normalising corner order.
    pub fn new(x1: i64, y1: i64, x2: i64, y2: i64) -> Self {
        Rect {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
        }
    }

    /// Width.
    pub fn width(&self) -> i64 {
        self.x2 - self.x1
    }

    /// Height.
    pub fn height(&self) -> i64 {
        self.y2 - self.y1
    }

    /// Area.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Whether two rectangles overlap (open intervals: touching edges do
    /// not overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x1 < other.x2 && other.x1 < self.x2 && self.y1 < other.y2 && other.y1 < self.y2
    }

    /// Minimum Manhattan separation between two non-overlapping
    /// rectangles (0 if they touch or overlap).
    pub fn spacing(&self, other: &Rect) -> i64 {
        let dx = (other.x1 - self.x2).max(self.x1 - other.x2).max(0);
        let dy = (other.y1 - self.y2).max(self.y1 - other.y2).max(0);
        // Euclidean-free conservative metric: corner-to-corner spacing is
        // checked with both components; DRC uses max-of-axis convention.
        dx.max(dy)
    }

    /// Whether `p` lies inside (half-open).
    pub fn contains(&self, p: Point) -> bool {
        (self.x1..self.x2).contains(&p.x) && (self.y1..self.y2).contains(&p.y)
    }

    /// Bounding box of a point set; `None` when empty.
    pub fn bounding(points: &[Point]) -> Option<Rect> {
        let first = points.first()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in points {
            r.x1 = r.x1.min(p.x);
            r.y1 = r.y1.min(p.y);
            r.x2 = r.x2.max(p.x);
            r.y2 = r.y2.max(p.y);
        }
        Some(r)
    }

    /// Half-perimeter of the rectangle.
    pub fn half_perimeter(&self) -> i64 {
        self.width() + self.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(0, 0).manhattan(Point::new(3, 4)), 7);
        assert_eq!(Point::new(-2, 5).manhattan(Point::new(-2, 5)), 0);
    }

    #[test]
    fn rect_normalises() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!((r.x1, r.y1, r.x2, r.y2), (0, 5, 10, 20));
        assert_eq!(r.area(), 150);
        assert_eq!(r.half_perimeter(), 25);
    }

    #[test]
    fn overlap_and_touching() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10); // touching edge
        let c = Rect::new(5, 5, 15, 15);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert_eq!(a.spacing(&b), 0);
    }

    #[test]
    fn spacing_between_separated_rects() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(15, 0, 25, 10);
        assert_eq!(a.spacing(&b), 5);
        let d = Rect::new(13, 14, 20, 20); // diagonal: dx=3, dy=4
        assert_eq!(a.spacing(&d), 4);
    }

    #[test]
    fn bounding_box() {
        let pts = [Point::new(2, 3), Point::new(-1, 7), Point::new(5, 0)];
        let bb = Rect::bounding(&pts).unwrap();
        assert_eq!((bb.x1, bb.y1, bb.x2, bb.y2), (-1, 0, 5, 7));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn contains_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(10, 5)));
    }
}

//! Procedural drawings of physical-design visuals: annotated routing
//! topologies (the paper's example question), cell layouts and clock
//! trees.

use chipvqa_raster::{Annotated, Pixmap, Region, BLACK, GRAY};

use crate::cts::ClockTree;
use crate::geom::{Point, Rect};
use crate::steiner::RouteTree;

const STROKE: i64 = 2;
const TEXT: i64 = 2;

fn scale_points(points: &[Point], w: usize, h: usize, margin: i64) -> impl Fn(Point) -> (i64, i64) {
    let bb = Rect::bounding(points).unwrap_or(Rect::new(0, 0, 1, 1));
    let sx = (w as i64 - 2 * margin) as f64 / bb.width().max(1) as f64;
    let sy = (h as i64 - 2 * margin) as f64 / bb.height().max(1) as f64;
    let s = sx.min(sy);
    move |p: Point| {
        (
            margin + ((p.x - bb.x1) as f64 * s) as i64,
            margin + ((p.y - bb.y1) as f64 * s) as i64,
        )
    }
}

/// Renders a routing tree with every pin's coordinates annotated — the
/// exact visual style of the paper's "which routing topology has lower
/// cost?" question. Steiner points draw as hollow squares.
pub fn render_route_tree(tree: &RouteTree, pins: &[Point], title: &str) -> Annotated {
    let (w, h) = (420usize, 360usize);
    let mut img = Pixmap::new(w, h);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let mut all: Vec<Point> = pins.to_vec();
    all.extend(tree.steiner_points.iter().copied());
    for e in &tree.edges {
        all.push(e.a);
        all.push(e.b);
    }
    if all.is_empty() {
        return Annotated::new(img);
    }
    let map = scale_points(&all, w, h - 40, 50);
    img.draw_text(10, 10, title, TEXT, BLACK);
    marks.push((format!("title {title}"), Region::new(8, 6, 200, 22)));

    for e in &tree.edges {
        let (x0, y0) = map(e.a);
        let (x1, y1) = map(e.b);
        // rectilinear elbow: horizontal then vertical
        img.draw_polyline(&[(x0, y0), (x1, y0), (x1, y1)], STROKE, BLACK);
    }
    for &p in pins {
        let (x, y) = map(p);
        img.fill_circle(x, y, 5, BLACK);
        let label = format!("({},{})", p.x, p.y);
        img.draw_text(x + 8, y - 16, &label, TEXT, BLACK);
        marks.push((
            format!("pin at {label}"),
            Region::new((x - 6).max(0) as usize, (y - 18).max(0) as usize, 90, 32),
        ));
    }
    for &sp in &tree.steiner_points {
        let (x, y) = map(sp);
        img.draw_rect(x - 5, y - 5, 10, 10, STROKE, BLACK);
        marks.push((
            format!("steiner point at ({},{})", sp.x, sp.y),
            Region::new((x - 7).max(0) as usize, (y - 7).max(0) as usize, 14, 14),
        ));
    }
    img.draw_text(
        10,
        (h - 26) as i64,
        &format!("total wirelength = {}", tree.cost()),
        TEXT,
        GRAY,
    );
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders two routing alternatives side by side (the paper's two-diagram
/// comparison). The wirelength captions are deliberately *omitted* so the
/// reader must compute costs from the annotated coordinates.
pub fn render_route_comparison(left: &RouteTree, right: &RouteTree, pins: &[Point]) -> Annotated {
    let single_l = render_route_tree_bare(left, pins, "topology A");
    let single_r = render_route_tree_bare(right, pins, "topology B");
    let w = single_l.image.width() + single_r.image.width();
    let h = single_l.image.height().max(single_r.image.height());
    let mut img = Pixmap::new(w, h);
    let mut out_marks = Vec::new();
    for (dx, vis) in [(0usize, &single_l), (single_l.image.width(), &single_r)] {
        for y in 0..vis.image.height() {
            for x in 0..vis.image.width() {
                img.set(
                    (x + dx) as i64,
                    y as i64,
                    vis.image.pixels()[y * vis.image.width() + x],
                );
            }
        }
        for m in &vis.marks {
            out_marks.push((
                m.label.clone(),
                Region::new(m.region.x + dx, m.region.y, m.region.w, m.region.h),
            ));
        }
    }
    let mut out = Annotated::new(img);
    for (label, region) in out_marks {
        out.mark(label, region);
    }
    out
}

fn render_route_tree_bare(tree: &RouteTree, pins: &[Point], title: &str) -> Annotated {
    let mut vis = render_route_tree(tree, pins, title);
    // strip the cost caption (bottom strip) so the answer isn't printed
    let h = vis.image.height();
    let w = vis.image.width();
    for y in (h - 32)..h {
        for x in 0..w {
            vis.image.set(x as i64, y as i64, chipvqa_raster::WHITE);
        }
    }
    vis
}

/// Renders a standard-cell layout (rows of labelled rectangles).
pub fn render_cell_layout(cells: &[(String, Rect)]) -> Annotated {
    let all: Vec<Point> = cells
        .iter()
        .flat_map(|(_, r)| [Point::new(r.x1, r.y1), Point::new(r.x2, r.y2)])
        .collect();
    let (w, h) = (460usize, 300usize);
    let mut img = Pixmap::new(w, h);
    let mut marks = Vec::new();
    if all.is_empty() {
        return Annotated::new(img);
    }
    let map = scale_points(&all, w, h, 30);
    for (name, r) in cells {
        let (x0, y0) = map(Point::new(r.x1, r.y1));
        let (x1, y1) = map(Point::new(r.x2, r.y2));
        img.draw_rect(x0, y0, (x1 - x0).max(8), (y1 - y0).max(8), STROKE, BLACK);
        img.draw_text(x0 + 4, y0 + 4, name, TEXT, BLACK);
        marks.push((
            format!("cell {name}"),
            Region::new(
                x0 as usize,
                y0 as usize,
                (x1 - x0).max(8) as usize,
                (y1 - y0).max(8) as usize,
            ),
        ));
    }
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

/// Renders a clock tree (segments plus sink dots; source as a filled
/// square).
pub fn render_clock_tree(tree: &ClockTree) -> Annotated {
    let mut all: Vec<Point> = vec![tree.source];
    for &(a, b) in &tree.segments {
        all.push(a);
        all.push(b);
    }
    for &(s, _) in &tree.sinks {
        all.push(s);
    }
    let (w, h) = (420usize, 380usize);
    let mut img = Pixmap::new(w, h);
    let mut marks = Vec::new();
    let map = scale_points(&all, w, h, 40);
    for &(a, b) in &tree.segments {
        let (x0, y0) = map(a);
        let (x1, y1) = map(b);
        img.draw_line(x0, y0, x1, y1, STROKE, BLACK);
    }
    let (sx, sy) = map(tree.source);
    img.fill_rect(sx - 6, sy - 6, 12, 12, BLACK);
    marks.push((
        "clock source driver".to_string(),
        Region::new((sx - 8).max(0) as usize, (sy - 8).max(0) as usize, 16, 16),
    ));
    for (i, &(s, len)) in tree.sinks.iter().enumerate() {
        let (x, y) = map(s);
        img.fill_circle(x, y, 4, BLACK);
        if i < 6 {
            marks.push((
                format!("sink {i} path length {len}"),
                Region::new((x - 6).max(0) as usize, (y - 6).max(0) as usize, 12, 12),
            ));
        }
    }
    let mut out = Annotated::new(img);
    for (label, region) in marks {
        out.mark(label, region);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cts::h_tree;
    use crate::steiner::{rsmt, star_tree};

    fn pins() -> Vec<Point> {
        vec![Point::new(0, 0), Point::new(10, 0), Point::new(5, 8)]
    }

    #[test]
    fn route_tree_marks_every_pin() {
        let tree = rsmt(&pins());
        let vis = render_route_tree(&tree, &pins(), "RSMT");
        assert!(vis.marks.iter().any(|m| m.label.contains("(5,8)")));
        assert!(vis.marks.iter().any(|m| m.label.contains("steiner point")));
        assert!(vis.image.ink_pixels() > 100);
    }

    #[test]
    fn comparison_carries_both_titles() {
        let a = rsmt(&pins());
        let b = star_tree(&pins());
        let vis = render_route_comparison(&a, &b, &pins());
        assert!(vis.marks.iter().any(|m| m.label.contains("topology A")));
        assert!(vis.marks.iter().any(|m| m.label.contains("topology B")));
    }

    #[test]
    fn layout_renders_cells() {
        let cells = vec![
            ("INV1".to_string(), Rect::new(0, 0, 10, 8)),
            ("NAND2".to_string(), Rect::new(12, 0, 26, 8)),
        ];
        let vis = render_cell_layout(&cells);
        assert_eq!(vis.marks.len(), 2);
    }

    #[test]
    fn clock_tree_renders_with_source_mark() {
        let tree = h_tree(Point::new(0, 0), 64, 2);
        let vis = render_clock_tree(&tree);
        assert!(vis.marks.iter().any(|m| m.label.contains("source")));
        assert!(vis.image.ink_pixels() > 200);
    }

    #[test]
    fn empty_tree_renders_blank() {
        let empty = RouteTree {
            edges: vec![],
            steiner_points: vec![],
        };
        let vis = render_route_tree(&empty, &[], "empty");
        assert_eq!(vis.marks.len(), 0);
    }
}

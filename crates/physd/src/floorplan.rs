//! Slicing-tree floorplanning with Stockmeyer shape curves: each module
//! carries a set of feasible (w, h) implementations; horizontal/vertical
//! cuts combine curves and the root curve's minimum-area corner is the
//! optimal floorplan for that slicing topology.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One feasible implementation shape of a module or subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Shape {
    /// Width in database units.
    pub w: i64,
    /// Height in database units.
    pub h: i64,
}

impl Shape {
    /// Creates a shape.
    pub fn new(w: i64, h: i64) -> Self {
        Shape { w, h }
    }

    /// Shape area.
    pub fn area(&self) -> i64 {
        self.w * self.h
    }
}

/// A slicing-tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlicingTree {
    /// A leaf module with its feasible shapes (e.g. both rotations).
    Module {
        /// Module name.
        name: String,
        /// Feasible implementations.
        shapes: Vec<Shape>,
    },
    /// Horizontal cut: children stacked vertically (widths max, heights
    /// add).
    HCut(Box<SlicingTree>, Box<SlicingTree>),
    /// Vertical cut: children side by side (widths add, heights max).
    VCut(Box<SlicingTree>, Box<SlicingTree>),
}

/// Error from floorplan evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptyShapesError(String);

impl fmt::Display for EmptyShapesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module {} has no feasible shapes", self.0)
    }
}

impl std::error::Error for EmptyShapesError {}

/// Removes dominated points: keeps only shapes where no other shape is
/// at most as wide *and* at most as tall.
fn prune(mut shapes: Vec<Shape>) -> Vec<Shape> {
    shapes.sort();
    shapes.dedup();
    // sorted by (w, h); sweep keeping strictly decreasing h
    let mut out: Vec<Shape> = Vec::new();
    for s in shapes {
        while let Some(last) = out.last() {
            if last.h >= s.h && last.w >= s.w {
                out.pop();
            } else {
                break;
            }
        }
        if out.last().is_none_or(|last| s.h < last.h) {
            out.push(s);
        }
    }
    out
}

impl SlicingTree {
    /// A leaf with both rotations of a `w x h` macro.
    pub fn module(name: impl Into<String>, w: i64, h: i64) -> SlicingTree {
        let mut shapes = vec![Shape::new(w, h)];
        if w != h {
            shapes.push(Shape::new(h, w));
        }
        SlicingTree::Module {
            name: name.into(),
            shapes,
        }
    }

    /// Horizontal composition (stacked).
    pub fn hcut(a: SlicingTree, b: SlicingTree) -> SlicingTree {
        SlicingTree::HCut(Box::new(a), Box::new(b))
    }

    /// Vertical composition (side by side).
    pub fn vcut(a: SlicingTree, b: SlicingTree) -> SlicingTree {
        SlicingTree::VCut(Box::new(a), Box::new(b))
    }

    /// The Stockmeyer shape curve of the subtree (Pareto-pruned).
    ///
    /// # Errors
    ///
    /// [`EmptyShapesError`] if any leaf has no feasible implementation.
    pub fn shape_curve(&self) -> Result<Vec<Shape>, EmptyShapesError> {
        match self {
            SlicingTree::Module { name, shapes } => {
                if shapes.is_empty() {
                    return Err(EmptyShapesError(name.clone()));
                }
                Ok(prune(shapes.clone()))
            }
            SlicingTree::HCut(a, b) | SlicingTree::VCut(a, b) => {
                let ca = a.shape_curve()?;
                let cb = b.shape_curve()?;
                let horizontal = matches!(self, SlicingTree::HCut(..));
                let mut combined = Vec::with_capacity(ca.len() * cb.len());
                for sa in &ca {
                    for sb in &cb {
                        combined.push(if horizontal {
                            Shape::new(sa.w.max(sb.w), sa.h + sb.h)
                        } else {
                            Shape::new(sa.w + sb.w, sa.h.max(sb.h))
                        });
                    }
                }
                Ok(prune(combined))
            }
        }
    }

    /// The minimum-area shape of the subtree.
    ///
    /// # Errors
    ///
    /// Propagates [`EmptyShapesError`].
    pub fn best_shape(&self) -> Result<Shape, EmptyShapesError> {
        let curve = self.shape_curve()?;
        Ok(curve
            .into_iter()
            .min_by_key(Shape::area)
            .expect("curve nonempty after prune"))
    }

    /// Total module area (lower bound on any floorplan of this tree).
    pub fn module_area(&self) -> i64 {
        match self {
            SlicingTree::Module { shapes, .. } => shapes.iter().map(Shape::area).min().unwrap_or(0),
            SlicingTree::HCut(a, b) | SlicingTree::VCut(a, b) => a.module_area() + b.module_area(),
        }
    }

    /// Dead space fraction of the best floorplan: `1 − Σmodule / WH`.
    ///
    /// # Errors
    ///
    /// Propagates [`EmptyShapesError`].
    pub fn dead_space(&self) -> Result<f64, EmptyShapesError> {
        let best = self.best_shape()?;
        Ok(1.0 - self.module_area() as f64 / best.area() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_squares_pack_perfectly() {
        let t = SlicingTree::vcut(
            SlicingTree::module("a", 10, 10),
            SlicingTree::module("b", 10, 10),
        );
        let best = t.best_shape().unwrap();
        assert_eq!(best.area(), 200);
        assert_eq!(t.dead_space().unwrap(), 0.0);
    }

    #[test]
    fn rotation_avoids_dead_space() {
        // 10x20 and 20x10: side by side aligned heights via rotation.
        let t = SlicingTree::vcut(
            SlicingTree::module("a", 10, 20),
            SlicingTree::module("b", 20, 10),
        );
        let best = t.best_shape().unwrap();
        assert_eq!(best.area(), 400, "{best:?}");
    }

    #[test]
    fn curve_is_pareto() {
        let t = SlicingTree::hcut(
            SlicingTree::module("a", 3, 7),
            SlicingTree::vcut(
                SlicingTree::module("b", 5, 5),
                SlicingTree::module("c", 2, 9),
            ),
        );
        let curve = t.shape_curve().unwrap();
        for (i, s1) in curve.iter().enumerate() {
            for (j, s2) in curve.iter().enumerate() {
                if i != j {
                    assert!(!(s2.w <= s1.w && s2.h <= s1.h), "{s2:?} dominates {s1:?}");
                }
            }
        }
        // widths strictly increase, heights strictly decrease
        for w in curve.windows(2) {
            assert!(w[0].w < w[1].w && w[0].h > w[1].h, "{curve:?}");
        }
    }

    #[test]
    fn best_area_never_below_module_sum() {
        let t = SlicingTree::hcut(
            SlicingTree::module("a", 4, 9),
            SlicingTree::module("b", 6, 5),
        );
        assert!(t.best_shape().unwrap().area() >= t.module_area());
    }

    #[test]
    fn hcut_and_vcut_differ() {
        let a = SlicingTree::module("a", 2, 10);
        let b = SlicingTree::module("b", 2, 10);
        let h = SlicingTree::hcut(a.clone(), b.clone())
            .best_shape()
            .unwrap();
        let v = SlicingTree::vcut(a, b).best_shape().unwrap();
        // both reach 40 with rotations but through different aspect ratios
        assert_eq!(h.area(), 40);
        assert_eq!(v.area(), 40);
    }

    #[test]
    fn empty_shapes_error() {
        let t = SlicingTree::Module {
            name: "hole".into(),
            shapes: vec![],
        };
        assert!(t.shape_curve().is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_tree(depth: u32) -> impl Strategy<Value = SlicingTree> {
            let leaf = (1i64..12, 1i64..12).prop_map(|(w, h)| SlicingTree::module("m", w, h));
            leaf.prop_recursive(depth, 16, 2, |inner| {
                (inner.clone(), inner, any::<bool>()).prop_map(|(a, b, horiz)| {
                    if horiz {
                        SlicingTree::hcut(a, b)
                    } else {
                        SlicingTree::vcut(a, b)
                    }
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn floorplan_area_bounds(tree in arb_tree(4)) {
                let best = tree.best_shape().unwrap();
                let module_sum = tree.module_area();
                prop_assert!(best.area() >= module_sum);
                let dead = tree.dead_space().unwrap();
                prop_assert!((0.0..1.0).contains(&dead));
            }

            #[test]
            fn curve_points_all_feasible(tree in arb_tree(3)) {
                // every curve point's area is at least the module sum
                let module_sum = tree.module_area();
                for s in tree.shape_curve().unwrap() {
                    prop_assert!(s.area() >= module_sum);
                }
            }
        }
    }
}

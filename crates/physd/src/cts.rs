//! Clock-tree synthesis: H-tree generation over a square region, total
//! wirelength and skew under a linear (length-proportional) delay model.

use serde::{Deserialize, Serialize};

use crate::geom::Point;

/// A clock tree: source, internal branch segments and sink taps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockTree {
    /// Clock source (root driver).
    pub source: Point,
    /// Wire segments `(from, to)`.
    pub segments: Vec<(Point, Point)>,
    /// Sink locations with their source-to-sink path length.
    pub sinks: Vec<(Point, i64)>,
}

impl ClockTree {
    /// Total wirelength of the distribution network.
    pub fn wirelength(&self) -> i64 {
        self.segments.iter().map(|&(a, b)| a.manhattan(b)).sum()
    }

    /// Clock skew under a delay model of `delay_per_unit` per unit of wire
    /// (max sink delay − min sink delay).
    pub fn skew(&self, delay_per_unit: f64) -> f64 {
        let delays: Vec<f64> = self
            .sinks
            .iter()
            .map(|&(_, len)| len as f64 * delay_per_unit)
            .collect();
        match (
            delays.iter().cloned().fold(f64::NAN, f64::min),
            delays.iter().cloned().fold(f64::NAN, f64::max),
        ) {
            (min, max) if min.is_finite() => max - min,
            _ => 0.0,
        }
    }

    /// Insertion delay to the slowest sink.
    pub fn max_insertion_delay(&self, delay_per_unit: f64) -> f64 {
        self.sinks
            .iter()
            .map(|&(_, len)| len as f64 * delay_per_unit)
            .fold(0.0, f64::max)
    }
}

/// Builds a symmetric H-tree of `levels` levels over a square of
/// half-width `half` centred at `center`. `4^levels` sinks result, all at
/// identical path length — zero structural skew.
///
/// # Panics
///
/// Panics if `levels == 0` or `levels > 6`.
pub fn h_tree(center: Point, half: i64, levels: u32) -> ClockTree {
    assert!((1..=6).contains(&levels), "levels must be 1..=6");
    let mut segments = Vec::new();
    let mut sinks = Vec::new();
    build_h(center, half, levels, 0, &mut segments, &mut sinks);
    ClockTree {
        source: center,
        segments,
        sinks,
    }
}

fn build_h(
    c: Point,
    half: i64,
    levels: u32,
    path: i64,
    segments: &mut Vec<(Point, Point)>,
    sinks: &mut Vec<(Point, i64)>,
) {
    // One H: horizontal bar through c, two vertical bars at the ends.
    let left = Point::new(c.x - half, c.y);
    let right = Point::new(c.x + half, c.y);
    segments.push((left, right));
    let corners = [
        Point::new(c.x - half, c.y - half),
        Point::new(c.x - half, c.y + half),
        Point::new(c.x + half, c.y - half),
        Point::new(c.x + half, c.y + half),
    ];
    segments.push((
        Point::new(c.x - half, c.y - half),
        Point::new(c.x - half, c.y + half),
    ));
    segments.push((
        Point::new(c.x + half, c.y - half),
        Point::new(c.x + half, c.y + half),
    ));
    let leg = half + half; // centre → bar end → corner
    for corner in corners {
        if levels == 1 {
            sinks.push((corner, path + leg));
        } else {
            build_h(corner, half / 2, levels - 1, path + leg, segments, sinks);
        }
    }
}

/// A deliberately skewed comb (spine + fingers) serving the same sinks —
/// the "bad" alternative for clock-distribution questions.
pub fn comb_tree(center: Point, half: i64, levels: u32) -> ClockTree {
    let reference = h_tree(center, half, levels);
    let source = Point::new(center.x - half, center.y - half);
    let mut segments = Vec::new();
    let mut sinks = Vec::new();
    // spine along the bottom, fingers up to each sink
    for &(sink, _) in &reference.sinks {
        let foot = Point::new(sink.x, source.y);
        segments.push((source, foot));
        segments.push((foot, sink));
        let len = source.manhattan(foot) + foot.manhattan(sink);
        sinks.push((sink, len));
    }
    ClockTree {
        source,
        segments,
        sinks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_tree_sink_count_is_power_of_four() {
        for levels in 1..=4u32 {
            let t = h_tree(Point::new(0, 0), 128, levels);
            assert_eq!(t.sinks.len(), 4usize.pow(levels));
        }
    }

    #[test]
    fn h_tree_has_zero_structural_skew() {
        let t = h_tree(Point::new(0, 0), 64, 3);
        assert_eq!(t.skew(0.1), 0.0);
        let first = t.sinks[0].1;
        assert!(t.sinks.iter().all(|&(_, l)| l == first));
    }

    #[test]
    fn comb_tree_has_nonzero_skew() {
        let comb = comb_tree(Point::new(0, 0), 64, 2);
        assert!(comb.skew(0.1) > 0.0);
        let h = h_tree(Point::new(0, 0), 64, 2);
        assert!(comb.skew(0.1) > h.skew(0.1));
    }

    #[test]
    fn insertion_delay_scales_with_unit_delay() {
        let t = h_tree(Point::new(0, 0), 64, 2);
        let d1 = t.max_insertion_delay(1.0);
        let d2 = t.max_insertion_delay(2.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn wirelength_positive_and_grows_with_levels() {
        let w1 = h_tree(Point::new(0, 0), 64, 1).wirelength();
        let w2 = h_tree(Point::new(0, 0), 64, 2).wirelength();
        assert!(w1 > 0);
        assert!(w2 > w1);
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn zero_levels_panics() {
        let _ = h_tree(Point::new(0, 0), 64, 0);
    }
}

//! Static timing analysis over a combinational DAG: arrival/required
//! times, slack, critical path extraction and useful-skew experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Node id inside a [`TimingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimingNode(pub usize);

/// A timing graph: nodes with delays, edges with (optional) wire delays.
/// Nodes must be added before edges reference them; edges must go from a
/// lower to a higher node id, which makes the graph acyclic by
/// construction (like real netlist levelisation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingGraph {
    delays: Vec<f64>,
    names: Vec<String>,
    edges: Vec<(usize, usize, f64)>, // (from, to, wire delay)
    endpoints: Vec<usize>,
    startpoints: Vec<usize>,
}

/// Error building a timing graph.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// Edge endpoints out of range or not topologically ordered.
    BadEdge {
        /// Source node id.
        from: usize,
        /// Sink node id.
        to: usize,
    },
    /// Negative delay supplied.
    NegativeDelay(f64),
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::BadEdge { from, to } => {
                write!(f, "edge {from}->{to} is out of range or not forward")
            }
            TimingError::NegativeDelay(d) => write!(f, "negative delay {d}"),
        }
    }
}

impl std::error::Error for TimingError {}

/// The result of a full timing run at a clock period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Per-node arrival times.
    pub arrival: Vec<f64>,
    /// Per-node required times.
    pub required: Vec<f64>,
    /// Per-node slack (`required − arrival`).
    pub slack: Vec<f64>,
    /// Worst (most negative) slack.
    pub worst_slack: f64,
    /// Node ids along the critical path, source to endpoint.
    pub critical_path: Vec<TimingNode>,
}

impl TimingGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TimingGraph::default()
    }

    /// Adds a node with a propagation delay; returns its id.
    ///
    /// # Errors
    ///
    /// [`TimingError::NegativeDelay`] for negative delays.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        delay: f64,
    ) -> Result<TimingNode, TimingError> {
        if delay < 0.0 {
            return Err(TimingError::NegativeDelay(delay));
        }
        self.delays.push(delay);
        self.names.push(name.into());
        Ok(TimingNode(self.delays.len() - 1))
    }

    /// Adds an edge with a wire delay.
    ///
    /// # Errors
    ///
    /// [`TimingError::BadEdge`] unless `from < to < node_count` (forward
    /// edges keep the graph a DAG); [`TimingError::NegativeDelay`] for
    /// negative wire delay.
    pub fn add_edge(
        &mut self,
        from: TimingNode,
        to: TimingNode,
        wire: f64,
    ) -> Result<(), TimingError> {
        if wire < 0.0 {
            return Err(TimingError::NegativeDelay(wire));
        }
        if from.0 >= to.0 || to.0 >= self.delays.len() {
            return Err(TimingError::BadEdge {
                from: from.0,
                to: to.0,
            });
        }
        self.edges.push((from.0, to.0, wire));
        Ok(())
    }

    /// Marks a timing startpoint (arrival 0 reference, e.g. a register
    /// clock pin).
    pub fn mark_startpoint(&mut self, n: TimingNode) {
        self.startpoints.push(n.0);
    }

    /// Marks a timing endpoint (checked against the clock period).
    pub fn mark_endpoint(&mut self, n: TimingNode) {
        self.endpoints.push(n.0);
    }

    /// Node name.
    pub fn name(&self, n: TimingNode) -> &str {
        &self.names[n.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Runs arrival/required/slack analysis against `period`. Startpoint
    /// arrivals may be skewed individually via `launch_skew` (useful-skew
    /// analysis); pass `&[]` for zero skew everywhere.
    pub fn analyze(&self, period: f64, launch_skew: &[(TimingNode, f64)]) -> TimingReport {
        let n = self.delays.len();
        let skew_of = |i: usize| -> f64 {
            launch_skew
                .iter()
                .find(|(node, _)| node.0 == i)
                .map_or(0.0, |&(_, s)| s)
        };
        // Arrival: forward pass in id order (ids are topological because
        // edges are forced forward). Nodes with no fan-in behave as
        // primary inputs: they arrive at their own delay plus skew.
        let mut has_in = vec![false; n];
        for &(_, to, _) in &self.edges {
            has_in[to] = true;
        }
        let mut arrival = vec![f64::NEG_INFINITY; n];
        for &s in &self.startpoints {
            arrival[s] = skew_of(s) + self.delays[s];
        }
        for i in 0..n {
            if !has_in[i] && arrival[i] == f64::NEG_INFINITY {
                arrival[i] = skew_of(i) + self.delays[i];
            }
        }
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(from, to, wire) in &self.edges {
            incoming[to].push((from, wire));
        }
        for to in 0..n {
            for &(from, wire) in &incoming[to] {
                let cand = arrival[from] + wire + self.delays[to];
                if cand > arrival[to] {
                    arrival[to] = cand;
                }
            }
        }
        for a in &mut arrival {
            if *a == f64::NEG_INFINITY {
                *a = 0.0;
            }
        }

        // Required: backward pass.
        let mut required = vec![f64::INFINITY; n];
        for &e in &self.endpoints {
            required[e] = period;
        }
        let mut outgoing: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(from, to, wire) in &self.edges {
            outgoing[from].push((to, wire));
        }
        for from in (0..n).rev() {
            for &(to, wire) in &outgoing[from] {
                let cand = required[to] - self.delays[to] - wire;
                if cand < required[from] {
                    required[from] = cand;
                }
            }
        }
        for r in &mut required {
            if *r == f64::INFINITY {
                *r = period;
            }
        }

        let slack: Vec<f64> = arrival.iter().zip(&required).map(|(a, r)| r - a).collect();
        let worst_slack = slack.iter().cloned().fold(f64::INFINITY, f64::min);

        // Critical path: walk back from the worst endpoint.
        let mut critical_path = Vec::new();
        if let Some(&end) = self
            .endpoints
            .iter()
            .min_by(|&&a, &&b| slack[a].partial_cmp(&slack[b]).expect("finite slacks"))
        {
            let mut cur = end;
            critical_path.push(TimingNode(cur));
            loop {
                let mut best: Option<usize> = None;
                for &(from, to, wire) in &self.edges {
                    if to == cur
                        && (arrival[from] + wire + self.delays[to] - arrival[to]).abs() < 1e-9
                    {
                        best = Some(from);
                        break;
                    }
                }
                match best {
                    Some(from) => {
                        critical_path.push(TimingNode(from));
                        cur = from;
                    }
                    None => break,
                }
            }
            critical_path.reverse();
        }

        TimingReport {
            arrival,
            required,
            slack,
            worst_slack,
            critical_path,
        }
    }

    /// Minimum clock period that meets timing (worst slack exactly zero):
    /// the latest endpoint arrival.
    pub fn min_period(&self) -> f64 {
        let report = self.analyze(0.0, &[]);
        self.endpoints
            .iter()
            .map(|&e| report.arrival[e])
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in1 ->(1) g1[2] ->(0.5) g3[1] -> out
    /// in2 ->(1) g2[3] ---------^
    fn diamond() -> (TimingGraph, [TimingNode; 5]) {
        let mut g = TimingGraph::new();
        let in1 = g.add_node("in1", 0.0).unwrap();
        let in2 = g.add_node("in2", 0.0).unwrap();
        let g1 = g.add_node("g1", 2.0).unwrap();
        let g2 = g.add_node("g2", 3.0).unwrap();
        let g3 = g.add_node("g3", 1.0).unwrap();
        g.add_edge(in1, g1, 1.0).unwrap();
        g.add_edge(in2, g2, 1.0).unwrap();
        g.add_edge(g1, g3, 0.5).unwrap();
        g.add_edge(g2, g3, 0.5).unwrap();
        g.mark_startpoint(in1);
        g.mark_startpoint(in2);
        g.mark_endpoint(g3);
        (g, [in1, in2, g1, g2, g3])
    }

    #[test]
    fn arrival_takes_max_path() {
        let (g, n) = diamond();
        let r = g.analyze(10.0, &[]);
        // through g2: 0 + 1 + 3 + 0.5 + 1 = 5.5
        assert!((r.arrival[n[4].0] - 5.5).abs() < 1e-9);
        assert!((g.min_period() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn slack_and_critical_path() {
        let (g, n) = diamond();
        let r = g.analyze(6.0, &[]);
        assert!((r.worst_slack - 0.5).abs() < 1e-9);
        let names: Vec<&str> = r.critical_path.iter().map(|&x| g.name(x)).collect();
        assert_eq!(names, vec!["in2", "g2", "g3"]);
        // the short path has more slack
        assert!(r.slack[n[2].0] > r.slack[n[3].0]);
    }

    #[test]
    fn negative_slack_when_period_too_short() {
        let (g, _) = diamond();
        let r = g.analyze(5.0, &[]);
        assert!(r.worst_slack < 0.0);
    }

    #[test]
    fn useful_skew_buys_slack() {
        let (g, n) = diamond();
        // Launch the critical input early (negative skew): slack improves.
        let base = g.analyze(5.5, &[]).worst_slack;
        let skewed = g.analyze(5.5, &[(n[1], -0.5)]).worst_slack;
        assert!(skewed > base, "{skewed} vs {base}");
        assert!((skewed - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bad_edges_rejected() {
        let mut g = TimingGraph::new();
        let a = g.add_node("a", 1.0).unwrap();
        let b = g.add_node("b", 1.0).unwrap();
        assert!(matches!(
            g.add_edge(b, a, 0.0),
            Err(TimingError::BadEdge { .. })
        ));
        assert!(matches!(
            g.add_edge(a, TimingNode(9), 0.0),
            Err(TimingError::BadEdge { .. })
        ));
        assert!(matches!(
            g.add_edge(a, b, -1.0),
            Err(TimingError::NegativeDelay(_))
        ));
        assert!(g.add_node("c", -0.5).is_err());
    }

    #[test]
    fn empty_graph_analyzes() {
        let g = TimingGraph::new();
        let r = g.analyze(1.0, &[]);
        assert!(r.arrival.is_empty());
        assert_eq!(g.min_period(), 0.0);
        assert!(g.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn slack_decreases_with_tighter_period(
                delays in proptest::collection::vec(0.1f64..5.0, 3..10),
            ) {
                // chain graph
                let mut g = TimingGraph::new();
                let nodes: Vec<TimingNode> = delays
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| g.add_node(format!("n{i}"), d).unwrap())
                    .collect();
                for w in nodes.windows(2) {
                    g.add_edge(w[0], w[1], 0.1).unwrap();
                }
                g.mark_startpoint(nodes[0]);
                g.mark_endpoint(*nodes.last().unwrap());
                let loose = g.analyze(100.0, &[]).worst_slack;
                let tight = g.analyze(1.0, &[]).worst_slack;
                prop_assert!(loose > tight);
                // min_period leaves exactly zero slack
                let zero = g.analyze(g.min_period(), &[]).worst_slack;
                prop_assert!(zero.abs() < 1e-9);
            }
        }
    }
}

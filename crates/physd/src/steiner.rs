//! Rectilinear routing trees: minimum spanning tree (Prim) and a
//! Hanan-grid 1-Steiner heuristic for Steiner minimal trees.
//!
//! The paper's example Physical Design question shows two routing
//! topologies with annotated points and asks which has lower cost; this
//! module both computes the costs and generates the alternatives.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::geom::Point;

/// A tree edge between two points (wires route rectilinearly, so the
/// edge's cost is the Manhattan distance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Edge {
    /// Rectilinear wirelength of the edge.
    pub fn cost(&self) -> i64 {
        self.a.manhattan(self.b)
    }
}

/// A routing tree: edges over the pin set (plus possible Steiner points).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTree {
    /// Tree edges.
    pub edges: Vec<Edge>,
    /// Steiner points introduced beyond the original pins.
    pub steiner_points: Vec<Point>,
}

impl RouteTree {
    /// Total rectilinear wirelength.
    pub fn cost(&self) -> i64 {
        self.edges.iter().map(Edge::cost).sum()
    }
}

/// Builds the rectilinear minimum spanning tree over `pins` with Prim's
/// algorithm. Duplicated pins are merged.
pub fn rmst(pins: &[Point]) -> RouteTree {
    let pts: Vec<Point> = {
        let set: BTreeSet<Point> = pins.iter().copied().collect();
        set.into_iter().collect()
    };
    if pts.len() < 2 {
        return RouteTree {
            edges: Vec::new(),
            steiner_points: Vec::new(),
        };
    }
    let n = pts.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![i64::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for j in 1..n {
        dist[j] = pts[0].manhattan(pts[j]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&j| !in_tree[j])
            .min_by_key(|&j| dist[j])
            .expect("some node outside tree");
        in_tree[next] = true;
        edges.push(Edge {
            a: pts[parent[next]],
            b: pts[next],
        });
        for j in 0..n {
            if !in_tree[j] {
                let d = pts[next].manhattan(pts[j]);
                if d < dist[j] {
                    dist[j] = d;
                    parent[j] = next;
                }
            }
        }
    }
    RouteTree {
        edges,
        steiner_points: Vec::new(),
    }
}

/// Cost of the rectilinear MST over `pins`.
pub fn rmst_cost(pins: &[Point]) -> i64 {
    rmst(pins).cost()
}

/// Builds a rectilinear Steiner tree with the iterated 1-Steiner
/// heuristic: repeatedly add the Hanan-grid point that most reduces the
/// MST cost, until no point helps.
pub fn rsmt(pins: &[Point]) -> RouteTree {
    let mut terminals: Vec<Point> = {
        let set: BTreeSet<Point> = pins.iter().copied().collect();
        set.into_iter().collect()
    };
    if terminals.len() < 3 {
        return rmst(&terminals);
    }
    let mut steiner: Vec<Point> = Vec::new();
    let mut best_cost = rmst_cost(&terminals);
    loop {
        // Hanan grid of the current terminal set.
        let xs: BTreeSet<i64> = terminals.iter().map(|p| p.x).collect();
        let ys: BTreeSet<i64> = terminals.iter().map(|p| p.y).collect();
        let mut best: Option<(Point, i64)> = None;
        for &x in &xs {
            for &y in &ys {
                let cand = Point::new(x, y);
                if terminals.contains(&cand) {
                    continue;
                }
                let mut with = terminals.clone();
                with.push(cand);
                let c = rmst_cost(&with);
                if c < best.map_or(best_cost, |(_, bc)| bc) {
                    best = Some((cand, c));
                }
            }
        }
        match best {
            Some((p, c)) if c < best_cost => {
                terminals.push(p);
                steiner.push(p);
                best_cost = c;
            }
            _ => break,
        }
    }
    // Prune degree-<=1 Steiner points (they never help) — with the greedy
    // loop above they shouldn't occur, but keep the invariant explicit.
    let tree = rmst(&terminals);
    RouteTree {
        edges: tree.edges,
        steiner_points: steiner,
    }
}

/// Cost of the heuristic Steiner tree over `pins`.
pub fn rsmt_cost(pins: &[Point]) -> i64 {
    rsmt(pins).cost()
}

/// A deliberately naive "star" topology routing everything from the first
/// pin — used as the higher-cost alternative in generated questions.
pub fn star_tree(pins: &[Point]) -> RouteTree {
    let Some((&hub, rest)) = pins.split_first() else {
        return RouteTree {
            edges: Vec::new(),
            steiner_points: Vec::new(),
        };
    };
    RouteTree {
        edges: rest.iter().map(|&p| Edge { a: hub, b: p }).collect(),
        steiner_points: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(i64, i64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn two_pins_direct_edge() {
        let t = rmst(&pts(&[(0, 0), (5, 5)]));
        assert_eq!(t.edges.len(), 1);
        assert_eq!(t.cost(), 10);
    }

    #[test]
    fn classic_l_shape_steiner_gain() {
        // Three corners of a rectangle: MST = 2 sides + ... Steiner point
        // at the corner saves wirelength.
        let pins = pts(&[(0, 0), (10, 0), (0, 10), (10, 10)]);
        let mst = rmst_cost(&pins);
        let smt = rsmt_cost(&pins);
        assert_eq!(mst, 30);
        assert!(smt <= mst);
    }

    #[test]
    fn t_junction_saves_with_steiner_point() {
        // pins at (0,0), (10,0), (5,8): MST = 10 + 13 = 23.
        // Steiner point at (5,0): 5 + 5 + 8 = 18.
        let pins = pts(&[(0, 0), (10, 0), (5, 8)]);
        assert_eq!(rmst_cost(&pins), 23);
        let smt = rsmt(&pins);
        assert_eq!(smt.cost(), 18);
        assert_eq!(smt.steiner_points, vec![Point::new(5, 0)]);
    }

    #[test]
    fn star_is_never_cheaper_than_mst() {
        let pins = pts(&[(0, 0), (10, 2), (3, 9), (8, 8), (1, 5)]);
        assert!(star_tree(&pins).cost() >= rmst_cost(&pins));
    }

    #[test]
    fn duplicate_pins_merged() {
        let t = rmst(&pts(&[(0, 0), (0, 0), (3, 0)]));
        assert_eq!(t.edges.len(), 1);
        assert_eq!(t.cost(), 3);
    }

    #[test]
    fn empty_and_single_pin() {
        assert_eq!(rmst(&[]).cost(), 0);
        assert_eq!(rsmt(&pts(&[(4, 4)])).cost(), 0);
        assert_eq!(star_tree(&[]).cost(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_pins() -> impl Strategy<Value = Vec<Point>> {
            proptest::collection::vec((0i64..40, 0i64..40), 2..8)
                .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn steiner_never_worse_than_mst(pins in arbitrary_pins()) {
                prop_assert!(rsmt_cost(&pins) <= rmst_cost(&pins));
            }

            #[test]
            fn mst_is_connected(pins in arbitrary_pins()) {
                let unique: BTreeSet<Point> = pins.iter().copied().collect();
                let tree = rmst(&pins);
                prop_assert_eq!(tree.edges.len(), unique.len().saturating_sub(1));
                // union-find connectivity check
                let pts: Vec<Point> = unique.into_iter().collect();
                let mut parent: Vec<usize> = (0..pts.len()).collect();
                fn find(p: &mut Vec<usize>, i: usize) -> usize {
                    if p[i] != i { let r = find(p, p[i]); p[i] = r; }
                    p[i]
                }
                for e in &tree.edges {
                    let ia = pts.iter().position(|&q| q == e.a).unwrap();
                    let ib = pts.iter().position(|&q| q == e.b).unwrap();
                    let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
                    parent[ra] = rb;
                }
                let root = find(&mut parent, 0);
                for i in 0..pts.len() {
                    prop_assert_eq!(find(&mut parent, i), root);
                }
            }

            #[test]
            fn mst_lower_bound_is_half_hpwl(pins in arbitrary_pins()) {
                // HPWL is a lower bound on Steiner cost; Steiner <= MST.
                if pins.len() >= 2 {
                    let bb = crate::geom::Rect::bounding(&pins).unwrap();
                    prop_assert!(rsmt_cost(&pins) >= bb.half_perimeter());
                }
            }
        }
    }
}

//! Sequential elements: flip-flops, excitation tables and state tables.
//!
//! This module powers the paper's flagship Digital Design example —
//! *"Derive the function for Q given the state table and excitation maps"*
//! with gold `Q = S'Q + SR'` — by actually deriving next-state equations
//! from state tables via Quine–McCluskey.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::Expr;
use crate::minimize::{implicants_to_expr, minimize};

/// The four classic flip-flop types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipFlop {
    /// Set/Reset latch-style flip-flop (S=R=1 is illegal).
    Sr,
    /// JK flip-flop (J=K=1 toggles).
    Jk,
    /// Data flip-flop.
    D,
    /// Toggle flip-flop.
    T,
}

/// A required input value in an excitation table: `0`, `1`, or don't-care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Excitation {
    /// Input must be 0.
    Zero,
    /// Input must be 1.
    One,
    /// Input value is irrelevant.
    DontCare,
}

impl fmt::Display for Excitation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Excitation::Zero => "0",
            Excitation::One => "1",
            Excitation::DontCare => "X",
        })
    }
}

impl FlipFlop {
    /// Number of synchronous inputs (1 for D/T, 2 for SR/JK).
    pub fn input_count(self) -> usize {
        match self {
            FlipFlop::D | FlipFlop::T => 1,
            FlipFlop::Sr | FlipFlop::Jk => 2,
        }
    }

    /// Input pin names.
    pub fn input_names(self) -> &'static [char] {
        match self {
            FlipFlop::Sr => &['S', 'R'],
            FlipFlop::Jk => &['J', 'K'],
            FlipFlop::D => &['D'],
            FlipFlop::T => &['T'],
        }
    }

    /// Next state given present state `q` and inputs. For SR, `S=R=1`
    /// returns `None` (illegal input combination).
    pub fn next_state(self, q: bool, inputs: &[bool]) -> Option<bool> {
        match self {
            FlipFlop::Sr => {
                let (s, r) = (inputs[0], inputs[1]);
                if s && r {
                    None
                } else if s {
                    Some(true)
                } else if r {
                    Some(false)
                } else {
                    Some(q)
                }
            }
            FlipFlop::Jk => {
                let (j, k) = (inputs[0], inputs[1]);
                Some(match (j, k) {
                    (false, false) => q,
                    (false, true) => false,
                    (true, false) => true,
                    (true, true) => !q,
                })
            }
            FlipFlop::D => Some(inputs[0]),
            FlipFlop::T => Some(q ^ inputs[0]),
        }
    }

    /// The characteristic equation `Q+ = f(inputs, Q)` with `Q` denoting
    /// present state.
    ///
    /// # Example
    ///
    /// ```
    /// use chipvqa_logic::expr::Expr;
    /// use chipvqa_logic::seq::FlipFlop;
    ///
    /// let jk = FlipFlop::Jk.characteristic();
    /// assert!(jk.equivalent(&Expr::parse("JQ' + K'Q")?)?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn characteristic(self) -> Expr {
        let src = match self {
            FlipFlop::Sr => "S + R'Q",
            FlipFlop::Jk => "JQ' + K'Q",
            FlipFlop::D => "D",
            FlipFlop::T => "T ^ Q",
        };
        Expr::parse(src).expect("characteristic equations are well-formed")
    }

    /// Excitation entry: input values required to move from `q` to
    /// `q_next`.
    pub fn excitation(self, q: bool, q_next: bool) -> Vec<Excitation> {
        use Excitation::*;
        match self {
            FlipFlop::Sr => match (q, q_next) {
                (false, false) => vec![Zero, DontCare],
                (false, true) => vec![One, Zero],
                (true, false) => vec![Zero, One],
                (true, true) => vec![DontCare, Zero],
            },
            FlipFlop::Jk => match (q, q_next) {
                (false, false) => vec![Zero, DontCare],
                (false, true) => vec![One, DontCare],
                (true, false) => vec![DontCare, One],
                (true, true) => vec![DontCare, Zero],
            },
            FlipFlop::D => vec![if q_next { One } else { Zero }],
            FlipFlop::T => vec![if q != q_next { One } else { Zero }],
        }
    }
}

impl fmt::Display for FlipFlop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlipFlop::Sr => "SR",
            FlipFlop::Jk => "JK",
            FlipFlop::D => "D",
            FlipFlop::T => "T",
        })
    }
}

/// Error constructing or querying a [`StateTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateTableError {
    /// Row count must be `2^(state_bits + input_bits)`.
    BadRowCount {
        /// Rows supplied.
        got: usize,
        /// Rows required.
        expected: usize,
    },
    /// A next-state value exceeds the state-bit width.
    StateOutOfRange {
        /// The offending next-state.
        state: usize,
        /// Bits available.
        bits: usize,
    },
}

impl fmt::Display for StateTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateTableError::BadRowCount { got, expected } => {
                write!(f, "state table has {got} rows, needs {expected}")
            }
            StateTableError::StateOutOfRange { state, bits } => {
                write!(f, "next state {state} does not fit in {bits} bits")
            }
        }
    }
}

impl std::error::Error for StateTableError {}

/// A binary-encoded synchronous state table.
///
/// Row index encodes `(present_state << input_bits) | input`; each row
/// holds the next state. Variable naming convention for the derived
/// equations: state bits are `Q` (and `P`, `O`, … for wider machines,
/// MSB-first) and input bits are `S`, `R` / `A`, `B` depending on the
/// caller-provided names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTable {
    state_bits: usize,
    input_names: Vec<char>,
    next_states: Vec<usize>,
}

impl StateTable {
    /// Builds a state table.
    ///
    /// # Errors
    ///
    /// [`StateTableError::BadRowCount`] when `next_states.len()` is not
    /// `2^(state_bits + input_names.len())`;
    /// [`StateTableError::StateOutOfRange`] when a next state exceeds the
    /// encodable range.
    pub fn new(
        state_bits: usize,
        input_names: Vec<char>,
        next_states: Vec<usize>,
    ) -> Result<Self, StateTableError> {
        let expected = 1usize << (state_bits + input_names.len());
        if next_states.len() != expected {
            return Err(StateTableError::BadRowCount {
                got: next_states.len(),
                expected,
            });
        }
        for &s in &next_states {
            if s >= 1usize << state_bits {
                return Err(StateTableError::StateOutOfRange {
                    state: s,
                    bits: state_bits,
                });
            }
        }
        Ok(StateTable {
            state_bits,
            input_names,
            next_states,
        })
    }

    /// Number of state bits.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// Input signal names.
    pub fn input_names(&self) -> &[char] {
        &self.input_names
    }

    /// Next state for `(present, input)`.
    pub fn next(&self, present: usize, input: usize) -> usize {
        self.next_states[(present << self.input_names.len()) | input]
    }

    /// Raw next-state column.
    pub fn rows(&self) -> &[usize] {
        &self.next_states
    }

    /// State-bit variable names, MSB first. Single-bit machines use `Q`;
    /// wider machines count backwards from `Q` (`P` is the next-most
    /// significant... i.e. `['P','Q']` for two bits).
    pub fn state_var_names(&self) -> Vec<char> {
        let first = (b'Q' - (self.state_bits as u8 - 1)) as char;
        (0..self.state_bits)
            .map(|i| ((first as u8) + i as u8) as char)
            .collect()
    }

    /// Derives the minimised next-state equation for state bit `bit`
    /// (0 = MSB) over variables `[state_vars…, input_names…]`.
    ///
    /// The famous ChipVQA example falls out of this: an SR-controlled
    /// single-bit machine yields `Q+ = S'Q + SR'` (equivalently
    /// `S + R'Q` restricted to legal inputs).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= state_bits`.
    pub fn next_state_expr(&self, bit: usize) -> Expr {
        assert!(bit < self.state_bits, "state bit out of range");
        let num_vars = self.state_bits + self.input_names.len();
        let minterms: Vec<usize> = (0..self.next_states.len())
            .filter(|&row| {
                let next = self.next_states[row];
                next >> (self.state_bits - 1 - bit) & 1 == 1
            })
            .collect();
        let cover = minimize(num_vars, &minterms, &[]);
        let mut vars = self.state_var_names();
        vars.extend(self.input_names.iter().copied());
        implicants_to_expr(&cover, &vars)
    }

    /// Derives the minimised next-state equation treating `dont_care_rows`
    /// as free (used when some input combinations are illegal, e.g. S=R=1).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= state_bits`.
    pub fn next_state_expr_with_dc(&self, bit: usize, dont_care_rows: &[usize]) -> Expr {
        assert!(bit < self.state_bits, "state bit out of range");
        let num_vars = self.state_bits + self.input_names.len();
        let minterms: Vec<usize> = (0..self.next_states.len())
            .filter(|&row| {
                !dont_care_rows.contains(&row)
                    && self.next_states[row] >> (self.state_bits - 1 - bit) & 1 == 1
            })
            .collect();
        let cover = minimize(num_vars, &minterms, dont_care_rows);
        let mut vars = self.state_var_names();
        vars.extend(self.input_names.iter().copied());
        implicants_to_expr(&cover, &vars)
    }

    /// Simulates the machine from `start` over an input sequence.
    pub fn run(&self, start: usize, inputs: &[usize]) -> Vec<usize> {
        let mut state = start;
        let mut trace = vec![state];
        for &i in inputs {
            state = self.next(state, i);
            trace.push(state);
        }
        trace
    }

    /// The state table behind ChipVQA's flagship Digital Design example:
    /// a single-bit machine with inputs `S`, `R` whose minimised
    /// next-state function is exactly `Q+ = S'Q + SR'` (answer choice (d)
    /// in the paper's example; note this is *not* the SR flip-flop
    /// characteristic — it differs on the `Q=1, S=0, R=1` row).
    pub fn paper_example() -> StateTable {
        // Row index is (Q << 2) | (S << 1) | R; next state is
        // S'Q + SR' evaluated on that row.
        let rows = vec![0, 0, 1, 0, 1, 1, 1, 0];
        StateTable::new(1, vec!['S', 'R'], rows).expect("fixed dimensions are valid")
    }

    /// Builds the state table of a single flip-flop driven directly by its
    /// inputs (illegal SR combinations map to don't-care rows returned
    /// alongside).
    pub fn of_flip_flop(ff: FlipFlop) -> (StateTable, Vec<usize>) {
        let inputs = ff.input_names().to_vec();
        let n_in = inputs.len();
        let mut rows = Vec::new();
        let mut dc = Vec::new();
        for q in 0..2usize {
            for i in 0..(1usize << n_in) {
                let in_bits: Vec<bool> = (0..n_in).map(|b| i >> (n_in - 1 - b) & 1 == 1).collect();
                match ff.next_state(q == 1, &in_bits) {
                    Some(next) => rows.push(usize::from(next)),
                    None => {
                        dc.push((q << n_in) | i);
                        rows.push(0); // placeholder, masked by the dc list
                    }
                }
            }
        }
        let table = StateTable::new(1, inputs, rows).expect("dimensions correct by construction");
        (table, dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        Expr::parse(s).expect(s)
    }

    #[test]
    fn d_ff_follows_input() {
        assert_eq!(FlipFlop::D.next_state(false, &[true]), Some(true));
        assert_eq!(FlipFlop::D.next_state(true, &[false]), Some(false));
    }

    #[test]
    fn t_ff_toggles() {
        assert_eq!(FlipFlop::T.next_state(false, &[true]), Some(true));
        assert_eq!(FlipFlop::T.next_state(true, &[true]), Some(false));
        assert_eq!(FlipFlop::T.next_state(true, &[false]), Some(true));
    }

    #[test]
    fn sr_illegal_combination() {
        assert_eq!(FlipFlop::Sr.next_state(false, &[true, true]), None);
        assert_eq!(FlipFlop::Sr.next_state(false, &[true, false]), Some(true));
        assert_eq!(FlipFlop::Sr.next_state(true, &[false, true]), Some(false));
        assert_eq!(FlipFlop::Sr.next_state(true, &[false, false]), Some(true));
    }

    #[test]
    fn jk_toggle_mode() {
        assert_eq!(FlipFlop::Jk.next_state(true, &[true, true]), Some(false));
        assert_eq!(FlipFlop::Jk.next_state(false, &[true, true]), Some(true));
    }

    #[test]
    fn characteristic_equations_match_next_state() {
        for ff in [FlipFlop::Sr, FlipFlop::Jk, FlipFlop::D, FlipFlop::T] {
            let eq = ff.characteristic();
            let names = ff.input_names();
            for q in [false, true] {
                for bits in 0..(1usize << ff.input_count()) {
                    let inputs: Vec<bool> = (0..ff.input_count())
                        .map(|b| bits >> (ff.input_count() - 1 - b) & 1 == 1)
                        .collect();
                    let Some(expected) = ff.next_state(q, &inputs) else {
                        continue; // illegal SR input
                    };
                    let mut assignment: Vec<(char, bool)> =
                        names.iter().copied().zip(inputs.iter().copied()).collect();
                    assignment.push(('Q', q));
                    assert_eq!(eq.eval(&assignment), expected, "{ff} q={q} in={bits:b}");
                }
            }
        }
    }

    #[test]
    fn excitation_tables_are_consistent_with_next_state() {
        for ff in [FlipFlop::Sr, FlipFlop::Jk, FlipFlop::D, FlipFlop::T] {
            for q in [false, true] {
                for q_next in [false, true] {
                    let exc = ff.excitation(q, q_next);
                    // every concrete input consistent with the excitation
                    // entry must produce q_next
                    let n = ff.input_count();
                    for bits in 0..(1usize << n) {
                        let inputs: Vec<bool> =
                            (0..n).map(|b| bits >> (n - 1 - b) & 1 == 1).collect();
                        let consistent = exc.iter().zip(&inputs).all(|(e, &i)| match e {
                            Excitation::Zero => !i,
                            Excitation::One => i,
                            Excitation::DontCare => true,
                        });
                        if consistent {
                            if let Some(next) = ff.next_state(q, &inputs) {
                                assert_eq!(next, q_next, "{ff} {q}->{q_next} inputs {inputs:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn paper_example_derives_sq_plus_sr() {
        // The ChipVQA flagship example: derive Q+ from the state table and
        // get exactly the gold answer "Q = S'Q + SR'".
        let table = StateTable::paper_example();
        let derived = table.next_state_expr(0);
        let gold = p("S'Q + SR'");
        assert!(
            derived.equivalent(&gold).unwrap(),
            "derived {derived}, want S'Q + SR'"
        );
        // And the derivation is exact, not just equivalent: both prime
        // implicants are essential, so QM returns this two-term cover.
        assert_eq!(derived.literal_count(), 4, "cover is the two-term SOP");
    }

    #[test]
    fn sr_flip_flop_characteristic_from_table() {
        // With S=R=1 rows as don't-cares the derived equation agrees with
        // the classic characteristic S + R'Q on every legal input.
        let (table, dc) = StateTable::of_flip_flop(FlipFlop::Sr);
        let derived = table.next_state_expr_with_dc(0, &dc);
        let classic = p("S + R'Q");
        for q in [false, true] {
            for s in [false, true] {
                for r in [false, true] {
                    if s && r {
                        continue;
                    }
                    let a = [('Q', q), ('S', s), ('R', r)];
                    assert_eq!(derived.eval(&a), classic.eval(&a), "q={q} s={s} r={r}");
                }
            }
        }
    }

    #[test]
    fn two_bit_counter_equations() {
        // 2-bit up counter with enable E: next = state + E (mod 4).
        let mut rows = Vec::new();
        for s in 0..4usize {
            for e in 0..2usize {
                rows.push((s + e) % 4);
            }
        }
        let table = StateTable::new(2, vec!['E'], rows).unwrap();
        assert_eq!(table.state_var_names(), vec!['P', 'Q']);
        // Q (LSB, bit index 1) toggles with E: Q+ = Q ^ E.
        let q_next = table.next_state_expr(1);
        assert!(q_next.equivalent(&p("Q ^ E")).unwrap());
        // P (MSB) flips when Q & E: P+ = P ^ (QE).
        let p_next = table.next_state_expr(0);
        assert!(p_next.equivalent(&p("P ^ (QE)")).unwrap());
    }

    #[test]
    fn run_traces_states() {
        let (table, _) = StateTable::of_flip_flop(FlipFlop::D);
        // input index == D value for 1-input machines
        let trace = table.run(0, &[1, 1, 0, 1]);
        assert_eq!(trace, vec![0, 1, 1, 0, 1]);
    }

    #[test]
    fn bad_dimensions_rejected() {
        assert!(matches!(
            StateTable::new(1, vec!['A'], vec![0, 1, 0]),
            Err(StateTableError::BadRowCount { .. })
        ));
        assert!(matches!(
            StateTable::new(1, vec!['A'], vec![0, 1, 0, 2]),
            Err(StateTableError::StateOutOfRange { .. })
        ));
    }
}

//! Reduced ordered binary decision diagrams (ROBDDs): canonical
//! representation of boolean functions with hash-consing, the `apply`
//! algorithm, satisfy-count and equivalence in O(1) after construction.
//!
//! BDDs complement the truth-table machinery in [`crate::expr`]: truth
//! tables are exponential in variables, BDDs are often compact, and a
//! canonical form makes equivalence a pointer comparison — which the
//! tests exploit to cross-check the two engines against each other.

use std::collections::HashMap;

use crate::expr::Expr;

/// Index of a BDD node inside a [`Bdd`] manager (0 = false, 1 = true).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(usize);

impl NodeRef {
    /// The constant-false terminal.
    pub const FALSE: NodeRef = NodeRef(0);
    /// The constant-true terminal.
    pub const TRUE: NodeRef = NodeRef(1);

    /// Whether this is a terminal node.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: usize, // variable level (terminals use usize::MAX)
    lo: NodeRef,
    hi: NodeRef,
}

/// A BDD manager over a fixed variable ordering.
#[derive(Debug, Clone)]
pub struct Bdd {
    order: Vec<char>,
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeRef>,
}

impl Bdd {
    /// Creates a manager with the given variable ordering.
    ///
    /// # Panics
    ///
    /// Panics if the ordering contains duplicates.
    pub fn new(order: &[char]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for &v in order {
            assert!(seen.insert(v), "duplicate variable {v} in ordering");
        }
        let terminal = |_: bool| Node {
            var: usize::MAX,
            lo: NodeRef::FALSE,
            hi: NodeRef::FALSE,
        };
        Bdd {
            order: order.to_vec(),
            nodes: vec![terminal(false), terminal(true)],
            unique: HashMap::new(),
        }
    }

    /// The variable ordering.
    pub fn order(&self) -> &[char] {
        &self.order
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: usize, lo: NodeRef, hi: NodeRef) -> NodeRef {
        if lo == hi {
            return lo; // reduction rule
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = NodeRef(self.nodes.len());
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// The BDD of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the ordering.
    pub fn var(&mut self, v: char) -> NodeRef {
        let level = self
            .order
            .iter()
            .position(|&x| x == v)
            .expect("variable must be in the ordering");
        self.mk(level, NodeRef::FALSE, NodeRef::TRUE)
    }

    fn level(&self, r: NodeRef) -> usize {
        self.nodes[r.0].var
    }

    fn cofactors(&self, r: NodeRef, level: usize) -> (NodeRef, NodeRef) {
        if r.is_terminal() || self.level(r) > level {
            (r, r)
        } else {
            let n = self.nodes[r.0];
            (n.lo, n.hi)
        }
    }

    /// Binary apply for AND/OR/XOR.
    fn apply(
        &mut self,
        op: fn(bool, bool) -> bool,
        a: NodeRef,
        b: NodeRef,
        memo: &mut HashMap<(NodeRef, NodeRef), NodeRef>,
    ) -> NodeRef {
        if a.is_terminal() && b.is_terminal() {
            return if op(a == NodeRef::TRUE, b == NodeRef::TRUE) {
                NodeRef::TRUE
            } else {
                NodeRef::FALSE
            };
        }
        if let Some(&r) = memo.get(&(a, b)) {
            return r;
        }
        let level = self.level(a).min(self.level(b));
        let (alo, ahi) = self.cofactors(a, level);
        let (blo, bhi) = self.cofactors(b, level);
        let lo = self.apply(op, alo, blo, memo);
        let hi = self.apply(op, ahi, bhi, memo);
        let r = self.mk(level, lo, hi);
        memo.insert((a, b), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(|x, y| x && y, a, b, &mut HashMap::new())
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(|x, y| x || y, a, b, &mut HashMap::new())
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        self.apply(|x, y| x ^ y, a, b, &mut HashMap::new())
    }

    /// Complement (via XOR with true).
    pub fn not(&mut self, a: NodeRef) -> NodeRef {
        self.xor(a, NodeRef::TRUE)
    }

    /// Builds the BDD of an expression (its variables must all be in the
    /// ordering).
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a variable outside the
    /// ordering.
    pub fn from_expr(&mut self, e: &Expr) -> NodeRef {
        match e {
            Expr::Const(true) => NodeRef::TRUE,
            Expr::Const(false) => NodeRef::FALSE,
            Expr::Var(v) => self.var(*v),
            Expr::Not(x) => {
                let inner = self.from_expr(x);
                self.not(inner)
            }
            Expr::And(xs) => {
                let mut acc = NodeRef::TRUE;
                for x in xs {
                    let b = self.from_expr(x);
                    acc = self.and(acc, b);
                }
                acc
            }
            Expr::Or(xs) => {
                let mut acc = NodeRef::FALSE;
                for x in xs {
                    let b = self.from_expr(x);
                    acc = self.or(acc, b);
                }
                acc
            }
            Expr::Xor(a, b) => {
                let ra = self.from_expr(a);
                let rb = self.from_expr(b);
                self.xor(ra, rb)
            }
        }
    }

    /// Evaluates a BDD under an assignment over the ordering.
    pub fn eval(&self, mut r: NodeRef, assignment: &[bool]) -> bool {
        while !r.is_terminal() {
            let n = self.nodes[r.0];
            r = if assignment[n.var] { n.hi } else { n.lo };
        }
        r == NodeRef::TRUE
    }

    /// Number of satisfying assignments over the full ordering.
    pub fn sat_count(&self, r: NodeRef) -> u64 {
        let n = self.order.len();
        let mut memo: HashMap<NodeRef, u64> = HashMap::new();
        self.sat_count_from(r, 0, n, &mut memo)
    }

    fn sat_count_from(
        &self,
        r: NodeRef,
        level: usize,
        total: usize,
        memo: &mut HashMap<NodeRef, u64>,
    ) -> u64 {
        let node_level = if r.is_terminal() {
            total
        } else {
            self.level(r)
        };
        let skipped = (node_level - level) as u32;
        let below = if r == NodeRef::FALSE {
            0
        } else if r == NodeRef::TRUE {
            1
        } else if let Some(&m) = memo.get(&r) {
            m
        } else {
            let n = self.nodes[r.0];
            let m = self.sat_count_from(n.lo, node_level + 1, total, memo)
                + self.sat_count_from(n.hi, node_level + 1, total, memo);
            memo.insert(r, m);
            m
        };
        below << skipped
    }

    /// Reachable node count of one function (its BDD size).
    pub fn size(&self, root: NodeRef) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(r) = stack.pop() {
            if seen.insert(r) && !r.is_terminal() {
                let n = self.nodes[r.0];
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        Expr::parse(s).expect(s)
    }

    #[test]
    fn canonical_equivalence_is_pointer_equality() {
        let mut bdd = Bdd::new(&['A', 'B', 'Q', 'R', 'S']);
        let a = bdd.from_expr(&p("S'Q + SR'"));
        let b = bdd.from_expr(&p("QS' + R'S"));
        assert_eq!(a, b, "equivalent functions share the canonical node");
        let c = bdd.from_expr(&p("S + R'Q"));
        assert_ne!(a, c, "distinct functions get distinct nodes");
    }

    #[test]
    fn demorgan_via_apply() {
        let mut bdd = Bdd::new(&['A', 'B']);
        let a = bdd.var('A');
        let b = bdd.var('B');
        let and = bdd.and(a, b);
        let nand = bdd.not(and);
        let na = bdd.not(a);
        let nb = bdd.not(b);
        let or = bdd.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn sat_count_examples() {
        let mut bdd = Bdd::new(&['A', 'B', 'C']);
        let f = bdd.from_expr(&p("A ^ B ^ C"));
        assert_eq!(bdd.sat_count(f), 4); // parity: half of 8
        let g = bdd.from_expr(&p("AB"));
        assert_eq!(bdd.sat_count(g), 2); // A=B=1, C free
        assert_eq!(bdd.sat_count(NodeRef::TRUE), 8);
        assert_eq!(bdd.sat_count(NodeRef::FALSE), 0);
    }

    #[test]
    fn tautology_and_contradiction_collapse_to_terminals() {
        let mut bdd = Bdd::new(&['A']);
        assert_eq!(bdd.from_expr(&p("A + A'")), NodeRef::TRUE);
        assert_eq!(bdd.from_expr(&p("AA'")), NodeRef::FALSE);
    }

    #[test]
    fn ordering_affects_size_not_function() {
        // the classic (A1 B1) + (A2 B2) example: interleaved ordering is
        // small, grouped ordering blows up
        let e = p("ac + bd");
        let mut good = Bdd::new(&['a', 'c', 'b', 'd']);
        let mut bad = Bdd::new(&['a', 'b', 'c', 'd']);
        let rg = good.from_expr(&e);
        let rb = bad.from_expr(&e);
        assert!(good.size(rg) <= bad.size(rb));
        assert_eq!(good.sat_count(rg), bad.sat_count(rb));
    }

    #[test]
    #[should_panic(expected = "in the ordering")]
    fn unknown_variable_panics() {
        let mut bdd = Bdd::new(&['A']);
        let _ = bdd.from_expr(&p("Z"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_expr() -> impl Strategy<Value = Expr> {
            let leaf = proptest::sample::select(vec!['A', 'B', 'C', 'D']).prop_map(Expr::Var);
            leaf.prop_recursive(4, 24, 2, |inner| {
                prop_oneof![
                    inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(vec![a, b])),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(vec![a, b])),
                    (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn bdd_agrees_with_truth_table(e in arb_expr()) {
                let order = ['A', 'B', 'C', 'D'];
                let mut bdd = Bdd::new(&order);
                let root = bdd.from_expr(&e);
                let mut sat_from_table = 0u64;
                for row in 0..16usize {
                    let assignment: Vec<bool> =
                        (0..4).map(|i| row >> (3 - i) & 1 == 1).collect();
                    let pairs: Vec<(char, bool)> = order
                        .iter()
                        .copied()
                        .zip(assignment.iter().copied())
                        .collect();
                    let expect = e.eval(&pairs);
                    prop_assert_eq!(bdd.eval(root, &assignment), expect, "row {}", row);
                    if expect {
                        sat_from_table += 1;
                    }
                }
                prop_assert_eq!(bdd.sat_count(root), sat_from_table);
            }

            #[test]
            fn equivalence_matches_expr_engine(a in arb_expr(), b in arb_expr()) {
                let order = ['A', 'B', 'C', 'D'];
                let mut bdd = Bdd::new(&order);
                let ra = bdd.from_expr(&a);
                let rb = bdd.from_expr(&b);
                let expr_equiv = a.equivalent(&b).expect("small");
                prop_assert_eq!(ra == rb, expr_equiv);
            }
        }
    }
}

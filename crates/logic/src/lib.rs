//! Digital-design substrate for the ChipVQA reproduction.
//!
//! ChipVQA's Digital Design section asks questions like *"Derive the
//! function for Q given the state table and excitation maps"* with answer
//! choices such as `Q = S'Q + SR'`. Answering — and, for this
//! reproduction, *generating and judging* — such questions requires a real
//! digital-logic toolkit. This crate provides it:
//!
//! - [`expr`]: boolean expression AST, a parser for the classic
//!   prime-and-plus textbook syntax (`S'Q + SR'`), evaluation, truth
//!   tables and semantic equivalence;
//! - [`mod@minimize`]: Quine–McCluskey two-level minimisation with don't-cares;
//! - [`bdd`]: reduced ordered binary decision diagrams with canonical
//!   equivalence and satisfy counting;
//! - [`netlist`]: gate-level netlists, combinational simulation and
//!   unit/weighted-delay critical paths;
//! - [`clocked`]: synchronous circuits (registers + next-state logic)
//!   synthesised straight from state tables and simulated per clock;
//! - [`mapping`]: NAND-only / NOR-only technology mapping, verified by
//!   exhaustive simulation;
//! - [`seq`]: flip-flops (SR/JK/D/T), characteristic equations, excitation
//!   tables and binary-encoded state tables with next-state derivation;
//! - [`numbers`]: two's complement, Gray code, BCD and fixed-point;
//! - [`builders`]: canonical structural blocks (half/full adders,
//!   ripple-carry adders, multiplexers, decoders);
//! - [`render`]: procedural drawings (truth tables, Karnaugh maps, gate
//!   schematics, waveforms) used as the visual half of generated VQA
//!   triplets.
//!
//! # Example
//!
//! ```
//! use chipvqa_logic::expr::Expr;
//!
//! let f = Expr::parse("S'Q + SR'")?;
//! let g = Expr::parse("QS' + R'S")?;
//! assert!(f.equivalent(&g)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod builders;
pub mod clocked;
pub mod expr;
pub mod mapping;
pub mod minimize;
pub mod netlist;
pub mod numbers;
pub mod render;
pub mod seq;

pub use expr::{Expr, TruthTable};
pub use minimize::minimize;
pub use netlist::Netlist;
pub use seq::{FlipFlop, StateTable};

//! Technology mapping: lowering an arbitrary expression to a NAND-only
//! (or NOR-only) netlist — the classic "implement F using only NAND
//! gates" exercise, with the mapped netlist verified against the source
//! expression by exhaustive simulation.

use crate::expr::Expr;
use crate::netlist::{GateKind, Netlist, NodeId};

/// The single gate type to map onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UniversalGate {
    /// Two-input NAND.
    Nand,
    /// Two-input NOR.
    Nor,
}

/// Maps `expr` to a netlist using only 2-input gates of the chosen
/// universal type (inputs aside). Output is named `f`.
///
/// Construction uses the textbook identities
/// `NOT x = NAND(x, x)`, `AND = NOT NAND`, `OR = NAND(NOT a, NOT b)`
/// (dually for NOR); XOR decomposes to the 4-NAND form.
pub fn map_to_universal(expr: &Expr, gate: UniversalGate) -> Netlist {
    let mut nl = Netlist::new();
    let vars = expr.vars();
    let inputs: Vec<(char, NodeId)> = vars
        .iter()
        .map(|&v| (v, nl.add_input(v.to_string())))
        .collect();
    let out = build(&mut nl, expr, &inputs, gate);
    nl.mark_output(out, "f");
    nl
}

fn prim(nl: &mut Netlist, gate: UniversalGate, a: NodeId, b: NodeId) -> NodeId {
    let kind = match gate {
        UniversalGate::Nand => GateKind::Nand,
        UniversalGate::Nor => GateKind::Nor,
    };
    nl.add_gate(kind, &[a, b]).expect("binary gate arity")
}

fn invert(nl: &mut Netlist, gate: UniversalGate, a: NodeId) -> NodeId {
    prim(nl, gate, a, a)
}

fn and2(nl: &mut Netlist, gate: UniversalGate, a: NodeId, b: NodeId) -> NodeId {
    match gate {
        UniversalGate::Nand => {
            let n = prim(nl, gate, a, b);
            invert(nl, gate, n)
        }
        UniversalGate::Nor => {
            // AND = NOR(NOT a, NOT b)
            let na = invert(nl, gate, a);
            let nb = invert(nl, gate, b);
            prim(nl, gate, na, nb)
        }
    }
}

fn or2(nl: &mut Netlist, gate: UniversalGate, a: NodeId, b: NodeId) -> NodeId {
    match gate {
        UniversalGate::Nand => {
            let na = invert(nl, gate, a);
            let nb = invert(nl, gate, b);
            prim(nl, gate, na, nb)
        }
        UniversalGate::Nor => {
            let n = prim(nl, gate, a, b);
            invert(nl, gate, n)
        }
    }
}

fn build(nl: &mut Netlist, expr: &Expr, inputs: &[(char, NodeId)], gate: UniversalGate) -> NodeId {
    match expr {
        Expr::Const(b) => {
            // x NAND x' = 1; invert for 0 (dually for NOR)
            let base = inputs
                .first()
                .map(|&(_, id)| id)
                .unwrap_or_else(|| nl.add_input("const"));
            let nb = invert(nl, gate, base);
            let one_like = or2(nl, gate, base, nb); // always-1
            if *b {
                one_like
            } else {
                invert(nl, gate, one_like)
            }
        }
        Expr::Var(v) => {
            inputs
                .iter()
                .find(|(name, _)| name == v)
                .expect("vars collected")
                .1
        }
        Expr::Not(e) => {
            let inner = build(nl, e, inputs, gate);
            invert(nl, gate, inner)
        }
        Expr::And(es) => {
            let ids: Vec<NodeId> = es.iter().map(|e| build(nl, e, inputs, gate)).collect();
            ids.into_iter()
                .reduce(|a, b| and2(nl, gate, a, b))
                .expect("And is nonempty")
        }
        Expr::Or(es) => {
            let ids: Vec<NodeId> = es.iter().map(|e| build(nl, e, inputs, gate)).collect();
            ids.into_iter()
                .reduce(|a, b| or2(nl, gate, a, b))
                .expect("Or is nonempty")
        }
        Expr::Xor(a, b) => {
            let ia = build(nl, a, inputs, gate);
            let ib = build(nl, b, inputs, gate);
            // classic 4-NAND XOR; for NOR use OR/AND composition
            match gate {
                UniversalGate::Nand => {
                    let m = prim(nl, gate, ia, ib);
                    let l = prim(nl, gate, ia, m);
                    let r = prim(nl, gate, ib, m);
                    prim(nl, gate, l, r)
                }
                UniversalGate::Nor => {
                    // a^b = (a OR b) AND NOT(a AND b)
                    let o = or2(nl, gate, ia, ib);
                    let na = and2(nl, gate, ia, ib);
                    let nn = invert(nl, gate, na);
                    and2(nl, gate, o, nn)
                }
            }
        }
    }
}

/// Number of universal gates a mapped netlist uses.
pub fn gate_count(nl: &Netlist) -> usize {
    nl.gate_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equivalent(expr: &Expr, gate: UniversalGate) {
        let nl = map_to_universal(expr, gate);
        // only the chosen gate kind appears
        for g in nl.gates() {
            let ok = matches!(g.kind, GateKind::Input)
                || match gate {
                    UniversalGate::Nand => g.kind == GateKind::Nand,
                    UniversalGate::Nor => g.kind == GateKind::Nor,
                };
            assert!(ok, "foreign gate {:?}", g.kind);
        }
        let vars = expr.vars();
        let n_inputs = nl.inputs().len();
        for row in 0..(1usize << n_inputs) {
            let bits: Vec<bool> = (0..n_inputs)
                .map(|i| row >> (n_inputs - 1 - i) & 1 == 1)
                .collect();
            let pairs: Vec<(char, bool)> = vars.iter().copied().zip(bits.iter().copied()).collect();
            assert_eq!(
                nl.eval(&bits).expect("sized")[0],
                expr.eval(&pairs),
                "{expr} row {row} via {gate:?}"
            );
        }
    }

    #[test]
    fn classic_functions_map_to_nand() {
        for src in ["A ^ B", "AB + C", "(A + B)'", "S'Q + SR'", "A"] {
            check_equivalent(&Expr::parse(src).expect(src), UniversalGate::Nand);
        }
    }

    #[test]
    fn classic_functions_map_to_nor() {
        for src in ["A ^ B", "AB + C", "(A + B)'", "S'Q + SR'"] {
            check_equivalent(&Expr::parse(src).expect(src), UniversalGate::Nor);
        }
    }

    #[test]
    fn constants_map() {
        check_equivalent(&Expr::Const(true), UniversalGate::Nand);
        check_equivalent(&Expr::Const(false), UniversalGate::Nor);
    }

    #[test]
    fn xor_uses_four_nands() {
        let nl = map_to_universal(&Expr::parse("A ^ B").expect("parses"), UniversalGate::Nand);
        assert_eq!(gate_count(&nl), 4, "textbook 4-NAND XOR");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_expr() -> impl Strategy<Value = Expr> {
            let leaf = proptest::sample::select(vec!['A', 'B', 'C']).prop_map(Expr::Var);
            leaf.prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(vec![a, b])),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(vec![a, b])),
                    (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            #[test]
            fn mapping_preserves_semantics(e in arb_expr(), to_nor: bool) {
                let gate = if to_nor { UniversalGate::Nor } else { UniversalGate::Nand };
                check_equivalent(&e, gate);
            }
        }
    }
}
